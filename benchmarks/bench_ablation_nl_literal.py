"""Ablation — literal line-26 NL shares vs the prose's "more resources".

The literal reading (``nl_full_limit=False``) sets NL limits to
``G/ΣG``; young jobs training small-scale metrics are then starved by
whichever job trains the largest-scale metric (DESIGN.md §2 notes 1–2).
The default gives NL members the full limit, per Fig. 7's behaviour.
"""

from _render import run_once

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_pair():
    cfg = SimulationConfig(seed=1, trace=False)
    default = run_scenario(
        fixed_three_job(),
        FlowConPolicy(FlowConConfig(nl_full_limit=True)),
        cfg,
    )
    literal = run_scenario(
        fixed_three_job(),
        FlowConPolicy(FlowConConfig(nl_full_limit=False)),
        cfg,
    )
    return default, literal


def test_ablation_nl_literal(benchmark):
    default, literal = run_once(benchmark, _run_pair)
    print("\n" + render_header("Ablation: NL limit semantics"))
    rows = []
    for label, run in (
        ("NL → limit 1 (default)", default),
        ("NL → G/ΣG (literal line 26)", literal),
    ):
        ct = run.completion_times()
        rows.append([label, ct["Job-1"], ct["Job-2"], ct["Job-3"],
                     run.makespan])
    print(
        render_table(
            ["variant", "VAE", "MNIST-P", "MNIST-T", "makespan"], rows
        )
    )
    # The literal mode must not beat the default for the late small job.
    assert (
        literal.completion_times()["Job-3"]
        >= default.completion_times()["Job-3"] * 0.98
    )
