"""Extension — FlowCon vs the SLAQ-like quality-driven baseline (§6).

The paper's critique of SLAQ is reaction latency ("fails to allocate the
resources at real-time").  The bench compares both across scheduling
epochs on the fixed 3-job schedule.
"""

from _render import run_once

from repro.baselines.slaq import SlaqLikePolicy
from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_all():
    cfg = SimulationConfig(seed=1, trace=False)
    results = {"FlowCon-5%-20": run_scenario(
        fixed_three_job(), FlowConPolicy(), cfg)}
    for epoch in (20.0, 60.0):
        results[f"SLAQ-like-{epoch:g}s"] = run_scenario(
            fixed_three_job(), SlaqLikePolicy(epoch=epoch), cfg
        )
    return results


def test_baseline_slaq(benchmark):
    results = run_once(benchmark, _run_all)
    print("\n" + render_header("Extension: FlowCon vs SLAQ-like scheduling"))
    print(
        render_table(
            ["policy", "VAE", "MNIST-P", "MNIST-T", "makespan"],
            [
                [name, r.completion_times()["Job-1"],
                 r.completion_times()["Job-2"],
                 r.completion_times()["Job-3"], r.makespan]
                for name, r in results.items()
            ],
        )
    )
    fc = results["FlowCon-5%-20"].completion_times()["Job-3"]
    slaq_slow = results["SLAQ-like-60s"].completion_times()["Job-3"]
    print(f"\nlate-arrival advantage vs 60s-epoch SLAQ: {slaq_slow - fc:+.1f}s")
    assert fc < slaq_slow
