"""Fig. 5 — fixed 3-job schedule, itval = 20 s, α ∈ {1…15 %} vs NA.

Paper: FlowCon improves makespan 1–4 % across all α; Table 2's second
column derives from this sweep (reductions 32.1 %…19.8 %).
"""

from _render import print_sweep, run_once

from repro.experiments.figures import fig5_fixed_itval20


def test_fig05_fixed_itval20(benchmark):
    data = run_once(benchmark, lambda: fig5_fixed_itval20(seed=1))
    print_sweep(
        "Figure 5: completion time, itval=20s, alpha sweep",
        data,
        "all alphas beat NA on MNIST-TF; makespan within ±1% of NA",
    )
    na = data.makespan["NA"]
    for label in data.completion:
        if label == "NA":
            continue
        assert data.reduction_vs_na(label, "Job-3") > 0.0
        assert data.makespan[label] <= na * 1.01
