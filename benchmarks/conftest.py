"""Benchmark-suite configuration.

Makes the ``benchmarks`` directory importable (for ``_render``) and keeps
pytest-benchmark's comparison machinery quiet for single-shot runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
