"""Benchmark-suite configuration.

Makes the ``benchmarks`` directory importable (for ``_render``), keeps
pytest-benchmark's comparison machinery quiet for single-shot runs, and
wires JSON export: unless the caller already passed ``--benchmark-json``
(or disabled benchmarking), every benchmark session appends a timestamped
``BENCH_<UTC>.json`` trajectory file next to the benches, so perf history
accumulates run over run with zero extra flags.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def _targets_benchmarks(config) -> bool:
    """Whether this pytest invocation points at the benchmarks directory.

    The repo-root tier-1 run traverses this conftest too; only actual
    benchmark sessions should start a trajectory file.
    """
    bench_dir = Path(__file__).parent.resolve()
    for arg in config.args:
        p = Path(str(arg).split("::")[0])
        if not p.is_absolute():
            p = Path(config.invocation_params.dir) / p
        try:
            p = p.resolve()
        except OSError:
            continue
        if p == bench_dir or bench_dir in p.parents:
            return True
    return False


def pytest_configure(config) -> None:
    opt = config.option
    if not hasattr(opt, "benchmark_json"):  # pytest-benchmark not installed
        return
    if getattr(opt, "benchmark_disable", False):
        return
    if opt.benchmark_json is not None:
        return
    if not _targets_benchmarks(config):
        return
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    path = Path(__file__).parent / f"BENCH_{stamp}.json"
    try:
        opt.benchmark_json = path.open("wb")
    except OSError:  # read-only checkout: benchmarks still run, no export
        return
    config._repro_bench_json_path = str(path)


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    path = getattr(config, "_repro_bench_json_path", None)
    if path is not None:
        terminalreporter.write_line(f"benchmark JSON trajectory: {path}")
