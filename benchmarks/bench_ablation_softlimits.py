"""Ablation — soft vs hard limits (§5.4 technique (1)).

A demand-limited LSTM-CFC statically partitioned 50/50 with a compute-
bound MNIST: under soft limits MNIST soaks the CFC's idle capacity;
under hard (``--cpus``-style) ceilings it cannot.
"""

from _render import run_once

from repro.baselines.static import StaticPartitionPolicy
from repro.config import SimulationConfig
from repro.containers.allocator import AllocationMode
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.workloads.generator import WorkloadGenerator


def _run_pair():
    specs = WorkloadGenerator.fixed(
        [("lstm_cfc@tensorflow", 0.0), ("mnist@pytorch", 0.0)]
    )
    soft = run_scenario(
        specs,
        StaticPartitionPolicy(),
        SimulationConfig(seed=1, trace=False,
                         allocation_mode=AllocationMode.SOFT),
    )
    hard = run_scenario(
        specs,
        StaticPartitionPolicy(),
        SimulationConfig(seed=1, trace=False,
                         allocation_mode=AllocationMode.HARD),
    )
    return soft, hard


def test_ablation_softlimits(benchmark):
    soft, hard = run_once(benchmark, _run_pair)
    print("\n" + render_header("Ablation: soft vs hard limits"))
    print(
        render_table(
            ["mode", "CFC completion", "MNIST completion", "makespan"],
            [
                ["SOFT", soft.completion_times()["Job-1"],
                 soft.completion_times()["Job-2"], soft.makespan],
                ["HARD", hard.completion_times()["Job-1"],
                 hard.completion_times()["Job-2"], hard.makespan],
            ],
        )
    )
    reclaimed = (
        hard.completion_times()["Job-2"] - soft.completion_times()["Job-2"]
    )
    print(f"\ncapacity reclaimed by soft limits (MNIST speed-up): "
          f"{reclaimed:.1f}s")
    assert soft.completion_times()["Job-2"] < hard.completion_times()["Job-2"]
