"""Extension — worker-side scaling (§3.1's design argument).

"With this design, the overhead of running FlowCon is distributed over
the whole cluster."  The bench runs the same 12-job workload on 1, 2 and
3 workers, each with its own FlowCon executor, and reports makespan plus
per-worker Algorithm-1 counts.
"""

import numpy as np
from _render import run_once

from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_cluster
from repro.experiments.report import render_header, render_table
from repro.workloads.generator import WorkloadGenerator


def _run_all():
    gen = WorkloadGenerator(np.random.default_rng(5))
    specs = gen.random_mix(12, window=(0.0, 150.0))
    results = {}
    for n in (1, 2, 3):
        results[n] = run_cluster(
            specs,
            FlowConPolicy,
            SimulationConfig(seed=5, trace=False),
            n_workers=n,
        )
    return results


def test_ext_multiworker_scaling(benchmark):
    results = run_once(benchmark, _run_all)
    print("\n" + render_header("Extension: 12 FlowCon jobs on 1-3 workers"))
    rows = []
    for n, result in results.items():
        runs = [p.executor.runs for p in result.policies.values()]
        rows.append([n, round(result.makespan, 1), str(runs)])
    print(render_table(
        ["workers", "makespan", "Algorithm-1 runs per worker"], rows
    ))
    ms1 = results[1].makespan
    ms3 = results[3].makespan
    runs1 = [p.executor.runs for p in results[1].policies.values()]
    runs3 = [p.executor.runs for p in results[3].policies.values()]
    print(f"\n3-worker speedup over 1 worker: {ms1 / ms3:.2f}x; "
          f"per-worker scheduling work {runs1[0]} → ~{int(np.mean(runs3))}")
    assert ms3 < ms1          # more capacity ⇒ shorter makespan
    assert max(runs3) < runs1[0]  # scheduling work is distributed
