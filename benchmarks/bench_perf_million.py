"""Macro-benchmark — streaming a 100 000-job day in bounded memory.

``million_job_day`` is the ROADMAP's north star made runnable: a lazy
diurnal arrival stream against a 256-worker fleet, with every queue
delay and completion folded into mergeable quantile sketches instead of
per-job records.  This bench drives the CI-sized shape (100 000
arrivals — the full million is the same machinery for 10× the wall
clock) and asserts the PR's two acceptance claims:

* **Bounded RSS.**  Peak RSS after the 100k-arrival run must stay
  within a fixed allowance of the peak after a 10× smaller run in the
  same process.  ``ru_maxrss`` is a monotone high-water mark, so
  running small-then-large isolates exactly the large run's *extra*
  appetite; anything scaling with the arrival count (per-job records,
  exited-container tables, pool journals) would blow through the
  allowance immediately (the pre-reap recorder grew ~280 MB here).
* **Live percentiles are honest.**  On a CI-sized run executed both
  dense and streaming, the sketch's p50/p95/p99 queue delays must fall
  within its *certified* rank-error bound of the exact distribution:
  the exact order statistics at ranks (q ± ε)·n must bracket every
  sketch estimate, and makespan/total/max/count must match exactly
  (streaming changes bookkeeping, never dynamics).

The RSS assertion runs in every mode, including CI's
``--benchmark-disable`` execute-only job, at a reduced scale there so
the job stays fast; the full 100k shape is timed locally.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import million_job_day

#: Fixed allowance (MiB) for the large run's extra peak RSS over the
#: 10× smaller run.  Measured growth on the reference container is
#: ~2 MB (allocator slop + the heavy-traffic admission backlog); a
#: per-job leak at even 100 bytes/job would add ~9 MiB and trip this.
_RSS_ALLOWANCE_MIB = 24.0


def _rss_mib() -> float:
    """Peak RSS in MiB (``ru_maxrss`` is KiB on Linux), pool-aware.

    A sharded run (``SimulationConfig(shards=N)``) does its kernel
    arithmetic in ProcessPoolExecutor children, whose memory never
    shows up in ``RUSAGE_SELF`` — a parent-only reading would let a
    per-job leak hide out of process.  ``RUSAGE_CHILDREN`` is the
    reaped children's high-water mark, so the max of the two covers
    both execution modes.
    """
    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    ) / 1024.0


def _day_run(n_jobs: int, *, streaming: bool = True, seed: int = 0):
    sc = million_job_day(seed=seed, n_jobs=n_jobs)
    return run_cluster(
        sc.workload,
        NAPolicy,
        SimulationConfig(
            seed=seed,
            trace=False,
            fleet_mode=True,
            streaming_metrics=streaming,
            contention=ContentionModel.ideal(),
            sample_interval=5.0,
        ),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        placement="spread",
    )


def test_perf_million_bounded_rss(benchmark):
    """100k arrivals, 256 workers: peak RSS independent of job count."""
    if getattr(benchmark, "disabled", False):
        small_jobs, large_jobs = 2_000, 20_000
    else:
        small_jobs, large_jobs = 10_000, 100_000
    small = _day_run(small_jobs)
    assert small.summary.n_completed == small_jobs
    rss_after_small = _rss_mib()

    t0 = time.process_time()
    large = run_once(benchmark, lambda: _day_run(large_jobs))
    cpu = time.process_time() - t0
    rss_after_large = _rss_mib()

    assert large.summary.n_completed == large_jobs
    growth = rss_after_large - rss_after_small
    slo = large.summary.slo_report()
    print("\n" + render_header(
        f"streaming {large_jobs:,}-job day — 256 workers, "
        f"sketch metrics (±{large.summary.stream.rank_error_bound():.3%} "
        f"rank error)"
    ))
    print(render_table(
        ["metric", "value"],
        [
            ["jobs completed", f"{large.summary.n_completed:,}"],
            ["events/s", f"{large.sim.events_processed / cpu:,.0f}"],
            ["makespan (s)", f"{large.summary.makespan:,.1f}"],
            ["p50 queue delay (s)", f"{slo['p50_queue_delay']:.2f}"],
            ["p95 queue delay (s)", f"{slo['p95_queue_delay']:.2f}"],
            ["p99 queue delay (s)", f"{slo['p99_queue_delay']:.2f}"],
            ["rolling tput (jobs/s)", f"{slo['rolling_throughput']:.2f}"],
            ["peak tput (jobs/s)", f"{slo['peak_throughput']:.2f}"],
            [f"RSS after {small_jobs:,}", f"{rss_after_small:.1f} MiB"],
            [f"RSS after {large_jobs:,}", f"{rss_after_large:.1f} MiB"],
            ["RSS growth for 10x jobs", f"{growth:.1f} MiB"],
        ],
    ))
    assert growth <= _RSS_ALLOWANCE_MIB, (
        f"peak RSS grew {growth:.1f} MiB going from {small_jobs:,} to "
        f"{large_jobs:,} arrivals (allowance {_RSS_ALLOWANCE_MIB} MiB): "
        "something is accumulating per-job state in streaming mode"
    )


def _exact_bracket(delays: np.ndarray, q: float, eps: float) -> tuple:
    """Exact elements at ranks ⌊(q−eps)·n⌋ and ⌈(q+eps)·n⌉ (1-indexed).

    The sketch answers q with the element of estimated rank ⌈q·n⌉ and
    certifies the true rank within ±eps·n, so these two order
    statistics must bracket every estimate.
    """
    ordered = np.sort(delays)
    n = len(ordered)
    lo_rank = max(1, int(np.floor((q - eps) * n)))
    hi_rank = min(n, int(np.ceil((q + eps) * n)))
    return float(ordered[lo_rank - 1]), float(ordered[hi_rank - 1])


def test_perf_million_live_percentiles_match_dense(benchmark):
    """CI-sized cross-check: sketch percentiles within the rank bound."""
    n_jobs = 5_000
    dense = _day_run(n_jobs, streaming=False)
    streaming = run_once(benchmark, lambda: _day_run(n_jobs))
    d, s = dense.summary, streaming.summary

    # Streaming changes bookkeeping, never dynamics: the scalar
    # aggregates must match the dense run exactly.
    assert s.makespan == d.makespan
    assert s.n_completed == d.n_completed == n_jobs
    assert s.total_queue_delay() == d.total_queue_delay()
    assert s.max_queue_delay() == d.max_queue_delay()
    assert np.isclose(s.mean_queue_delay(), d.mean_queue_delay())

    delays = np.fromiter(d.queue_delays.values(), dtype=float)
    # Placement-order delays include the 0.0s of never-queued jobs,
    # which the dense queue_delays map omits; rebuild the full vector.
    full = np.concatenate([delays, np.zeros(n_jobs - len(delays))])
    eps = s.stream.rank_error_bound()
    rows = []
    for q in (0.50, 0.95, 0.99):
        est = s.quantile_queue_delay(q)
        lo, hi = _exact_bracket(full, q, eps)
        rows.append([f"p{int(q * 100)}", f"{lo:.3f}", f"{est:.3f}",
                     f"{hi:.3f}"])
        assert lo <= est <= hi, (
            f"sketch p{q * 100:.0f}={est} outside exact rank window "
            f"[{lo}, {hi}] (±{eps:.4%})"
        )
    print("\n" + render_header(
        f"sketch vs exact on {n_jobs:,} queue delays (±{eps:.3%} rank)"
    ))
    print(render_table(["quantile", "exact lo", "sketch", "exact hi"], rows))
