"""Fig. 6 — fixed 3-job schedule, itval = 30 s, α ∈ {1…15 %} vs NA.

Paper: same trend as Fig. 5 at the coarser interval.
"""

from _render import print_sweep, run_once

from repro.experiments.figures import fig6_fixed_itval30


def test_fig06_fixed_itval30(benchmark):
    data = run_once(benchmark, lambda: fig6_fixed_itval30(seed=1))
    print_sweep(
        "Figure 6: completion time, itval=30s, alpha sweep",
        data,
        "same trend as Fig. 5 at itval=30",
    )
    for label in data.completion:
        if label != "NA":
            assert data.reduction_vs_na(label, "Job-3") > 0.0
