"""Micro-benchmark — simulation-engine throughput.

Measures end-to-end events/second for a full FlowCon 10-job scenario;
the whole evaluation suite regenerates in seconds because the engine
advances time analytically between events.
"""

from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import random_ten_job


def test_perf_full_ten_job_flowcon_run(benchmark):
    specs = random_ten_job(seed=42)

    def run():
        return run_scenario(
            specs,
            FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)),
            SimulationConfig(seed=42, trace=False),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.completion_times()) == 10


def test_perf_full_ten_job_na_run(benchmark):
    specs = random_ten_job(seed=42)

    def run():
        return run_scenario(
            specs, NAPolicy(), SimulationConfig(seed=42, trace=False)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.completion_times()) == 10
