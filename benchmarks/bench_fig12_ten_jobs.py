"""Fig. 12 — ten random jobs, FlowCon-10 %-20 vs NA.

Paper: makespans 1350.7 s (FlowCon) vs 1384.9 s (NA); FlowCon reduces
completion for 9 of 10 jobs (reductions 1.8 %–41.2 %, biggest Job-10);
the one loss (Job-2) is only 1.1 %.
"""

from _render import print_scale, run_once

from repro.experiments.figures import fig12_ten_jobs


def test_fig12_ten_jobs(benchmark):
    data = run_once(benchmark, lambda: fig12_ten_jobs(seed=42))
    print_scale(
        "Figure 12: ten jobs, random submission, FlowCon-10%-20 vs NA",
        data,
        "≈9/10 jobs faster; losses ~1%; makespan slightly better",
    )
    (config,) = [k for k in data.completion if k != "NA"]
    assert data.wins(config) >= 9
    assert data.makespan[config] <= data.makespan["NA"] * 1.01
