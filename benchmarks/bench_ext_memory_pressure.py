"""Extension — memory overcommit (beyond the paper).

The paper's 16 GB node never swaps; dense multi-tenant nodes do.  With
the swap penalty enabled, co-running many resident models thrashes.
FlowCon's overlap reduction now pays twice: finished jobs release their
memory earlier, so the node spends less time overcommitted.
"""

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import random_ten_job


def _run_pair():
    specs = random_ten_job(seed=42)
    contention = ContentionModel(swap_penalty=0.5)
    cfg = SimulationConfig(seed=42, trace=False, contention=contention)
    na = run_scenario(specs, NAPolicy(), cfg)
    fc = run_scenario(
        specs, FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)), cfg
    )
    return na, fc


def test_ext_memory_pressure(benchmark):
    na, fc = run_once(benchmark, _run_pair)
    print("\n" + render_header(
        "Extension: 10 jobs with memory overcommit (swap_penalty=0.5)"
    ))
    wins = sum(
        1
        for label in na.completion_times()
        if fc.completion_times()[label] < na.completion_times()[label]
    )
    print(render_table(
        ["policy", "makespan"],
        [["NA", na.makespan], ["FlowCon-10%-20", fc.makespan]],
    ))
    print(f"\nFlowCon wins {wins}/10 jobs under memory pressure; "
          f"makespan Δ {na.makespan - fc.makespan:+.1f}s")
    assert wins >= 7
    assert fc.makespan <= na.makespan * 1.01
