"""Macro-benchmark — makespan recovered by rebalancing on a straggler.

The acceptance workload of the rebalance layer: the
:func:`~repro.experiments.scenarios.imbalanced_cluster` straggler shape
(three full-size workers plus one at quarter capacity, 16-job burst)
where count-based spread placement strands a quarter of the jobs on the
slow node.  Reports makespan, migration counts and events/s for
``rebalance`` = none / migrate / progress, and asserts the two contracts
the subsystem ships with:

* progress-aware migration recovers a *large, fixed* fraction of the
  no-rebalance makespan (≥ 40 % here; measured ~55–75 % over seeds), and
  is no worse than blind count balancing;
* results are deterministic across repeats and identical through the
  serial and process-pool batch paths, migrations included.
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.batch import run_many
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import imbalanced_cluster

_SEED = 42
_POLICIES = ("none", "migrate", "progress")


def _run(rebalance="progress", seed=_SEED):
    sc = imbalanced_cluster(seed=seed)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=seed, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        rebalance=rebalance,
    )


def test_perf_rebalance_makespan(benchmark):
    rows = []
    makespans = {}
    for rebalance in _POLICIES:
        t0 = time.perf_counter()
        if rebalance == "progress":
            result = run_once(benchmark, _run)
        else:
            result = _run(rebalance)
        wall = time.perf_counter() - t0
        summary = result.summary
        assert len(summary.completions) == 16
        makespans[rebalance] = summary.makespan
        rows.append([
            rebalance,
            round(summary.makespan, 1),
            summary.total_migrations(),
            len(summary.migrated_labels()),
            round(result.sim.events_processed / wall),
        ])
    print("\n" + render_header(
        "16-job burst on 3 fast + 1 quarter-speed workers"
    ))
    print(render_table(
        ["rebalance", "makespan", "migrations", "jobs moved", "events/s"],
        rows,
    ))
    recovered = 1.0 - makespans["progress"] / makespans["none"]
    print(f"\nprogress-aware rebalancing recovers "
          f"{recovered:.0%} of the straggler makespan")
    # The asserted margin: ≥ 40 % makespan reduction vs never migrating,
    # and no worse than blind count balancing.
    assert makespans["progress"] <= 0.6 * makespans["none"]
    assert makespans["progress"] <= makespans["migrate"]


def test_perf_rebalance_margin_holds_across_seeds():
    """The improvement is a property of the shape, not one lucky seed."""
    for seed in (0, 1, 2):
        none = _run("none", seed=seed)
        progress = _run("progress", seed=seed)
        assert progress.summary.total_migrations() > 0
        assert progress.makespan <= 0.6 * none.makespan


def test_perf_rebalance_deterministic():
    """Repeated progress-aware runs are bit-identical, migrations included."""
    a, b = _run(), _run()
    assert a.completion_times() == b.completion_times()
    assert a.summary.migrations == b.summary.migrations
    assert a.summary.migration_delays == b.summary.migration_delays


def test_perf_rebalance_batch_parity():
    """Serial vs process-pool batch execution never changes results."""
    sc = imbalanced_cluster(seed=_SEED)
    cfg = SimulationConfig(seed=_SEED, trace=False)
    direct = _run()
    [serial] = run_many(
        [list(sc.specs)], NAPolicy, cfg, workers=1, seeds=[_SEED],
        capacities=sc.capacities, max_containers=sc.max_containers,
        rebalance="progress",
    )
    [pooled] = run_many(
        [list(sc.specs)], NAPolicy, cfg, workers=2, seeds=[_SEED],
        capacities=sc.capacities, max_containers=sc.max_containers,
        rebalance="progress",
    )
    assert serial.completion_times() == pooled.completion_times()
    assert serial.completion_times() == direct.completion_times()
    assert dict(serial.migrations) == direct.summary.migrations
    assert dict(pooled.migrations) == direct.summary.migrations
