"""Fig. 8 — CPU usage under NA (default platform), fixed 3-job.

Paper: "the system equally distributes CPU resources among active jobs"
— e.g. from 40–80 s the VAE and MNIST-P usages are approximately equal.
"""

import numpy as np
from _render import print_traces, run_once

from repro.experiments.figures import fig8_cpu_na_3job


def test_fig08_cpu_na_3job(benchmark):
    data = run_once(benchmark, lambda: fig8_cpu_na_3job(seed=1))
    print_traces(
        "Figure 8: CPU usage, NA, 3 jobs",
        data,
        "equal shares among concurrently active jobs",
    )
    # 2-job window (40–80 s): VAE near 0.5.
    t1, u1 = data.usage["Job-1"]
    window2 = u1[(t1 > 45) & (t1 < 80)]
    np.testing.assert_allclose(np.median(window2), 0.5, atol=0.08)
    # 3-job window: VAE near 1/3.
    window3 = u1[(t1 > 90) & (t1 < 140)]
    np.testing.assert_allclose(np.median(window3), 1 / 3, atol=0.08)
