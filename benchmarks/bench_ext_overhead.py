"""Extension — scheduling-overhead accounting (§5 Remark).

"Since itval indicates the frequency at which Algorithm 1 runs, it is
proportional to the overhead."  The bench counts Algorithm 1 executions,
listener interrupts, back-offs and ``docker update`` calls across itval
settings.
"""

from _render import run_once

from repro.analysis.overhead import overhead_study
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.scenarios import fixed_three_job


def test_ext_overhead(benchmark):
    samples = run_once(
        benchmark,
        lambda: overhead_study(
            fixed_three_job(),
            itvals=[10.0, 20.0, 40.0, 60.0],
            sim_config=SimulationConfig(seed=1, trace=False),
        ),
    )
    print("\n" + render_header("Extension: scheduling-overhead accounting"))
    print(render_table(
        ["itval", "backoff", "alg-1 runs", "runs/100s", "interrupts",
         "backoffs", "limit updates", "makespan"],
        [
            [s.itval, "on" if s.backoff_enabled else "off",
             s.algorithm_runs, round(s.runs_per_100s, 2),
             s.listener_interrupts, s.backoffs, s.limit_updates,
             round(s.makespan, 1)]
            for s in samples
        ],
    ))
    on = {s.itval: s for s in samples if s.backoff_enabled}
    off = {s.itval: s for s in samples if not s.backoff_enabled}
    saved = sum(off[iv].algorithm_runs - on[iv].algorithm_runs for iv in on)
    print(f"\ntotal Algorithm-1 executions saved by back-off: {saved}")
    assert on[10.0].algorithm_runs > on[60.0].algorithm_runs
    assert saved > 0
