"""Fig. 16 — CPU usage under NA, 10 jobs.

Paper: clear jitter from uncontrolled resource competition ("whenever
there is an idle slot, the system will allocate resources to the first
job in the queue").  The bench additionally verifies the Fig. 15-vs-16
contrast quantitatively via the jitter index.
"""

import numpy as np
from _render import print_traces, run_once

from repro.experiments.figures import fig15_cpu_flowcon_10job, fig16_cpu_na_10job


def test_fig16_cpu_na_10job(benchmark):
    data = run_once(benchmark, lambda: fig16_cpu_na_10job(seed=42))
    print_traces(
        "Figure 16: CPU usage, NA, 10 jobs",
        data,
        "visible free-competition jitter; noisier than Fig. 15",
    )
    flowcon = fig15_cpu_flowcon_10job(seed=42)
    na_jitter = float(np.mean(list(data.jitter.values())))
    fc_jitter = float(np.mean(list(flowcon.jitter.values())))
    print(f"\njitter: NA {na_jitter:.4f} vs FlowCon {fc_jitter:.4f}")
    assert fc_jitter < na_jitter
