"""Fig. 13 — growth efficiency of a job FlowCon *loses* (or barely ties).

Paper: Job-2 gains growth efficiency early under FlowCon (it starts with
protected resources), then loses to NA after it converges and its
resources flow to newer jobs; it finishes 1.1 % slower.
"""

from _render import print_growth_compare, run_once

from repro.experiments.figures import fig13_growth_comparison


def test_fig13_growth_eff_loser(benchmark):
    data = run_once(benchmark, lambda: fig13_growth_comparison(seed=42))
    print_growth_compare(
        "Figure 13: growth efficiency of the worst-delta job (FlowCon vs NA)",
        data,
        "early-converging job: high G early, throttled after convergence; "
        "small completion-time delta",
    )
    # The worst job under FlowCon loses at most modestly (paper: 1.1 %).
    delta = (data.flowcon_completion - data.na_completion) / data.na_completion
    assert delta < 0.10
    assert data.flowcon[0].size > 3 and data.na[0].size > 3
