"""Ablation — Algorithm 2's listeners (§4.3).

Without listeners FlowCon only reacts to pool changes at the next
periodic tick; a job arriving right after a tick waits up to a full
interval.  The bench quantifies the reaction-latency cost on the
late-arriving MNIST (TensorFlow).
"""

from _render import run_once

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_variants():
    cfg = SimulationConfig(seed=1, trace=False)
    results = {}
    for label, fc_cfg in [
        ("listeners (event-driven)", FlowConConfig(itval=60.0)),
        ("listeners (1s polling)", FlowConConfig(
            itval=60.0, event_driven_listeners=False,
            listener_poll_interval=1.0)),
        ("no listeners", FlowConConfig(itval=60.0, listeners_enabled=False)),
    ]:
        results[label] = run_scenario(
            fixed_three_job(), FlowConPolicy(fc_cfg), cfg
        )
    return results


def test_ablation_listeners(benchmark):
    results = run_once(benchmark, _run_variants)
    print("\n" + render_header("Ablation: Algorithm 2 listeners (itval=60s)"))
    print(
        render_table(
            ["variant", "MNIST-TF completion", "makespan"],
            [
                [label, r.completion_times()["Job-3"], r.makespan]
                for label, r in results.items()
            ],
        )
    )
    event = results["listeners (event-driven)"].completion_times()["Job-3"]
    none = results["no listeners"].completion_times()["Job-3"]
    print(f"\nreaction-latency cost without listeners: {none - event:+.1f}s")
    assert event < none
