"""Fig. 15 — CPU usage under FlowCon (α = 10 %, itval = 20), 10 jobs.

Paper: FlowCon also shows jitter (mostly during the 0–200 s arrival
window) but per-container usage is much smoother than NA's because soft
upper limits shrink the room for free competition.
"""

from _render import print_traces, run_once

from repro.experiments.figures import fig15_cpu_flowcon_10job


def test_fig15_cpu_flowcon_10job(benchmark):
    data = run_once(benchmark, lambda: fig15_cpu_flowcon_10job(seed=42))
    print_traces(
        "Figure 15: CPU usage, FlowCon (alpha=10%, itval=20), 10 jobs",
        data,
        "smoother per-container traces than Fig. 16 (lower jitter index)",
    )
    assert len(data.usage) == 10
