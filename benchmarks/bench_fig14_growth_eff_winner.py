"""Fig. 14 — growth efficiency of a job FlowCon clearly wins.

Paper: Job-6's growth efficiency under FlowCon tracks/exceeds NA over
most of its lifetime (after a brief start-up dip while FlowCon updates
configurations in a 5-active-job system); it completes much faster.
"""

from _render import print_growth_compare, run_once

from repro.experiments.figures import fig14_growth_comparison


def test_fig14_growth_eff_winner(benchmark):
    data = run_once(benchmark, lambda: fig14_growth_comparison(seed=42))
    print_growth_compare(
        "Figure 14: growth efficiency of the best-delta job (FlowCon vs NA)",
        data,
        "winning job completes substantially earlier under FlowCon",
    )
    assert data.flowcon_completion < data.na_completion
