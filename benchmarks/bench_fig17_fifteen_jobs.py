"""Fig. 17 — fifteen random jobs, FlowCon-10 %-40 vs NA.

Paper: makespan 1950.9 vs 1980.1 s (1.5 % better); FlowCon reduces
completion time for 11 of 15 jobs (1.2 %–11.9 %); the four losses are
small (worst 5.7 %).
"""

from _render import print_scale, run_once

from repro.experiments.figures import fig17_fifteen_jobs


def test_fig17_fifteen_jobs(benchmark):
    data = run_once(benchmark, lambda: fig17_fifteen_jobs(seed=42))
    print_scale(
        "Figure 17: fifteen jobs, random submission, FlowCon-10%-40 vs NA",
        data,
        "≥11/15 jobs faster; losses <10%; makespan ~1.5% better",
    )
    (config,) = [k for k in data.completion if k != "NA"]
    reductions = data.reductions(config)
    assert data.wins(config) >= 10
    assert min(reductions.values()) > -10.0
    assert data.makespan[config] <= data.makespan["NA"] * 1.01
