"""Extension — FlowCon vs Gandiva-style time slicing (§6).

Time slicing uses no training-progress signal; each job periodically
gets a near-exclusive burst.  On a work-conserving node this preserves
the makespan but — unlike FlowCon — cannot prioritize late small jobs,
so their completion times suffer.
"""

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.baselines.timeslice import TimeSlicePolicy
from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_all():
    cfg = SimulationConfig(seed=1, trace=False)
    return {
        "NA": run_scenario(fixed_three_job(), NAPolicy(), cfg),
        "TimeSlice-20s": run_scenario(
            fixed_three_job(), TimeSlicePolicy(quantum=20.0), cfg
        ),
        "FlowCon-5%-20": run_scenario(fixed_three_job(), FlowConPolicy(), cfg),
    }


def test_baseline_timeslice(benchmark):
    results = run_once(benchmark, _run_all)
    print("\n" + render_header(
        "Extension: FlowCon vs Gandiva-style time slicing"
    ))
    print(render_table(
        ["policy", "VAE", "MNIST-P", "MNIST-T", "makespan"],
        [
            [name, r.completion_times()["Job-1"],
             r.completion_times()["Job-2"],
             r.completion_times()["Job-3"], r.makespan]
            for name, r in results.items()
        ],
    ))
    fc = results["FlowCon-5%-20"].completion_times()["Job-3"]
    ts = results["TimeSlice-20s"].completion_times()["Job-3"]
    print(f"\nFlowCon advantage on the late small job: {ts - fc:+.1f}s")
    # Progress-aware beats progress-blind for the late arrival.
    assert fc < ts
