"""Ablation — the CL lower bound (Algorithm 1 line 22).

Without the ``1/(β·n)`` floor, a converged job's limit collapses toward
zero and the job stalls whenever the node is contended — the "abnormal
behavior caused by limited resources" the paper's floor prevents.
"""

from _render import run_once

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_pair():
    cfg = SimulationConfig(seed=1, trace=False)
    floored = run_scenario(
        fixed_three_job(), FlowConPolicy(FlowConConfig(beta=2.0)), cfg
    )
    unfloored = run_scenario(
        fixed_three_job(), FlowConPolicy(FlowConConfig(beta=None)), cfg
    )
    return floored, unfloored


def test_ablation_floor(benchmark):
    floored, unfloored = run_once(benchmark, _run_pair)
    rows = []
    for label, run in (("beta=2.0 (floor)", floored), ("beta=None", unfloored)):
        _, limits = run.trace("Job-1").cpu_limit.arrays()
        usage_mid = run.trace("Job-1").cpu_usage.mean(100.0, 150.0)
        rows.append([label, limits.min(), usage_mid, run.makespan])
    print("\n" + render_header("Ablation: CL lower bound (VAE under contention)"))
    print(
        render_table(
            ["variant", "min VAE limit", "VAE usage @100-150s", "makespan"],
            rows,
            float_fmt="{:.3f}",
        )
    )
    _, lim_f = floored.trace("Job-1").cpu_limit.arrays()
    _, lim_u = unfloored.trace("Job-1").cpu_limit.arrays()
    assert lim_f.min() >= 1.0 / 6.0 - 1e-9
    assert lim_u.min() < 0.05
