"""Table 1 — the tested deep-learning model zoo.

Paper: six models across PyTorch ("P") and TensorFlow ("T") with their
evaluation functions.  The bench instantiates every profile, trains it to
completion solo, and prints the inventory with our calibrated parameters.
"""

from _render import run_once

from repro.experiments.report import render_header, render_table
from repro.experiments.tables import table1_model_zoo
from repro.workloads.models import make_job, zoo_keys


def _build_and_verify():
    rows = table1_model_zoo()
    for key in zoo_keys():
        job = make_job(key)
        job.advance(job.total_work)
        assert job.finished
    return rows


def test_table1_model_zoo(benchmark):
    rows = run_once(benchmark, _build_and_verify)
    print("\n" + render_header("Table 1: tested deep learning models"))
    print(
        render_table(
            ["Model", "Eval. Function", "Plat.", "work (cpu·s)", "cpu demand"],
            [
                [r.model, r.eval_function, r.platform, r.base_work, r.cpu_demand]
                for r in rows
            ],
        )
    )
    assert len(rows) >= 8  # Table 1's six + the Fig. 1 extras
    platforms = {r.platform for r in rows}
    assert platforms == {"P", "T"}
