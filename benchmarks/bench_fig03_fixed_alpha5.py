"""Fig. 3 — fixed 3-job schedule, α = 5 %, itval ∈ {20…60} s vs NA.

Paper: makespans 386.1/372.4/384.8/389.0/388.1 vs 394.0 s (NA) —
FlowCon improves makespan 1–5 %; MNIST (TensorFlow) finishes much faster
(e.g. 31.9 % at itval = 30).
"""

from _render import print_sweep, run_once

from repro.experiments.figures import fig3_fixed_alpha5


def test_fig03_fixed_alpha5(benchmark):
    data = run_once(benchmark, lambda: fig3_fixed_alpha5(seed=1))
    print_sweep(
        "Figure 3: completion time, alpha=5%, interval sweep",
        data,
        "FlowCon makespan ≤ NA across intervals; MNIST-TF cut 20-30%",
    )
    na = data.makespan["NA"]
    for label, ms in data.makespan.items():
        if label != "NA":
            assert ms <= na * 1.01
            assert data.reduction_vs_na(label, "Job-3") > 5.0
