"""Table 2 — completion-time reduction of MNIST (TensorFlow).

Paper: reductions vs NA for (α = 10 %, itval ∈ 20…60): 26.2 %, 32.4 %,
14.3 %, 15.3 %, 3.1 %; and for (itval = 20, α ∈ 1…15 %): 32.1 %, 31.0 %,
21.4 %, 19.0 %, 19.8 %.  Shape: every entry positive; larger itval ⇒
smaller reduction.
"""

from _render import run_once

from repro.experiments.report import render_header, render_table
from repro.experiments.tables import table2_mnist_reduction


def test_table2_mnist_reduction(benchmark):
    table = run_once(benchmark, lambda: table2_mnist_reduction(seed=1))
    print("\n" + render_header(
        "Table 2: completion-time reduction of MNIST (Tensorflow)"
    ))
    rows = []
    alpha_labels = list(table.by_alpha)
    itval_labels = list(table.by_itval)
    for i in range(max(len(alpha_labels), len(itval_labels))):
        row = []
        if i < len(itval_labels):
            k = itval_labels[i]
            row += [f"10%, {k}", round(table.by_itval[k], 1)]
        else:
            row += ["", ""]
        if i < len(alpha_labels):
            k = alpha_labels[i]
            row += [f"{k}, 20", round(table.by_alpha[k], 1)]
        else:
            row += ["", ""]
        rows.append(row)
    print(
        render_table(
            ["α, itval (Fig. 4)", "Reduction %", "α, itval (Fig. 5)",
             "Reduction %"],
            rows,
        )
    )
    itv = [table.by_itval[k] for k in ("20", "30", "40", "50", "60")]
    assert all(v > 0 for v in itv)
    assert itv[0] >= itv[-1]
    assert all(v > 0 for v in table.by_alpha.values())
