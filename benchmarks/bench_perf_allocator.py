"""Micro-benchmark — allocator throughput.

The water-fill runs at every pool change, tick and metric sample; its
cost bounds how finely FlowCon can sample.  This is a genuine timing
benchmark (many rounds), unlike the single-shot figure benches.
"""

import numpy as np

from repro.containers.allocator import AllocationMode, CpuAllocator


def test_perf_water_fill_100_containers(benchmark):
    rng = np.random.default_rng(0)
    limits = rng.uniform(0.05, 1.0, 100)
    demands = rng.uniform(0.2, 1.0, 100)
    allocator = CpuAllocator(AllocationMode.SOFT)
    result = benchmark(lambda: allocator.allocate(1.0, limits, demands))
    assert result.sum() <= 1.0 + 1e-9


def test_perf_water_fill_1000_containers(benchmark):
    rng = np.random.default_rng(0)
    limits = rng.uniform(0.05, 1.0, 1000)
    demands = rng.uniform(0.2, 1.0, 1000)
    allocator = CpuAllocator(AllocationMode.SOFT)
    result = benchmark(lambda: allocator.allocate(1.0, limits, demands))
    assert result.sum() <= 1.0 + 1e-9
