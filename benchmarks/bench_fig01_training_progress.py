"""Fig. 1 — training progress of five models (motivation).

Paper: five containerized models training on one node; accuracy vs
cumulative time is strongly concave — the RNN-GRU reaches 96.8 % of its
final accuracy within 14.5 % of its time.

Reproduction note: in our calibration the VAE's reconstruction loss is
the extreme early riser (>99 % at 15 % of time); the classifier metrics
are concave but keep improving until their epoch budget ends, which is
what the §5.5 win profiles require (see EXPERIMENTS.md).
"""

from _render import print_fig1, run_once

from repro.experiments.figures import fig1_training_progress


def test_fig01_training_progress(benchmark):
    data = run_once(benchmark, fig1_training_progress)
    print_fig1("Figure 1: training progress of five models (solo)", data)
    # Shape guards (the bench fails loudly if the reproduction drifts).
    for name in data.curves:
        assert data.fraction_at(name, 0.5) > 0.5, name
    assert data.fraction_at("VAE (Pytorch)", 0.15) > 0.99
