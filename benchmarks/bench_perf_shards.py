"""Macro-benchmark — sharded single-run execution.

The sharded executor (``repro.cluster.shards``) partitions each fused
fleet batch into contiguous worker shards and advances them between
manager touchpoints, optionally on a process pool.  This bench drives
it on ``two_thousand_job`` — 2 000 Poisson arrivals against 64 one-slot
workers — and asserts the PR's acceptance floors:

* sharded completion digests and ``events_processed`` bit-identical to
  the plain serial engine at every shard count tried (the non-negotiable
  claim; asserted in every mode, including CI's execute-only job);
* ``shards=4`` events/s ≥ 2× the serial engine on a ≥ 4-core host
  (skipped with a reason on smaller machines — the container this repo
  usually runs in has one core).  The 64-slot arena sits far below the
  executor's ``min_parallel_rows`` IPC break-even, so the speedup basis
  here is the fused arena pass the executor inherits (measured 2.0–2.2×
  over serial on the reference container) with shard bookkeeping riding
  along; wider fleets are where the pool itself pays;
* no regression (≥ 95% of the same-run fused ticker) where sharding
  cannot help: ``shards=1`` (degenerate executor) and the single-worker
  ten-job FlowCon run (the batcher never even fires).

Timing uses ``time.process_time`` best-of-N with interleaved rounds,
same as ``bench_perf_fleet.py``; the bit-identity assertions always run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster, run_scenario
from repro.experiments.scenarios import random_ten_job, two_thousand_job

#: Machine-independent floor on the same-run shards=4/serial ratio.
_SHARDED_SPEEDUP = 2.0
#: Runs where sharding cannot engage must keep ≥ 95% of the same-run
#: fused-ticker throughput.
_NO_REGRESSION = 0.95


def _digest(completion_times: dict[str, float]) -> str:
    times = {k: repr(v) for k, v in completion_times.items()}
    return hashlib.sha256(
        json.dumps(times, sort_keys=True).encode()
    ).hexdigest()


def _run(shards: int | None, n_jobs: int = 2000):
    """two_thousand_job under the fleet-bench config.

    ``shards=None`` is the plain serial engine (the oracle);
    ``shards=1`` is the degenerate executor over the fused arena;
    ``shards>1`` is the sharded executor proper.
    """
    sc = two_thousand_job(seed=42, n_jobs=n_jobs)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(
            seed=42,
            trace=False,
            fleet_mode=shards is not None,
            shards=shards or 1,
            contention=ContentionModel.ideal(),
            sample_interval=2.0,
        ),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        placement="spread",
    )


def _best_of(fn, rounds: int = 3):
    """Best CPU-time events/s over *rounds* runs, plus the last result."""
    best = 0.0
    result = None
    for _ in range(rounds):
        t0 = time.process_time()
        result = fn()
        cpu = time.process_time() - t0
        best = max(best, result.sim.events_processed / cpu)
    return best, result


def test_perf_shards_bit_identity(benchmark):
    """Serial vs shards∈{1,2,4}: same digests, same events_processed."""
    n_jobs = 200 if getattr(benchmark, "disabled", False) else 2000
    serial = _run(None, n_jobs=n_jobs)
    want = _digest(serial.completion_times())
    assert len(serial.completion_times()) == n_jobs
    result = run_once(benchmark, lambda: _run(4, n_jobs=n_jobs))
    for shards, sharded in ((4, result), (2, _run(2, n_jobs=n_jobs)),
                            (1, _run(1, n_jobs=n_jobs))):
        assert _digest(sharded.completion_times()) == want, (
            f"shards={shards} diverged from the serial engine"
        )
        assert sharded.sim.events_processed == serial.sim.events_processed


def test_perf_shards_two_thousand_job_speedup(benchmark):
    """shards=4 ≥ 2× same-run serial on a ≥ 4-core host."""
    if getattr(benchmark, "disabled", False):
        pytest.skip("timing floors need timed mode (--benchmark-disable)")
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"shards=4 speedup floor needs >= 4 cores, host has {cores}"
        )
    _run(4, n_jobs=200)  # warm-up (imports, numpy caches, pool fork)
    serial_best, sharded_best = 0.0, 0.0
    serial_result = sharded_result = None
    for _ in range(4):
        s, serial_result = _best_of(lambda: _run(None), rounds=1)
        f, sharded_result = _best_of(lambda: _run(4), rounds=1)
        serial_best = max(serial_best, s)
        sharded_best = max(sharded_best, f)
    run_once(benchmark, lambda: _run(4))
    assert _digest(sharded_result.completion_times()) == _digest(
        serial_result.completion_times()
    )
    print("\n" + render_header("sharded executor, 64 workers, shards=4"))
    print(render_table(
        ["run", "serial ev/s", "shards=4 ev/s", "ratio"],
        [[
            "two_thousand_job",
            round(serial_best),
            round(sharded_best),
            f"{sharded_best / serial_best:.2f}x",
        ]],
    ))
    assert sharded_best >= serial_best * _SHARDED_SPEEDUP, (
        f"sharded path only {sharded_best / serial_best:.2f}x same-run "
        f"serial (want ≥ {_SHARDED_SPEEDUP}x)"
    )


def test_perf_shards_no_regression_shards_one(benchmark):
    """shards=1 degenerates to the fused ticker: ≥ 95%, identical."""
    if getattr(benchmark, "disabled", False):
        result = run_once(benchmark, lambda: _run(1, n_jobs=200))
        fused = run_cluster(
            list(two_thousand_job(seed=42, n_jobs=200).specs),
            NAPolicy,
            SimulationConfig(
                seed=42, trace=False, fleet_mode=True,
                contention=ContentionModel.ideal(), sample_interval=2.0,
            ),
            capacities=two_thousand_job(seed=42, n_jobs=200).capacities,
            max_containers=two_thousand_job(seed=42, n_jobs=200).max_containers,
            placement="spread",
        )
        assert _digest(result.completion_times()) == _digest(
            fused.completion_times()
        )
        return

    def _fused():
        sc = two_thousand_job(seed=42)
        return run_cluster(
            list(sc.specs),
            NAPolicy,
            SimulationConfig(
                seed=42, trace=False, fleet_mode=True,
                contention=ContentionModel.ideal(), sample_interval=2.0,
            ),
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            placement="spread",
        )

    _run(1, n_jobs=200)  # warm-up
    fused_best, one_best = 0.0, 0.0
    fused_result = one_result = None
    for _ in range(3):
        a, fused_result = _best_of(_fused, rounds=1)
        b, one_result = _best_of(lambda: _run(1), rounds=1)
        fused_best, one_best = max(fused_best, a), max(one_best, b)
    run_once(benchmark, lambda: _run(1))
    assert _digest(one_result.completion_times()) == _digest(
        fused_result.completion_times()
    )
    print("\n" + render_header("shards=1 vs the plain fused ticker"))
    print(render_table(
        ["run", "fused ev/s", "shards=1 ev/s", "ratio"],
        [[
            "two_thousand_job",
            round(fused_best),
            round(one_best),
            f"{one_best / fused_best:.2f}x",
        ]],
    ))
    assert one_best >= fused_best * _NO_REGRESSION, (
        f"shards=1 regressed the fused ticker: "
        f"{one_best / fused_best:.2f}x (want ≥ {_NO_REGRESSION})"
    )


def _ten_job_run(shards: int | None):
    return run_scenario(
        random_ten_job(seed=42),
        FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)),
        SimulationConfig(
            seed=42, trace=False,
            fleet_mode=shards is not None, shards=shards or 1,
        ),
    )


def test_perf_shards_no_regression_single_worker(benchmark):
    """Single worker: the executor never fires; ≥ 95%, identical."""
    if getattr(benchmark, "disabled", False):
        result = run_once(benchmark, lambda: _ten_job_run(4))
        assert (
            result.completion_times()
            == _ten_job_run(None).completion_times()
        )
        return
    _ten_job_run(4)  # warm-up
    fused_best, sharded_best = 0.0, 0.0
    fused_result = sharded_result = None
    for _ in range(5):
        a, fused_result = _best_of(lambda: _ten_job_run(1), rounds=1)
        b, sharded_result = _best_of(lambda: _ten_job_run(4), rounds=1)
        fused_best = max(fused_best, a)
        sharded_best = max(sharded_best, b)
    run_once(benchmark, lambda: _ten_job_run(4))
    assert (
        sharded_result.completion_times() == fused_result.completion_times()
    )
    print("\n" + render_header("shards=4 on the single-worker ten-job run"))
    print(render_table(
        ["run", "shards=1 ev/s", "shards=4 ev/s", "ratio"],
        [[
            "ten-job FlowCon",
            round(fused_best),
            round(sharded_best),
            f"{sharded_best / fused_best:.2f}x",
        ]],
    ))
    assert sharded_best >= fused_best * _NO_REGRESSION, (
        f"sharded executor regressed the single-worker run: "
        f"{sharded_best / fused_best:.2f}x (want ≥ {_NO_REGRESSION})"
    )
