"""Macro-benchmark — the fused fleet-tick engine.

The fleet engine (``repro.cluster.fleet``) coalesces same-instant
sampling ticks across workers into one packed settle + segmented
reallocate + shared observation pass.  This bench drives it at the scale
it exists for — ``two_thousand_job``: 2 000 Poisson arrivals against 64
one-slot workers — and asserts the PR's acceptance floors:

* fused events/s ≥ 3× the pre-fleet serial throughput (11 599 events/s
  on the reference container), with a machine-grace factor;
* fused ≥ 1.5× the *same-run* serial throughput on any machine (the
  machine-independent form of the speedup claim; measured 2.0–2.2×);
* no regression (≥ 95% of same-run serial) on the existing workloads
  the engine barely engages on — ``two_hundred_job`` (8 workers, real
  colocation depth) and ten-job FlowCon (single worker, where the
  armed batcher must be pure pass-through);
* fused completion times bit-identical to serial, at every scale timed.

Timing uses ``time.process_time`` (CPU time) with interleaved
serial/fused best-of-N: the reference container is a single core with
background load, so wall-clock swings ±20% while CPU time holds within
a few percent.  Timing-sensitive assertions are skipped under
``--benchmark-disable`` (CI's execute-only mode) and on machines slower
than the reference container; the bit-identity assertions always run.
"""

from __future__ import annotations

import hashlib
import json
import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster, run_scenario
from repro.experiments.scenarios import (
    random_ten_job,
    two_hundred_job,
    two_thousand_job,
)

#: Serial two_thousand_job throughput before the fleet engine landed
#: (seed commit, reference single-core container, CPU-time best-of-3).
_PRE_FLEET_EVENTS_PER_S = 11_599
#: Acceptance floor: ≥ 3× the pre-fleet throughput.
_TARGET_EVENTS_PER_S = 34_800
#: Near-reference machines must clear the target with this grace factor
#: — absorbs turbo/thermal noise without letting a real regression
#: (which lands back near the serial figure) slip through.
_MACHINE_GRACE = 0.90
#: Machine-independent floor on the same-run fused/serial ratio
#: (measured 2.0–2.2× on the reference container).
_SAME_RUN_SPEEDUP = 1.5
#: Workloads the fleet engine barely engages on must keep ≥ 95% of
#: same-run serial throughput.
_NO_REGRESSION = 0.95


def _digest(completion_times: dict[str, float]) -> str:
    times = {k: repr(v) for k, v in completion_times.items()}
    return hashlib.sha256(
        json.dumps(times, sort_keys=True).encode()
    ).hexdigest()


def _fleet_run(fleet_mode: bool, n_jobs: int = 2000):
    """two_thousand_job under the bench config: ideal contention (no
    jitter draws ⇒ deterministic engine-throughput isolation) and a 2 s
    sampling cadence, the regime where every tick finds the whole fleet
    busy."""
    sc = two_thousand_job(seed=42, n_jobs=n_jobs)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(
            seed=42,
            trace=False,
            fleet_mode=fleet_mode,
            contention=ContentionModel.ideal(),
            sample_interval=2.0,
        ),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        placement="spread",
    )


def _best_of(fn, rounds: int = 3):
    """Best CPU-time events/s over *rounds* runs, plus the last result."""
    best = 0.0
    result = None
    for _ in range(rounds):
        t0 = time.process_time()
        result = fn()
        cpu = time.process_time() - t0
        best = max(best, result.sim.events_processed / cpu)
    return best, result


def test_perf_fleet_two_thousand_job_throughput(benchmark):
    """2000 jobs / 64 workers: fused ≥ 3× pre-fleet serial, bit-identical."""
    if getattr(benchmark, "disabled", False):
        # CI's --benchmark-disable execute-only mode: prove the fused
        # path runs to completion and matches serial at reduced scale;
        # skip the timing-sensitive floors (CI runners are not the
        # reference container).
        result = run_once(benchmark, lambda: _fleet_run(True, n_jobs=200))
        serial = _fleet_run(False, n_jobs=200)
        assert len(result.completion_times()) == 200
        assert _digest(result.completion_times()) == _digest(
            serial.completion_times()
        )
        return
    _fleet_run(True, n_jobs=200)  # warm-up (imports, numpy caches)
    # Interleaved serial/fused rounds so drift hits both paths equally.
    serial_best, fused_best = 0.0, 0.0
    serial_result = fused_result = None
    for _ in range(4):
        s, serial_result = _best_of(lambda: _fleet_run(False), rounds=1)
        f, fused_result = _best_of(lambda: _fleet_run(True), rounds=1)
        serial_best, fused_best = max(serial_best, s), max(fused_best, f)
    run_once(benchmark, lambda: _fleet_run(True))
    assert len(fused_result.completion_times()) == 2000
    assert _digest(fused_result.completion_times()) == _digest(
        serial_result.completion_times()
    )
    assert fused_result.sim.events_processed == (
        serial_result.sim.events_processed
    )
    print("\n" + render_header("fused fleet-tick engine, 64 workers"))
    print(render_table(
        ["run", "events/s", "pre-fleet", "target", "vs seed", "vs serial"],
        [[
            "two_thousand_job fused",
            round(fused_best),
            _PRE_FLEET_EVENTS_PER_S,
            _TARGET_EVENTS_PER_S,
            f"{fused_best / _PRE_FLEET_EVENTS_PER_S:.2f}x",
            f"{fused_best / serial_best:.2f}x",
        ]],
    ))
    # The same-run ratio is machine-independent: both paths ran on this
    # hardware moments apart.
    assert fused_best >= serial_best * _SAME_RUN_SPEEDUP, (
        f"fused path only {fused_best / serial_best:.2f}x same-run serial "
        f"(want ≥ {_SAME_RUN_SPEEDUP}x)"
    )
    # The ≥3× floor is asserted only where timing is meaningful: a
    # machine whose *serial* path cannot reach the pre-fleet reference
    # figure is slower hardware, not a regression.  The full 34 800
    # events/s figure is the reference-container acceptance number
    # (recorded in ROADMAP and the BENCH_*.json trajectory).
    if serial_best >= _PRE_FLEET_EVENTS_PER_S:
        assert fused_best >= _TARGET_EVENTS_PER_S * _MACHINE_GRACE, (
            f"fleet engine regressed: {fused_best:.0f} events/s < "
            f"{_TARGET_EVENTS_PER_S} × {_MACHINE_GRACE} floor"
        )


def _two_hundred_run(fleet_mode: bool):
    return run_cluster(
        two_hundred_job(seed=0),
        NAPolicy,
        SimulationConfig(seed=0, trace=False, fleet_mode=fleet_mode),
        n_workers=8,
        max_containers=4,
        placement="spread",
    )


def test_perf_fleet_no_regression_two_hundred_job(benchmark):
    """8 workers × 4 slots: fused keeps ≥95% serial throughput, identical."""
    if getattr(benchmark, "disabled", False):
        result = run_once(benchmark, lambda: _two_hundred_run(True))
        assert _digest(result.completion_times()) == _digest(
            _two_hundred_run(False).completion_times()
        )
        return
    _two_hundred_run(True)  # warm-up
    serial_best, fused_best = 0.0, 0.0
    serial_result = fused_result = None
    for _ in range(3):
        s, serial_result = _best_of(lambda: _two_hundred_run(False), rounds=1)
        f, fused_result = _best_of(lambda: _two_hundred_run(True), rounds=1)
        serial_best, fused_best = max(serial_best, s), max(fused_best, f)
    run_once(benchmark, lambda: _two_hundred_run(True))
    assert _digest(fused_result.completion_times()) == _digest(
        serial_result.completion_times()
    )
    print("\n" + render_header("fleet mode on the 200-job Poisson stream"))
    print(render_table(
        ["run", "serial ev/s", "fused ev/s", "ratio"],
        [[
            "two_hundred_job",
            round(serial_best),
            round(fused_best),
            f"{fused_best / serial_best:.2f}x",
        ]],
    ))
    assert fused_best >= serial_best * _NO_REGRESSION, (
        f"fleet mode regressed two_hundred_job: "
        f"{fused_best / serial_best:.2f}x serial (want ≥ {_NO_REGRESSION})"
    )


def _ten_job_run(fleet_mode: bool):
    return run_scenario(
        random_ten_job(seed=42),
        FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)),
        SimulationConfig(seed=42, trace=False, fleet_mode=fleet_mode),
    )


def test_perf_fleet_no_regression_ten_job_flowcon(benchmark):
    """Single worker: the armed batcher is pure pass-through (≥95%)."""
    if getattr(benchmark, "disabled", False):
        result = run_once(benchmark, lambda: _ten_job_run(True))
        serial = _ten_job_run(False)
        assert (
            result.completion_times() == serial.completion_times()
        )
        return
    _ten_job_run(True)  # warm-up
    serial_best, fused_best = 0.0, 0.0
    serial_result = fused_result = None
    for _ in range(5):
        s, serial_result = _best_of(lambda: _ten_job_run(False), rounds=1)
        f, fused_result = _best_of(lambda: _ten_job_run(True), rounds=1)
        serial_best, fused_best = max(serial_best, s), max(fused_best, f)
    run_once(benchmark, lambda: _ten_job_run(True))
    assert (
        fused_result.completion_times() == serial_result.completion_times()
    )
    print("\n" + render_header("fleet mode on the single-worker ten-job run"))
    print(render_table(
        ["run", "serial ev/s", "fused ev/s", "ratio"],
        [[
            "ten-job FlowCon",
            round(serial_best),
            round(fused_best),
            f"{fused_best / serial_best:.2f}x",
        ]],
    ))
    assert fused_best >= serial_best * _NO_REGRESSION, (
        f"fleet mode regressed ten-job FlowCon: "
        f"{fused_best / serial_best:.2f}x serial (want ≥ {_NO_REGRESSION})"
    )
