"""Fig. 10 — CPU usage under FlowCon (α = 3 %, itval = 30), 5 random jobs.

Paper: unequal, piecewise-smooth shares tracking growth efficiency; the
sum of limits may exceed 1 thanks to the CL lower bound + soft limits.
"""

from _render import print_traces, run_once

from repro.experiments.figures import fig10_cpu_flowcon_5job


def test_fig10_cpu_flowcon_5job(benchmark):
    data = run_once(benchmark, lambda: fig10_cpu_flowcon_5job(seed=42))
    print_traces(
        "Figure 10: CPU usage, FlowCon (alpha=3%, itval=30), 5 jobs",
        data,
        "piecewise-smooth differentiated shares",
    )
    assert len(data.usage) == 5
