"""Fig. 7 — CPU usage under FlowCon (α = 5 %, itval = 20), fixed 3-job.

Paper: FlowCon dynamically sets per-job upper limits; the converged VAE
is pinned to 0.25 while the fresh MNIST jobs run near the remaining
capacity.
"""

from _render import print_traces, run_once

from repro.experiments.figures import fig7_cpu_flowcon_3job


def test_fig07_cpu_flowcon_3job(benchmark):
    data = run_once(benchmark, lambda: fig7_cpu_flowcon_3job(seed=1))
    print_traces(
        "Figure 7: CPU usage, FlowCon (alpha=5%, itval=20), 3 jobs",
        data,
        "converged VAE pinned near the CL floor; young jobs absorb the rest",
    )
    times, limits = data.limits["Job-1"]
    late = limits[times > 150.0]
    assert late.size and late.min() <= 0.26
