"""Macro-benchmark — failure injection, durable recovery and chaos cost.

Three contracts of the failure/recovery subsystem:

* **Checkpoints buy back makespan** — on the
  :func:`~repro.experiments.scenarios.rolling_restart` maintenance wave
  (every worker of a loaded 4-node fleet crashes once, in sequence)
  ``checkpoint`` durability strictly beats ``lost`` on makespan, for
  the bench seed and across seeds: resuming orphans from periodic
  snapshots instead of from zero is the whole point of paying for
  checkpoints.
* **No toll on the fair-weather path** — ``failures="none"`` is
  short-circuited exactly like the other four policy axes; on the
  200-job Poisson cluster stress it must be bit-identical to the
  default-constructed run and within noise of its throughput (~7 100
  events/s on the reference container, asserted relatively at ≥ 85 %).
* **Chaos is deterministic** — repeated fault-injected runs are
  bit-identical, retry accounting included, and every job survives the
  wave (generous retry budgets make the comparison about recovered
  work, not attrition).
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import (
    az_outage,
    rolling_restart,
    two_hundred_job,
)

_SEED = 42
_MODES = ("none", "rolling", "rolling:checkpoint")


def _chaos_run(failures, seed=_SEED):
    sc = rolling_restart(seed=seed)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=seed, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        failures=failures,
    )


def test_perf_chaos_checkpoint_beats_lost(benchmark):
    """Checkpointed recovery strictly beats restart-from-zero."""
    rows = []
    makespan = {}
    for failures in _MODES:
        t0 = time.perf_counter()
        if failures == "rolling:checkpoint":
            result = run_once(benchmark, lambda: _chaos_run(failures))
        else:
            result = _chaos_run(failures)
        wall = time.perf_counter() - t0
        summary = result.summary
        # Exactly-once accounting: the wave delays jobs, never eats one.
        assert len(summary.completions) == 16
        assert summary.failed_jobs == {}
        assert result.manager.queue_len == 0
        makespan[failures] = summary.makespan
        rows.append([
            failures,
            round(summary.makespan, 1),
            summary.total_retries(),
            round(sum(result.manager.lost_work.values()), 1),
            round(result.sim.events_processed / wall),
        ])
    print("\n" + render_header(
        "16-job burst, 4 workers × 6 slots, rolling restart wave "
        "(crash every 90s, 30s down)"
    ))
    print(render_table(
        ["failures", "makespan", "retries", "lost CPU-s", "events/s"],
        rows,
    ))
    recovered = makespan["rolling"] - makespan["rolling:checkpoint"]
    print(f"\ncheckpoints recover {recovered:.1f}s of makespan vs lost "
          f"(fair weather: {makespan['none']:.1f}s)")
    # The headline contract.  (No ordering is asserted against the
    # fair-weather run: re-queued orphans re-place onto the least
    # loaded survivor, so on burst shapes the wave can act as an
    # accidental rebalancer and beat the undisturbed makespan.)
    assert makespan["rolling:checkpoint"] < makespan["rolling"]


def test_perf_chaos_checkpoint_wins_across_seeds():
    """The durability gap is a property of the shape, not one seed."""
    for seed in (0, 1, 2):
        lost = _chaos_run("rolling", seed=seed)
        ckpt = _chaos_run("rolling:checkpoint", seed=seed)
        # Apples to apples: nobody exhausted a budget in either run.
        assert lost.summary.failed_jobs == {}
        assert ckpt.summary.failed_jobs == {}
        assert ckpt.summary.makespan < lost.summary.makespan


def test_perf_chaos_az_outage_recovers():
    """The correlated-outage scenario drains cleanly end to end."""
    sc = az_outage(seed=_SEED)
    result = run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=_SEED, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        failures=sc.failures,
    )
    summary = result.summary
    assert len(summary.completions) == 20
    assert summary.failed_jobs == {}
    # The outage actually orphaned running containers.
    assert summary.total_retries() >= 1
    assert len(result.manager.workers) == 6


def test_perf_chaos_no_failure_fast_path(benchmark):
    """Explicit ``failures="none"`` is bit-identical to the default
    path and within noise of its throughput on the 200-job stress."""

    def _cluster(failures=None):
        return run_cluster(
            two_hundred_job(seed=0),
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=8,
            max_containers=4,
            failures=failures,
        )

    t0 = time.perf_counter()
    default = _cluster(None)
    default_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    explicit = run_once(benchmark, lambda: _cluster("none"))
    explicit_wall = time.perf_counter() - t0

    assert explicit.completion_times() == default.completion_times()
    assert (explicit.sim.events_processed
            == default.sim.events_processed)

    default_rate = default.sim.events_processed / default_wall
    explicit_rate = explicit.sim.events_processed / explicit_wall
    print(f"\nfailures='none': {explicit_rate:,.0f} events/s explicit vs "
          f"{default_rate:,.0f} default")
    # Within noise: the short-circuited axis may not cost > 15 %.
    assert explicit_rate >= 0.85 * default_rate


def test_perf_chaos_deterministic():
    """Repeated fault-injected runs are bit-identical, retries included."""
    a, b = _chaos_run("rolling:checkpoint"), _chaos_run("rolling:checkpoint")
    assert a.completion_times() == b.completion_times()
    assert a.summary.retries == b.summary.retries
    assert a.manager.lost_work == b.manager.lost_work
