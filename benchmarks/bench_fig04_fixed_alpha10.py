"""Fig. 4 — fixed 3-job schedule, α = 10 %, itval ∈ {20…60} s vs NA.

Paper: same trend as Fig. 3; Table 2's first column derives from this
sweep (reductions 26.2 %, 32.4 %, 14.3 %, 15.3 %, 3.1 % for itval
20…60 — shrinking as the interval grows).
"""

from _render import print_sweep, run_once

from repro.experiments.figures import fig4_fixed_alpha10


def test_fig04_fixed_alpha10(benchmark):
    data = run_once(benchmark, lambda: fig4_fixed_alpha10(seed=1))
    print_sweep(
        "Figure 4: completion time, alpha=10%, interval sweep",
        data,
        "reductions positive everywhere, shrinking with larger itval",
    )
    reductions = [
        data.reduction_vs_na(label, "Job-3")
        for label in ("20", "30", "40", "50", "60")
    ]
    assert all(r > 0 for r in reductions)
    assert reductions[0] >= reductions[-1]  # paper's itval trend
