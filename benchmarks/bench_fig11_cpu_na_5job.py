"""Fig. 11 — CPU usage under NA, 5 random jobs.

Paper: usage is *not* equally distributed because the LSTM-CFC cannot
maximize its CPU even running alone; the spare capacity flows to
whichever jobs can use it.
"""

from _render import print_traces, run_once

from repro.experiments.figures import fig11_cpu_na_5job


def test_fig11_cpu_na_5job(benchmark):
    data = run_once(benchmark, lambda: fig11_cpu_na_5job(seed=42))
    print_traces(
        "Figure 11: CPU usage, NA, 5 jobs",
        data,
        "demand-limited LSTM-CFC stays under ~0.35 even when alone",
    )
    cfc_label = next(
        trace.label
        for trace in data.run.recorder.traces.values()
        if "lstm_cfc" in trace.image
    )
    _, usage = data.usage[cfc_label]
    assert usage.max() <= 0.40
