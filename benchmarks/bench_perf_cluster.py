"""Macro-benchmark — placement + admission-queue throughput at cluster scale.

The acceptance workload of the scheduling layer: the 200-job Poisson
open-arrival stream (:func:`repro.experiments.scenarios.two_hundred_job`)
on an 8-worker cluster with 4 admission slots per worker, so the
manager's FIFO queue absorbs every burst the Poisson process produces.
Reports end-to-end events/s and jobs/s per placement policy plus the
admission-queue profile (peak depth, mean/max delay), and asserts the
determinism contract: repeated runs and ``workers=N`` batch execution
produce identical results.
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.batch import run_many
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import two_hundred_job

_N_WORKERS = 8
_SLOTS = 4
_CFG = SimulationConfig(seed=0, trace=False)


def _specs():
    return two_hundred_job(seed=0)


def _run(placement="spread"):
    return run_cluster(
        _specs(),
        NAPolicy,
        _CFG,
        n_workers=_N_WORKERS,
        max_containers=_SLOTS,
        placement=placement,
    )


def _report(result, wall):
    summary = result.summary
    delays = [d for d in summary.queue_delays.values() if d > 0]
    return [
        round(result.sim.events_processed / wall),
        round(len(summary.completions) / wall, 1),
        summary.peak_queue_len,
        len(delays),
        round(sum(delays) / len(delays), 1) if delays else 0.0,
        round(summary.max_queue_delay(), 1),
        round(summary.makespan, 1),
    ]


def test_perf_cluster_throughput(benchmark):
    rows = []
    for placement in ("spread", "binpack", "random", "affinity"):
        t0 = time.perf_counter()
        if placement == "spread":
            result = run_once(benchmark, _run)
        else:
            result = _run(placement)
        wall = time.perf_counter() - t0
        assert len(result.summary.completions) == 200
        assert result.summary.peak_queue_len > 0  # queueing really occurred
        assert result.manager.queue_len == 0      # ... and fully drained
        rows.append([placement] + _report(result, wall))
    print("\n" + render_header(
        f"200 Poisson jobs on {_N_WORKERS} workers × {_SLOTS} slots"
    ))
    print(render_table(
        ["placement", "events/s", "jobs/s", "peak queue",
         "n queued", "mean delay", "max delay", "makespan"],
        rows,
    ))


def test_perf_cluster_deterministic():
    """Repeated runs of the open-arrival cluster are bit-identical."""
    a, b = _run(), _run()
    assert a.completion_times() == b.completion_times()
    assert a.summary.queue_delays == b.summary.queue_delays
    assert a.summary.peak_queue_len == b.summary.peak_queue_len


def test_perf_cluster_batch_parity():
    """Serial vs process-pool batch execution never changes results."""
    direct = _run()
    [serial] = run_many(
        [_specs()], NAPolicy, _CFG, workers=1, seeds=[0],
        n_workers=_N_WORKERS, max_containers=_SLOTS,
    )
    [pooled] = run_many(
        [_specs()], NAPolicy, _CFG, workers=2, seeds=[0],
        n_workers=_N_WORKERS, max_containers=_SLOTS,
    )
    assert serial.completion_times() == pooled.completion_times()
    assert serial.completion_times() == direct.completion_times()
    assert serial.peak_queue_len == pooled.peak_queue_len
    assert serial.peak_queue_len == direct.summary.peak_queue_len
