"""Macro-benchmark — parallel vs serial batch sweep throughput.

Runs the same 20-scenario FlowCon batch twice: once serially in-process
and once through :func:`repro.experiments.batch.run_many` with a
4-process pool, asserting the records are identical and reporting the
wall-clock speedup.  On a multi-core host the parallel path should
approach ``min(4, cores)×``; on a single core it degrades gracefully to
roughly serial speed plus pool overhead.
"""

from __future__ import annotations

import os
import time
from functools import partial

from _render import run_once

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.batch import run_many
from repro.experiments.scenarios import random_five_job

_N_SCENARIOS = 20
_POOL = 4


def _batch_inputs():
    seeds = list(range(_N_SCENARIOS))
    specs_list = [random_five_job(seed=s) for s in seeds]
    factory = partial(FlowConPolicy, FlowConConfig(alpha=0.10, itval=20.0))
    cfg = SimulationConfig(trace=False)
    return specs_list, factory, cfg, seeds


def test_perf_batch_serial(benchmark):
    specs_list, factory, cfg, seeds = _batch_inputs()
    records = run_once(
        benchmark,
        lambda: run_many(specs_list, factory, cfg, workers=1, seeds=seeds),
    )
    assert len(records) == _N_SCENARIOS


def test_perf_batch_parallel(benchmark):
    specs_list, factory, cfg, seeds = _batch_inputs()
    records = run_once(
        benchmark,
        lambda: run_many(specs_list, factory, cfg, workers=_POOL, seeds=seeds),
    )
    assert len(records) == _N_SCENARIOS


def test_perf_batch_parallel_matches_serial():
    """Determinism contract: worker count never changes results."""
    specs_list, factory, cfg, seeds = _batch_inputs()
    t0 = time.perf_counter()
    serial = run_many(specs_list, factory, cfg, workers=1, seeds=seeds)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_many(specs_list, factory, cfg, workers=_POOL, seeds=seeds)
    t_parallel = time.perf_counter() - t0
    assert [r.completion_times() for r in serial] == [
        r.completion_times() for r in parallel
    ]
    assert [r.makespan for r in serial] == [r.makespan for r in parallel]
    print(
        f"\n20-scenario sweep: serial {t_serial:.2f}s, "
        f"parallel(workers={_POOL}) {t_parallel:.2f}s "
        f"({t_serial / t_parallel:.2f}x, {os.cpu_count()} cores)"
    )
