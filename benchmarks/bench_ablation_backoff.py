"""Ablation — exponential back-off (Algorithm 1 line 17).

The back-off exists to cut scheduling overhead once every container is
completing.  The bench measures how many Algorithm 1 executions it saves
on the fixed 3-job schedule while leaving completion times untouched.
"""

from _render import run_once

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


def _run_pair():
    cfg = SimulationConfig(seed=1, trace=False)
    on_policy = FlowConPolicy(FlowConConfig(backoff_enabled=True))
    off_policy = FlowConPolicy(FlowConConfig(backoff_enabled=False))
    on = run_scenario(fixed_three_job(), on_policy, cfg)
    off = run_scenario(fixed_three_job(), off_policy, cfg)
    return on, off, on_policy.executor, off_policy.executor


def test_ablation_backoff(benchmark):
    on, off, ex_on, ex_off = run_once(benchmark, _run_pair)
    print("\n" + render_header("Ablation: exponential back-off"))
    print(
        render_table(
            ["variant", "Algorithm-1 runs", "back-offs", "makespan"],
            [
                ["backoff ON", ex_on.runs, ex_on.backoffs, on.makespan],
                ["backoff OFF", ex_off.runs, ex_off.backoffs, off.makespan],
            ],
        )
    )
    saved = ex_off.runs - ex_on.runs
    print(f"\nscheduler executions saved by back-off: {saved}")
    assert ex_on.runs < ex_off.runs
    assert abs(on.makespan - off.makespan) / off.makespan < 0.05
