"""Extension — NL/WL/CL list dynamics over a 10-job run.

Visualizes Algorithm 1's classification flow: list occupancy over time
and per-list dwell-time totals.  This is the mechanism behind every
completion-time figure: jobs are boosted while in NL and throttled while
in CL.
"""

from _render import run_once

import numpy as np

from repro.analysis.listdynamics import dwell_times, list_timeline
from repro.config import FlowConConfig, SimulationConfig
from repro.core.lists import ListName
from repro.core.policy import FlowConPolicy
from repro.experiments.report import (
    render_header,
    render_sparkline,
    render_table,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import random_ten_job


def _run():
    policy = FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0))
    result = run_scenario(
        random_ten_job(seed=42), policy, SimulationConfig(seed=42, trace=False)
    )
    return result, policy.executor


def test_ext_list_dynamics(benchmark):
    result, executor = run_once(benchmark, _run)
    timeline = list_timeline(executor.lists)
    dwell = dwell_times(executor.lists, end_time=result.makespan)

    print("\n" + render_header(
        "Extension: NL/WL/CL occupancy, 10 jobs, FlowCon-10%-20"
    ))
    grid = np.linspace(0.0, result.makespan * 0.999, 240)
    for name in ListName:
        series = timeline[name]
        values = np.array([
            series.value_at(min(max(t, series.t_start), series.t_end))
            for t in grid
        ])
        print(f"{name.value:<3} |{render_sparkline(values, width=60)}| "
              f"peak {int(values.max())}")
    print()
    print(render_table(
        ["list", "total dwell (job·s)", "containers that visited"],
        [
            [name.value, round(sum(dwell[name].values()), 1),
             len(dwell[name])]
            for name in ListName
        ],
    ))
    # Mechanism checks: every job visits NL; some work flows through CL.
    assert len(dwell[ListName.NL]) == 10
    assert sum(dwell[ListName.CL].values()) > 0
