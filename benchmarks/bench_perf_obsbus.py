"""Micro-benchmark — the observation-bus sampling path.

The #1 hot path of the ten-job profile is metric sampling:
``MetricsRecorder.sample_now`` → ``Worker.poke`` → per-container window
query + ``E(p)`` evaluation.  This bench drives that path with **all
three observer families active at once** — the metrics recorder,
FlowCon's container monitor and a SLAQ-signal progress observer — and
asserts the zero-redundancy contract end to end:

* the ten-job FlowCon run clears the PR's events/s floor (≥ 1.5× the
  pre-bus 3 780 events/s on the reference container);
* a sampling tick with every observer active issues exactly one settle
  and one uncached cgroup window query per container;
* checkpoint pruning keeps the 200-job Poisson stream's cgroup history
  bounded instead of linear in run length.

Timing-sensitive assertions are skipped under ``--benchmark-disable``
(CI's execute-only mode) and on machines slower than the reference
container; the structural query-count and memory-bound assertions always
run.
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.cluster.signals import ProgressObserver
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster, run_scenario
from repro.experiments.scenarios import random_ten_job, two_hundred_job

#: The ten-job FlowCon throughput before the observation bus landed
#: (ROADMAP "Performance notes", reference single-core container).
_PRE_BUS_EVENTS_PER_S = 3_780
#: Acceptance floor: ≥ 1.5× the pre-bus throughput.
_TARGET_EVENTS_PER_S = 5_600
#: Machines at (or near) reference speed must clear the target with this
#: grace factor — absorbs turbo/thermal noise without letting a real
#: regression (which lands back near the pre-bus figure) slip through.
_MACHINE_GRACE = 0.90


def _flowcon_run():
    return run_scenario(
        random_ten_job(seed=42),
        FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)),
        SimulationConfig(seed=42, trace=False),
    )


def test_perf_obsbus_ten_job_throughput(benchmark):
    """Ten-job FlowCon events/s with recorder + monitor + progress observer."""
    if getattr(benchmark, "disabled", False):
        # CI's --benchmark-disable execute-only mode: prove the path
        # runs to completion, skip the timing-sensitive assertion (CI
        # runners are not the reference container).
        result = run_once(benchmark, _flowcon_run)
        assert len(result.completion_times()) == 10
        return
    # Warm-up run outside timing (imports, numpy caches).
    _flowcon_run()
    best = 0.0
    result = None
    for _ in range(5):
        t0 = time.perf_counter()
        result = _flowcon_run()
        wall = time.perf_counter() - t0
        best = max(best, result.sim.events_processed / wall)
    run_once(benchmark, _flowcon_run)
    assert len(result.completion_times()) == 10
    print("\n" + render_header("observation-bus sampling path"))
    print(render_table(
        ["run", "events/s", "pre-bus", "target", "speedup"],
        [[
            "ten-job FlowCon",
            round(best),
            _PRE_BUS_EVENTS_PER_S,
            _TARGET_EVENTS_PER_S,
            f"{best / _PRE_BUS_EVENTS_PER_S:.2f}x",
        ]],
    ))
    # The ≥1.5× floor is asserted only where timing is meaningful: a
    # machine that cannot even reach the pre-bus throughput is slower
    # hardware, not a regression.  The full 5 600 events/s figure is the
    # reference-container acceptance number (recorded in ROADMAP and the
    # BENCH_*.json trajectory); near-reference machines get a small
    # grace factor so turbo/thermal noise cannot fail a healthy build.
    if best >= _PRE_BUS_EVENTS_PER_S:
        assert best >= _TARGET_EVENTS_PER_S * _MACHINE_GRACE, (
            f"sampling path regressed: {best:.0f} events/s < "
            f"{_TARGET_EVENTS_PER_S} × {_MACHINE_GRACE} floor"
        )


def test_perf_obsbus_single_query_per_tick():
    """3 concurrent observer families ⇒ 1 settle + 1 window query/container."""
    from repro.cluster.worker import Worker
    from repro.simcore.engine import Simulator

    sim = Simulator(seed=3, trace=False)
    fresh = Worker(sim)
    for spec in random_ten_job(seed=3)[:6]:
        fresh.launch(spec.build_job(), name=spec.label)
    observers = [fresh.obsbus.sampler() for _ in range(2)]
    progress = ProgressObserver()
    fresh.obsbus.prune = False  # exact query accounting

    def tick(now):
        sim.clock.advance_to(now)
        fresh.poke()
        for sub in observers:
            for obs in fresh.obsbus.observe():
                sub.sample(obs)
        progress.observe(fresh, now)

    tick(5.0)  # warm-up seeds the snapshot memos
    containers = fresh.running_containers()
    for c in containers:
        c.cgroup.window_queries = 0
    marks = {c.cid: c.cgroup.checkpoint_count for c in containers}
    for step in range(2, 7):
        tick(5.0 * step)
    for c in containers:
        assert c.cgroup.window_queries == 5, (
            f"{c.name}: {c.cgroup.window_queries} uncached window queries "
            "for 5 ticks with 3 subscribers (want exactly 1 per tick)"
        )
        assert c.cgroup.checkpoint_count - marks[c.cid] == 5


def test_perf_obsbus_checkpoint_bound_poisson():
    """two_hundred_job: cgroup history stays bounded (pruned), not linear."""
    result = run_cluster(
        two_hundred_job(seed=0),
        NAPolicy,
        SimulationConfig(seed=0, trace=False),
        n_workers=8,
        max_containers=4,
    )
    counts = [
        c.cgroup.checkpoint_count
        for w in result.workers
        for c in w.runtime.all_containers()
    ]
    assert len(counts) == 200
    peak = max(counts)
    mean = sum(counts) / len(counts)
    print("\n" + render_header("checkpoint pruning on the Poisson stream"))
    print(render_table(
        ["containers", "peak checkpoints", "mean", "unpruned (measured)"],
        [[len(counts), peak, round(mean, 1), "284 peak / 144.7 mean"]],
    ))
    # Unpruned, the same run peaks at ~284 checkpoints and grows linearly
    # with run length; the bus bounds it by the live observation window.
    assert peak <= 64
