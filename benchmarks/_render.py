"""Shared rendering helpers for the figure/table benchmarks.

Each benchmark regenerates one figure or table of the paper and prints it
in ASCII next to the paper's reported shape, so ``pytest benchmarks/
--benchmark-only -s`` produces a full side-by-side reproduction report.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import (
    Fig1Data,
    GrowthCompareData,
    ScaleData,
    SweepData,
    TraceData,
)
from repro.experiments.report import (
    render_bars,
    render_header,
    render_sparkline,
    render_table,
)

__all__ = [
    "print_fig1",
    "print_sweep",
    "print_scale",
    "print_traces",
    "print_growth_compare",
    "run_once",
]


def run_once(benchmark, fn):
    """Run a generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_fig1(title: str, data: Fig1Data) -> None:
    print("\n" + render_header(title))
    for name, (t, v) in data.curves.items():
        line = render_sparkline(v, width=60, vmin=0.0, vmax=1.0)
        at15 = data.fraction_at(name, 0.15)
        at50 = data.fraction_at(name, 0.50)
        print(f"{name:<36} |{line}|")
        print(f"{'':<36}  15% time → {at15:5.1%} of improvement; "
              f"50% → {at50:5.1%}")


def print_sweep(title: str, data: SweepData, paper_note: str) -> None:
    print("\n" + render_header(title))
    configs = list(data.completion.keys())
    jobs = sorted(data.job_names)
    rows = []
    for cfg in configs:
        row = [cfg]
        row.extend(round(data.completion[cfg][j], 1) for j in jobs)
        row.append(round(data.makespan[cfg], 1))
        rows.append(row)
    headers = [data.parameter] + [
        f"{j} ({data.job_names[j]})" for j in jobs
    ] + ["makespan"]
    print(render_table(headers, rows))
    print("\nReduction vs NA for each config (Job-3 = MNIST (Tensorflow)):")
    for cfg in configs:
        if cfg == "NA":
            continue
        print(f"  {cfg:>6}: {data.reduction_vs_na(cfg, 'Job-3'):6.1f} %")
    print(f"\npaper shape: {paper_note}")


def print_scale(title: str, data: ScaleData, paper_note: str) -> None:
    print("\n" + render_header(title))
    jobs = sorted(
        data.job_names, key=lambda label: int(label.split("-")[1])
    )
    for cfg, times in data.completion.items():
        print(f"\n[{cfg}]  makespan = {data.makespan[cfg]:.1f}s")
        print(render_bars(
            [f"{j} {data.job_names[j][:22]}" for j in jobs],
            [times[j] for j in jobs],
        ))
    for cfg in data.completion:
        if cfg == "NA":
            continue
        reductions = data.reductions(cfg)
        best = max(reductions, key=reductions.get)
        worst = min(reductions, key=reductions.get)
        print(
            f"\n{cfg}: wins {data.wins(cfg)}/{len(jobs)}, "
            f"best {best} {reductions[best]:+.1f}%, "
            f"worst {worst} {reductions[worst]:+.1f}%, "
            f"makespan Δ {data.makespan['NA'] - data.makespan[cfg]:+.1f}s"
        )
    print(f"\npaper shape: {paper_note}")


def print_traces(title: str, data: TraceData, paper_note: str) -> None:
    print("\n" + render_header(title))
    print(f"policy: {data.policy}   makespan: {data.makespan:.1f}s")
    for label in sorted(data.usage, key=lambda s: int(s.split("-")[1])):
        times, values = data.usage[label]
        line = render_sparkline(values, width=60, vmin=0.0, vmax=1.0)
        print(f"{label:<8} |{line}|  mean {values.mean():.2f}  "
              f"jitter {data.jitter[label]:.4f}")
    mean_jitter = float(np.mean(list(data.jitter.values())))
    print(f"mean jitter index: {mean_jitter:.4f}")
    print(f"\npaper shape: {paper_note}")


def print_growth_compare(
    title: str, data: GrowthCompareData, paper_note: str
) -> None:
    print("\n" + render_header(title))
    print(f"job: {data.job_label} ({data.job_name})")
    for name, (t, v) in (("FlowCon", data.flowcon), ("NA", data.na)):
        if v.size:
            print(f"{name:<8} |{render_sparkline(v, width=60)}|  "
                  f"peak {v.max():.4g}")
    print(
        f"completion: NA {data.na_completion:.1f}s → "
        f"FlowCon {data.flowcon_completion:.1f}s "
        f"({(data.na_completion - data.flowcon_completion) / data.na_completion:+.1%})"
    )
    print(f"\npaper shape: {paper_note}")
