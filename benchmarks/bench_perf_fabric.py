"""Macro-benchmark — control-plane fabric parity and recovery contracts.

Three contracts of the message-fabric subsystem:

* **No toll on the ideal path** — every manager↔worker interaction now
  flows through the fabric as a typed message, so the default
  :class:`~repro.cluster.fabric.IdealFabric` must be invisible: on the
  200-job Poisson cluster stress an explicit ``fabric="ideal"`` run is
  bit-identical to the default-constructed run (completion times and
  ``events_processed`` included) and within noise of its throughput
  (asserted relatively at ≥ 95 %).
* **Retry earns its keep** — on the
  :func:`~repro.experiments.scenarios.network_partition` scenario (a
  30 s clean split that swallows exit notifications and placements to
  half the fleet) the retry/backoff/reconcile stack strictly beats the
  fire-once ``noretry`` baseline on makespan *and* failed-job count,
  for the bench seed and across seeds 0–2: resent placements land once
  the partition heals, and late-delivered exits un-blind the manager
  before the slow reconcile audit does.
* **Fault plans are deterministic** — repeated partitioned runs are
  bit-identical, per-message counters included.
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import (
    gray_network,
    network_partition,
    two_hundred_job,
)

_SEED = 42
_NORETRY = "partition(25..55):noretry(reconcile=45)"


def _partition_run(fabric=None, seed=_SEED):
    sc = network_partition(seed=seed)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=seed, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        fabric=fabric if fabric is not None else sc.fabric,
    )


def test_perf_fabric_ideal_parity(benchmark):
    """Explicit ``fabric="ideal"`` is bit-identical to the default path
    and within noise of its throughput on the 200-job stress."""

    def _cluster(fabric=None):
        return run_cluster(
            two_hundred_job(seed=0),
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=8,
            max_containers=4,
            fabric=fabric,
        )

    def _best_wall(fn, repeats=3):
        result, best = None, float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return result, best

    _cluster(None)  # warm caches off the clock
    default, default_wall = _best_wall(lambda: _cluster(None))
    explicit, explicit_wall = _best_wall(lambda: _cluster("ideal"))
    run_once(benchmark, lambda: _cluster("ideal"))

    assert explicit.completion_times() == default.completion_times()
    assert (explicit.sim.events_processed
            == default.sim.events_processed)
    # The message surface is real, not vestigial: every placement and
    # exit crossed the fabric.
    assert explicit.summary.messages_sent() >= 400

    default_rate = default.sim.events_processed / default_wall
    explicit_rate = explicit.sim.events_processed / explicit_wall
    print(f"\nfabric='ideal': {explicit_rate:,.0f} events/s explicit vs "
          f"{default_rate:,.0f} default")
    # Inline delivery may not cost > 5 % against the default path.
    assert explicit_rate >= 0.95 * default_rate


def test_perf_fabric_retry_beats_noretry(benchmark):
    """Backoff + reconcile strictly beats fire-once under a partition."""
    rows = []
    results = {}
    for label, fabric in (("retry", None), ("noretry", _NORETRY)):
        t0 = time.perf_counter()
        if label == "retry":
            result = run_once(benchmark, lambda: _partition_run(fabric))
        else:
            result = _partition_run(fabric)
        wall = time.perf_counter() - t0
        summary = result.summary
        # Exactly-once accounting: every job completed xor failed, and
        # nothing is left queued, reserved or in flight.
        assert len(summary.completions) + len(summary.failed_jobs) == 60
        assert result.manager.queue_len == 0
        assert all(w.reserved == 0 for w in result.manager.workers)
        results[label] = summary
        rows.append([
            label,
            round(summary.makespan, 1),
            len(summary.failed_jobs),
            int(summary.message_retries()),
            int(summary.messages_dropped()),
            round(result.sim.events_processed / wall),
        ])
    print("\n" + render_header(
        "60-job burst, 6 workers × 2 slots, 30s partition darkening "
        "half the fleet"
    ))
    print(render_table(
        ["fabric", "makespan", "failed", "resends", "drops", "events/s"],
        rows,
    ))
    retry, noretry = results["retry"], results["noretry"]
    gap = noretry.makespan - retry.makespan
    print(f"\nretry recovers {gap:.1f}s of makespan and "
          f"{len(noretry.failed_jobs)} jobs vs noretry")
    # The headline contracts: strictly better on both axes.
    assert retry.makespan < noretry.makespan
    assert len(retry.failed_jobs) < len(noretry.failed_jobs)
    assert retry.failed_jobs == {}


def test_perf_fabric_retry_wins_across_seeds():
    """The recovery gap is a property of the shape, not one seed."""
    for seed in (0, 1, 2):
        retry = _partition_run(seed=seed)
        noretry = _partition_run(_NORETRY, seed=seed)
        assert retry.summary.makespan < noretry.summary.makespan
        assert (len(retry.summary.failed_jobs)
                < len(noretry.summary.failed_jobs))


def test_perf_fabric_gray_link_drains():
    """The gray-link scenario recovers end to end despite the slow,
    lossy worker: resends land and every job resolves exactly once."""
    sc = gray_network(seed=_SEED)
    result = run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=_SEED, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        fabric=sc.fabric,
    )
    summary = result.summary
    assert len(summary.completions) + len(summary.failed_jobs) == 24
    assert summary.message_retries() >= 1
    assert summary.messages_dropped() >= 1
    assert result.manager.queue_len == 0


def test_perf_fabric_deterministic():
    """Repeated partitioned runs are bit-identical, counters included."""
    a, b = _partition_run(), _partition_run()
    assert a.completion_times() == b.completion_times()
    assert a.summary.fabric_stats == b.summary.fabric_stats
    assert sorted(a.summary.failed_jobs) == sorted(b.summary.failed_jobs)
