"""Macro-benchmark — multi-tenant fairness and admission-path throughput.

Two contracts of the pluggable admission subsystem:

* **Fairness** — on the :func:`~repro.experiments.scenarios.multi_tenant`
  scenario (a heavy ``batch`` tenant flooding the Poisson stream, a
  light ``interactive`` tenant at 4× weight) weighted fair queueing cuts
  the light tenant's p95 queue delay well below FIFO's, deterministic
  across repeats and ``workers=N`` batch execution.
* **No toll on the fast path** — ``admission="fifo"`` is the historical
  deque behind one indirection; on the 200-job Poisson cluster workload
  it must stay within noise of the default-path throughput (~7 150
  events/s on the reference container).  Asserted *relatively*: the same
  run through the explicit-``fifo`` manager may not be more than 15 %
  slower than the default-constructed manager on this machine, and the
  results must be bit-identical.

An elastic-fleet section reports what queue-driven autoscaling does to
the same backlog: makespan, peak fleet and p95 delay with
``autoscale="queue_depth"`` on the undersized
:func:`~repro.experiments.scenarios.elastic_cluster` shape.
"""

from __future__ import annotations

import time

from _render import run_once

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.batch import run_many
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import (
    elastic_cluster,
    multi_tenant,
    two_hundred_job,
)

_SEED = 42
_CFG = SimulationConfig(seed=_SEED, trace=False)
_ADMISSIONS = ("fifo", "priority", "wfq", "sjf")


def _mt_run(admission="wfq", seed=_SEED):
    sc = multi_tenant(seed=seed)
    return run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=seed, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        admission=admission,
    )


def test_perf_admission_fairness(benchmark):
    """wfq cuts the light tenant's p95 queue delay vs fifo."""
    rows = []
    p95 = {}
    for admission in _ADMISSIONS:
        t0 = time.perf_counter()
        if admission == "wfq":
            result = run_once(benchmark, _mt_run)
        else:
            result = _mt_run(admission)
        wall = time.perf_counter() - t0
        summary = result.summary
        assert len(summary.completions) == 80
        assert result.manager.queue_len == 0
        p95[admission] = summary.p95_queue_delay("interactive")
        rows.append([
            admission,
            round(summary.p95_queue_delay("interactive"), 1),
            round(summary.mean_queue_delay("interactive"), 1),
            round(summary.p95_queue_delay("batch"), 1),
            round(summary.makespan, 1),
            round(result.sim.events_processed / wall),
        ])
    print("\n" + render_header(
        "80-job Poisson stream, tenants interactive(w=4) vs batch(w=1), "
        "4 workers × 2 slots"
    ))
    print(render_table(
        ["admission", "p95 int", "mean int", "p95 batch",
         "makespan", "events/s"],
        rows,
    ))
    saved = 1.0 - p95["wfq"] / p95["fifo"]
    print(f"\nwfq cuts the interactive tenant's p95 queue delay "
          f"{saved:.0%} vs fifo")
    # The asserted fairness margin: ≥ 25 % p95 reduction for the light
    # tenant (measured ~50 % on the reference shape).
    assert p95["wfq"] <= 0.75 * p95["fifo"]


def test_perf_admission_fairness_holds_across_seeds():
    """The fairness gain is a property of the shape, not one seed."""
    for seed in (0, 1, 2):
        fifo = _mt_run("fifo", seed=seed)
        wfq = _mt_run("wfq", seed=seed)
        assert (
            wfq.summary.p95_queue_delay("interactive")
            < fifo.summary.p95_queue_delay("interactive")
        )


def test_perf_admission_fifo_throughput_parity(benchmark):
    """Explicit ``fifo`` admission adds no measurable toll and is
    bit-identical to the default path on the 200-job cluster stress."""

    def _cluster(admission=None):
        return run_cluster(
            two_hundred_job(seed=0),
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=8,
            max_containers=4,
            admission=admission,
        )

    t0 = time.perf_counter()
    default = _cluster(None)
    default_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    explicit = run_once(benchmark, lambda: _cluster("fifo"))
    explicit_wall = time.perf_counter() - t0

    assert explicit.completion_times() == default.completion_times()
    assert explicit.summary.queue_delays == default.summary.queue_delays

    default_rate = default.sim.events_processed / default_wall
    explicit_rate = explicit.sim.events_processed / explicit_wall
    print(f"\nfifo admission: {explicit_rate:,.0f} events/s explicit vs "
          f"{default_rate:,.0f} default")
    # Within noise: the explicit policy path may not cost > 15 %.
    assert explicit_rate >= 0.85 * default_rate


def test_perf_admission_deterministic():
    """Repeated wfq runs are bit-identical, per-tenant delays included."""
    a, b = _mt_run(), _mt_run()
    assert a.completion_times() == b.completion_times()
    assert a.summary.queue_delays == b.summary.queue_delays
    assert a.summary.tenants == b.summary.tenants


def test_perf_admission_batch_parity():
    """Serial vs process-pool batch execution never changes results."""
    sc = multi_tenant(seed=_SEED)
    direct = _mt_run()
    [serial] = run_many(
        [list(sc.specs)], NAPolicy, _CFG, workers=1, seeds=[_SEED],
        capacities=sc.capacities, max_containers=sc.max_containers,
        admission="wfq",
    )
    [pooled] = run_many(
        [list(sc.specs)], NAPolicy, _CFG, workers=2, seeds=[_SEED],
        capacities=sc.capacities, max_containers=sc.max_containers,
        admission="wfq",
    )
    assert serial.completion_times() == pooled.completion_times()
    assert serial.completion_times() == direct.completion_times()
    assert dict(serial.tenants) == direct.summary.tenants
    assert serial.summary().p95_queue_delay(
        "interactive"
    ) == direct.summary.p95_queue_delay("interactive")


def test_perf_admission_elastic_fleet():
    """Queue-driven autoscaling collapses the burst backlog."""
    sc = elastic_cluster(seed=_SEED)
    cfg = SimulationConfig(seed=_SEED, trace=False, max_containers=3)
    rows = []
    results = {}
    for autoscale in ("none", "queue_depth"):
        t0 = time.perf_counter()
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            cfg,
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            autoscale=autoscale,
        )
        wall = time.perf_counter() - t0
        results[autoscale] = result
        summary = result.summary
        rows.append([
            autoscale,
            round(summary.makespan, 1),
            summary.peak_fleet() or len(result.workers),
            summary.final_fleet() or len(result.workers),
            round(summary.p95_queue_delay(), 1),
            round(result.sim.events_processed / wall),
        ])
    print("\n" + render_header(
        "48-job burst on an undersized 2-worker fleet"
    ))
    print(render_table(
        ["autoscale", "makespan", "peak fleet", "final fleet",
         "p95 delay", "events/s"],
        rows,
    ))
    fixed = results["none"]
    elastic = results["queue_depth"]
    assert elastic.summary.peak_fleet() > 2
    assert elastic.summary.final_fleet() == 2  # shrank back after the burst
    # The asserted margin: the elastic fleet at least halves the
    # fixed-fleet makespan on this shape (measured ~4×).
    assert elastic.makespan <= 0.5 * fixed.makespan
