"""Micro-benchmark — event-queue push/cancel/pop churn.

Exercises the exact pattern the worker's exit rescheduling produces:
every reallocation cancels and re-pushes projected exits, so a long run
is dominated by cancel+push churn with a growing graveyard of dead
entries.  The amortized compaction keeps ``pop``/``peek`` scanning the
live size, not the historical size; this bench pins that behaviour so a
regression (graveyard scans returning) shows up as a step in the
trajectory files.
"""

from repro.simcore.equeue import EventQueue
from repro.simcore.events import Event

#: Containers being rescheduled (matches a deep-oversubscription node).
_N_JOBS = 50
#: Reallocation rounds (one cancel + one push per job per round).
_ROUNDS = 400


def _churn() -> int:
    q = EventQueue()
    handles = [q.push(Event(time=float(1 + i))) for i in range(_N_JOBS)]
    for r in range(_ROUNDS):
        base = float(2 + r)
        for i in range(_N_JOBS):
            q.cancel(handles[i])
            handles[i] = q.push(Event(time=base + i * 1e-3))
    drained = 0
    while q:
        q.pop()
        drained += 1
    return drained


def test_perf_queue_reschedule_churn(benchmark):
    drained = benchmark(_churn)
    assert drained == _N_JOBS


def _mixed_ops() -> int:
    """Interleaved schedule/cancel/pop with a rolling event horizon."""
    q = EventQueue()
    handles = []
    fired = 0
    for i in range(20_000):
        handles.append(q.push(Event(time=float(i % 977))))
        if i % 3 == 0 and handles:
            q.cancel(handles[i // 3])
        if i % 5 == 0 and q:
            q.pop()
            fired += 1
    while q:
        q.pop()
        fired += 1
    return fired


def test_perf_queue_mixed_ops(benchmark):
    fired = benchmark(_mixed_ops)
    assert fired > 0
