"""Extension — seed robustness of the Fig. 12 headline.

The paper reports one run of the 10-job experiment.  This bench re-draws
the random universe 8 times and checks the headline shape (most jobs win,
makespan preserved) is a property of the system, not of one lucky seed.
"""

from _render import run_once

from repro.analysis.robustness import seed_study
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.scenarios import random_ten_job


def test_ext_robustness_ten_jobs(benchmark):
    study = run_once(
        benchmark,
        lambda: seed_study(
            random_ten_job,
            seeds=list(range(8)),
            sim_template=SimulationConfig(trace=False),
        ),
    )
    print("\n" + render_header(
        "Extension: Fig. 12 headline across 8 random universes"
    ))
    rows = [
        [seed, f"{wr:.0%}", round(ms, 2), round(best, 1), round(worst, 1)]
        for seed, wr, ms, best, worst in zip(
            study.seeds,
            study.win_rates,
            study.makespan_reductions,
            study.best_wins,
            study.worst_losses,
        )
    ]
    print(render_table(
        ["seed", "win rate", "makespan Δ%", "best win %", "worst loss %"],
        rows,
    ))
    agg = study.summary()
    print(f"\nmean win rate {agg['mean_win_rate']:.0%} "
          f"(min {agg['min_win_rate']:.0%}); "
          f"mean makespan Δ {agg['mean_makespan_reduction']:+.2f}%; "
          f"worst single-job loss {agg['worst_loss']:+.1f}%")
    assert agg["mean_win_rate"] >= 0.7
    assert agg["worst_makespan_reduction"] > -2.0
    assert agg["worst_loss"] > -15.0
