"""Fig. 9 — five random jobs under four (α, itval) configs vs NA.

Paper: FlowCon wins 4, 5, 4, 4 of 5 jobs for (3 %,30), (3 %,60),
(5 %,30), (5 %,60); best single win 42.06 % (Job-3 at α=3 %, itval=30);
worst loss 11.8 %; makespan improves 1–5 %.
"""

from _render import print_scale, run_once

from repro.experiments.figures import fig9_random_five


def test_fig09_random_five(benchmark):
    data = run_once(benchmark, lambda: fig9_random_five(seed=42))
    print_scale(
        "Figure 9: five jobs, random submission, four FlowCon configs",
        data,
        "FlowCon wins ≥4/5 jobs per config; double-digit best win; "
        "makespan within a few % of NA",
    )
    for label in data.completion:
        if label == "NA":
            continue
        assert data.wins(label) >= 3
        assert data.makespan[label] <= data.makespan["NA"] * 1.02
