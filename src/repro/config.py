"""Configuration objects for FlowCon and the simulation harness.

Two dataclasses cover every knob the paper discusses plus the ablation
switches DESIGN.md §5 adds:

* :class:`FlowConConfig` — the scheduler parameters: the classification
  threshold ``α`` and the algorithm interval ``itval`` (§5.2 calls these
  "the two key parameters"), the CL lower-bound coefficient ``β``
  (Algorithm 1 line 22), back-off behaviour, and measurement options.
* :class:`SimulationConfig` — substrate parameters: seed, worker capacity,
  contention model, metric-sampling cadence.

Both validate eagerly: a bad value raises :class:`~repro.errors.ConfigError`
at construction, not halfway through a 2000-second simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.contention import ContentionModel
from repro.containers.allocator import AllocationMode
from repro.containers.spec import ResourceType
from repro.errors import ConfigError

__all__ = ["FlowConConfig", "SimulationConfig"]


@dataclass(frozen=True)
class FlowConConfig:
    """FlowCon scheduler parameters.

    Attributes
    ----------
    alpha:
        Classification threshold on *peak-relative* growth efficiency
        (DESIGN.md §2 interpretation note 1).  The paper sweeps
        1 %–15 %; default 5 % (§5.3's headline setting).
    itval:
        Initial interval, in seconds, between Algorithm 1 executions.
        The paper sweeps 20–60 s; default 20 s.
    beta:
        CL lower-bound coefficient: converged containers keep at least
        ``1/(beta · n)`` CPU (Algorithm 1 line 22).  ``None`` disables the
        floor (ablation).  Default 2.0, which reproduces the paper's
        0.25 floor with two containers (§5.3).
    resource:
        Which resource dimension drives growth efficiency.  The paper's
        evaluation focuses on CPU.
    backoff_enabled / backoff_factor / max_itval:
        Exponential back-off of ``itval`` when every container is in CL
        (Algorithm 1 line 17).  ``backoff_enabled=False`` is the ablation.
    min_samples:
        Monitor samples required before a container is classified; until
        then it stays in NL with limit 1 (a fresh container has no
        growth-efficiency history — §5.3's "sets MNIST's limit to 1").
    nl_full_limit:
        When ``True`` (default) NL members keep the full limit 1, per the
        paper's prose ("Allocate more resources to containers in the NL")
        and Fig. 7's observed behaviour.  ``False`` applies Algorithm 1
        line 26's literal ``G/ΣG`` share to NL members (ablation; it
        systematically starves young jobs whose metric scale is small —
        see DESIGN.md §2 note 1).
    listeners_enabled:
        Algorithm 2's background listeners.  Disabled ⇒ purely periodic
        Algorithm 1 (ablation quantifying arrival-reaction latency).
    listener_poll_interval:
        Poll cadence for the listeners when event subscription is not
        used.  The default 1 s models a lightweight background thread.
    event_driven_listeners:
        When ``True`` (default) listeners subscribe to pool changes and
        react immediately — the behaviour the paper intends ("track the
        container states in real-time"); ``False`` forces polling.
    """

    alpha: float = 0.05
    itval: float = 20.0
    beta: float | None = 2.0
    resource: ResourceType = ResourceType.CPU
    backoff_enabled: bool = True
    backoff_factor: float = 2.0
    max_itval: float = 640.0
    min_samples: int = 2
    nl_full_limit: bool = True
    listeners_enabled: bool = True
    listener_poll_interval: float = 1.0
    event_driven_listeners: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must lie in (0, 1), got {self.alpha!r}")
        if self.itval <= 0:
            raise ConfigError(f"itval must be positive, got {self.itval!r}")
        if self.beta is not None and self.beta <= 0:
            raise ConfigError(f"beta must be positive or None, got {self.beta!r}")
        if self.backoff_factor <= 1.0:
            raise ConfigError(
                f"backoff_factor must exceed 1, got {self.backoff_factor!r}"
            )
        if self.max_itval < self.itval:
            raise ConfigError("max_itval must be at least itval")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be at least 1")
        if self.listener_poll_interval <= 0:
            raise ConfigError("listener_poll_interval must be positive")

    def with_params(self, **kwargs) -> "FlowConConfig":
        """Functional update, e.g. ``cfg.with_params(alpha=0.10)``."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Short label used in figures, e.g. ``"FlowCon-5%-20"``."""
        return f"FlowCon-{self.alpha:.0%}-{self.itval:g}"


@dataclass(frozen=True)
class SimulationConfig:
    """Substrate parameters for one experiment run.

    Attributes
    ----------
    seed:
        Root seed for every random stream in the run.
    capacity:
        Worker CPU capacity (normalized; the paper's single R320 node
        is 1.0).
    contention:
        Interference model (see :class:`ContentionModel`).
    allocation_mode:
        Soft (paper semantics) or hard limits.
    sample_interval:
        Metric-recorder sampling cadence in seconds (drives the CPU-usage
        traces of Figs. 7–16 and growth-efficiency traces of Figs. 13–14).
    horizon:
        Optional hard stop time for the simulation; ``None`` runs until
        all jobs complete.
    trace:
        Keep a structured trace (disable for large sweeps).
    reschedule_tolerance:
        Worker exit-reschedule tolerance in seconds (see
        :class:`~repro.cluster.worker.Worker`).  The default ``0.0``
        preserves exact replay parity; a small positive value trades
        up-to-tolerance completion-time drift for less event-queue churn
        on reschedule-heavy workloads.
    max_containers:
        Default per-worker admission slots for runner-constructed
        workers.  ``None`` (historical behaviour) is unbounded; a bound
        makes the manager queue open arrivals instead of
        over-subscribing nodes.
    rebalance:
        Default rebalance-policy registry name for runner-constructed
        managers (``"none"``, ``"migrate"``, ``"progress"``; see
        :mod:`repro.cluster.rebalance`).  ``"none"`` (historical
        behaviour) never migrates and is bit-identical to the
        pre-rebalancing manager.
    admission:
        Default admission-policy registry name (``"fifo"``,
        ``"backfill"``, ``"priority"``, ``"wfq"``, ``"sjf"``; see
        :mod:`repro.cluster.admission`).  ``"fifo"`` (historical
        behaviour) drains in strict arrival order and is bit-identical
        to the pre-extraction hardcoded queue.
    autoscale:
        Default autoscale-policy registry name (``"none"``,
        ``"queue_depth"``, ``"progress"``; see
        :mod:`repro.cluster.autoscale`).  ``"none"`` (historical
        behaviour) keeps the fleet fixed and is bit-identical to the
        pre-autoscaling manager.
    failures:
        Default failure-injector spec (``"none"``, ``"random"``,
        ``"rolling"``, ``"az_outage"``, ``"slow"``, optionally with a
        durability suffix like ``"rolling:checkpoint(60)"``; see
        :mod:`repro.cluster.failures`).  ``"none"`` (historical
        behaviour) injects nothing and is bit-identical to the
        failure-free manager.
    fabric:
        Default control-plane fabric spec (``"ideal"``, or a network
        fault plan like ``"partition(25..55):retry(max=8,base=0.5)"``,
        ``"drop(0.05)+delay(exp,0.2)"``; see
        :mod:`repro.cluster.fabric`).  ``"ideal"`` (historical
        behaviour) delivers every manager↔worker message inline and is
        bit-identical to the direct-call manager.
    fleet_mode:
        When ``True`` the runner arms the fused fleet-tick engine
        (:mod:`repro.cluster.fleet`): same-instant sampling ticks across
        workers coalesce into one packed settle + segmented reallocate +
        packed sampling pass.  Bit-identical to the serial per-worker
        path (pinned by the golden fixtures and the invariant harness);
        ``False`` (default) keeps the serial path as the oracle.
    shards:
        Worker-shard count for single-run parallel execution
        (:mod:`repro.cluster.shards`).  ``shards > 1`` arms a
        :class:`~repro.cluster.shards.ShardedExecutor` that advances
        contiguous worker shards concurrently between manager
        touchpoints — bit-identical to serial and fused runs — and
        **requires** ``fleet_mode=True``: the shards are slices of the
        fused fleet arena, and the serial sampling path has no arena to
        slice.  ``1`` (default) keeps whatever ``fleet_mode`` selects.
    streaming_metrics:
        When ``True`` the runner records in bounded memory: recorders
        keep no per-container step series or completion lists, the
        manager keeps no per-label delay/tenant maps, and aggregates
        fold into a shared :class:`~repro.metrics.sketch.StreamMetrics`
        sink (quantile sketches + rolling throughput).  Run *dynamics*
        are bit-identical to dense mode; only what is remembered
        changes.  ``False`` (default) keeps the exact per-job record.
    """

    seed: int = 0
    capacity: float = 1.0
    contention: ContentionModel = field(default_factory=ContentionModel)
    allocation_mode: AllocationMode = AllocationMode.SOFT
    sample_interval: float = 5.0
    horizon: float | None = None
    trace: bool = True
    reschedule_tolerance: float = 0.0
    max_containers: int | None = None
    rebalance: str = "none"
    admission: str = "fifo"
    autoscale: str = "none"
    failures: str = "none"
    fabric: str = "ideal"
    fleet_mode: bool = False
    shards: int = 1
    streaming_metrics: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {self.capacity!r}")
        if self.sample_interval <= 0:
            raise ConfigError("sample_interval must be positive")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards!r}")
        if self.shards > 1 and not self.fleet_mode:
            raise ConfigError(
                f"shards={self.shards!r} requires fleet_mode=True: worker "
                "shards are contiguous slices of the fused fleet arena "
                "(repro.cluster.shards), and the serial sampling path has "
                "no arena to slice — pass fleet_mode=True (CLI: "
                "--fleet-mode) or drop to shards=1"
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ConfigError("horizon must be positive or None")
        if self.reschedule_tolerance < 0:
            raise ConfigError(
                f"reschedule_tolerance must be >= 0, "
                f"got {self.reschedule_tolerance!r}"
            )
        if self.max_containers is not None and self.max_containers < 1:
            raise ConfigError(
                f"max_containers must be >= 1 or None, "
                f"got {self.max_containers!r}"
            )
        # Imported lazily: the policy registries live above this module
        # in the layering (cluster policies import config-adjacent code).
        from repro.cluster.admission import ADMISSIONS
        from repro.cluster.autoscale import AUTOSCALERS
        from repro.cluster.rebalance import REBALANCERS

        if self.rebalance not in REBALANCERS:
            raise ConfigError(
                f"unknown rebalance {self.rebalance!r}; "
                f"choose from {sorted(REBALANCERS)}"
            )
        if self.admission not in ADMISSIONS:
            raise ConfigError(
                f"unknown admission {self.admission!r}; "
                f"choose from {sorted(ADMISSIONS)}"
            )
        if self.autoscale not in AUTOSCALERS:
            raise ConfigError(
                f"unknown autoscale {self.autoscale!r}; "
                f"choose from {sorted(AUTOSCALERS)}"
            )
        from repro.cluster.failures import make_failures

        try:
            # Full spec-string validation ("rolling:checkpoint(60)"
            # carries arguments, so membership alone is not enough).
            make_failures(self.failures)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        from repro.cluster.fabric import make_fabric

        try:
            # Same deal: fabric specs are fault-plan expressions.
            make_fabric(self.fabric)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None

    def with_params(self, **kwargs) -> "SimulationConfig":
        """Functional update."""
        return replace(self, **kwargs)
