"""Exception hierarchy for the FlowCon reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between substrate layers (simulation
engine, container runtime, workload model, cluster, scheduler core).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "EventQueueError",
    "ClockError",
    "ContainerError",
    "ContainerStateError",
    "UnknownContainerError",
    "AllocationError",
    "WorkloadError",
    "CurveError",
    "ClusterError",
    "CapacityError",
    "UnknownPolicyError",
    "SchedulerError",
    "ListMembershipError",
    "MetricsError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


# ---------------------------------------------------------------------------
# simcore
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Generic failure inside the discrete-event simulation engine."""


class EventQueueError(SimulationError):
    """Misuse of the event queue (e.g. popping from an empty queue)."""


class ClockError(SimulationError):
    """An attempt to move the simulation clock backwards."""


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------


class ContainerError(ReproError):
    """Generic container-runtime failure."""


class ContainerStateError(ContainerError):
    """An operation is illegal in the container's current lifecycle state."""


class UnknownContainerError(ContainerError, KeyError):
    """A container id was not found in the runtime / pool."""


class AllocationError(ContainerError):
    """The resource allocator was fed inconsistent inputs."""


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """Generic workload-model failure."""


class CurveError(WorkloadError, ValueError):
    """A convergence curve received invalid parameters or inputs."""


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Generic cluster-layer failure."""


class CapacityError(ClusterError):
    """A worker was asked to exceed its physical capacity."""


class UnknownPolicyError(ClusterError, ValueError):
    """A policy-axis name was not found in its registry.

    Doubles as :class:`ValueError` so that CLI/config layers can surface a
    clean "choose from [...]" message without importing the cluster layer,
    while existing ``except ClusterError`` handlers keep working.
    """


# ---------------------------------------------------------------------------
# core (FlowCon)
# ---------------------------------------------------------------------------


class SchedulerError(ReproError):
    """Generic scheduling-policy failure."""


class ListMembershipError(SchedulerError):
    """The NL/WL/CL invariant (each container in at most one list) broke."""


# ---------------------------------------------------------------------------
# metrics / experiments
# ---------------------------------------------------------------------------


class MetricsError(ReproError):
    """Telemetry recording or summarisation failure."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""
