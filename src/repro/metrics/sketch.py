"""Bounded-memory streaming metrics: quantile sketch + rolling aggregates.

A million-job day cannot keep a list of every queue delay just to report
a p95 at the end — the ROADMAP's production-scale north star needs run
metrics whose memory is independent of run length.  This module provides
the three pieces the streaming metrics mode is built from:

* :class:`QuantileSketch` — a mergeable KLL-style quantile sketch over
  numpy-backed level buffers.  Compaction is **deterministic** (an
  alternating odd/even survivor parity per level instead of a coin
  flip), so equal streams produce bit-equal sketches, merges are
  reproducible, and no RNG state leaks into seeded simulations.  The
  price of determinism is a conservative worst-case rank-error bound
  (see :meth:`QuantileSketch.rank_error_bound`); in practice the
  alternation makes consecutive compaction errors cancel and observed
  error sits far below the bound (asserted by the property tests in
  ``tests/metrics/test_sketch.py``).
* :class:`RollingThroughput` — completions/second over a trailing
  window, on a fixed ring of time buckets (O(buckets) memory).
* :class:`StreamMetrics` — the per-run O(1)-memory sink the manager and
  the streaming :class:`~repro.metrics.recorder.MetricsRecorder` feed:
  queue-delay sketches (overall and per tenant), completion-time
  sketch, makespan endpoints, rolling/peak throughput.  A run-level
  :class:`~repro.metrics.summary.RunSummary` built around one of these
  answers the same aggregate questions as the dense mode without ever
  holding a per-job record.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MetricsError

__all__ = ["QuantileSketch", "RollingThroughput", "StreamMetrics"]


class QuantileSketch:
    """Mergeable quantile sketch with deterministic KLL-style compaction.

    Values accumulate in a weight-1 buffer; when it fills (``k`` items)
    it is sorted and pushed into a chain of sorted numpy levels where
    level ``l`` holds items of weight ``2**l``.  A level reaching ``k``
    items compacts: the even- or odd-indexed half (parity alternates per
    level per compaction) survives at doubled weight and is merged one
    level up.  Total weight is preserved exactly (an odd straggler stays
    behind at its own level), so ``n`` is always the true count.

    Memory is O(k · log(n/k)); every operation is deterministic, so two
    sketches fed the same stream are equal element-for-element and
    :meth:`merge` is reproducible across runs and processes.
    """

    def __init__(self, k: int = 256) -> None:
        if k < 8:
            raise MetricsError(f"sketch k must be >= 8, got {k!r}")
        self.k = int(k)
        self._n = 0
        self._buf: list[float] = []
        self._levels: list[np.ndarray] = []
        self._parity: list[int] = []
        # Worst-case rank-error mass actually incurred: each compaction
        # at level l perturbs any rank by at most one item of weight
        # 2**l, so the exact compaction count gives a certified bound.
        self._err_units = 0

    # -- ingest -------------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one value into the sketch."""
        self._buf.append(float(value))
        self._n += 1
        if len(self._buf) >= self.k:
            self._flush()

    def extend(self, values) -> None:
        """Fold an iterable of values into the sketch."""
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch (returns self).

        The merged sketch covers the concatenated streams; its error
        bound is the sum of both inputs' incurred compaction error plus
        whatever the merge's own compactions add — still certified by
        :meth:`rank_error_bound`.
        """
        if not isinstance(other, QuantileSketch):
            raise MetricsError(f"cannot merge {type(other).__name__}")
        if other.k != self.k:
            raise MetricsError(
                f"cannot merge sketches with k={self.k} and k={other.k}"
            )
        self._n += other._n
        self._err_units += other._err_units
        self._buf.extend(other._buf)
        for level, arr in enumerate(other._levels):
            if arr.size:
                self._insert(arr.copy(), level)
        if len(self._buf) >= self.k:
            self._flush()
        return self

    # -- compaction ---------------------------------------------------------

    def _flush(self) -> None:
        if not self._buf:
            return
        arr = np.sort(np.asarray(self._buf, dtype=np.float64))
        self._buf.clear()
        self._insert(arr, 0)

    def _insert(self, arr: np.ndarray, level: int) -> None:
        while True:
            while len(self._levels) <= level:
                self._levels.append(np.empty(0, dtype=np.float64))
                self._parity.append(0)
            held = self._levels[level]
            if held.size:
                arr = np.concatenate([held, arr])
                arr.sort()
            if arr.size < self.k:
                self._levels[level] = arr
                return
            # Compact the even-length prefix; a straggler stays behind
            # so total weight (and therefore n) is preserved exactly.
            even = arr.size - (arr.size % 2)
            offset = self._parity[level]
            self._parity[level] ^= 1
            self._levels[level] = arr[even:]
            self._err_units += 1 << level
            arr = arr[offset:even:2].copy()
            level += 1

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        """Exact number of values folded in."""
        return self._n

    def _gather(self) -> tuple[np.ndarray, np.ndarray]:
        parts = [np.asarray(self._buf, dtype=np.float64)]
        weights = [np.ones(len(self._buf), dtype=np.float64)]
        for level, arr in enumerate(self._levels):
            if arr.size:
                parts.append(arr)
                weights.append(
                    np.full(arr.size, float(1 << level), dtype=np.float64)
                )
        values = np.concatenate(parts)
        wts = np.concatenate(weights)
        order = np.argsort(values, kind="stable")
        return values[order], wts[order]

    def quantile(self, q: float) -> float:
        """Value whose estimated rank covers ``q·n`` (q in [0, 1]).

        Within :meth:`rank_error_bound` of the exact order statistic:
        the returned value's true rank lies in ``q·n ± bound·n``.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile q must lie in [0, 1], got {q!r}")
        if self._n == 0:
            raise MetricsError("quantile of an empty sketch")
        values, weights = self._gather()
        cum = np.cumsum(weights)
        idx = int(np.searchsorted(cum, q * self._n, side="left"))
        return float(values[min(idx, values.size - 1)])

    def rank_error_bound(self) -> float:
        """Certified worst-case rank error as a fraction of ``n``.

        Every compaction at level ``l`` moves any rank by at most one
        surviving item's weight ``2**l``; the sketch counts that mass as
        it compacts, so the bound is exact accounting, not an asymptotic
        formula.  It grows like ``log2(n/k) / k`` — ~5 % at n = 10⁶ with
        the default k = 256 — while the alternating parity keeps the
        *observed* error one to two orders of magnitude smaller.
        """
        if self._n == 0:
            return 0.0
        return self._err_units / self._n

    def state(self) -> dict:
        """Introspection/serialization view (tests, goldens)."""
        return {
            "k": self.k,
            "n": self._n,
            "err_units": self._err_units,
            "levels": [arr.tolist() for arr in self._levels],
            "buffer": list(self._buf),
        }


class RollingThroughput:
    """Events/second over a trailing window, on a fixed bucket ring.

    ``observe(t)`` requires non-decreasing times (simulation time only
    moves forward); :meth:`rate` reports the event rate over the window
    ending at the latest observation.  Memory is O(buckets) forever.
    """

    def __init__(self, window: float = 60.0, buckets: int = 60) -> None:
        if window <= 0:
            raise MetricsError(f"window must be positive, got {window!r}")
        if buckets < 1:
            raise MetricsError(f"buckets must be >= 1, got {buckets!r}")
        self.window = float(window)
        self.buckets = int(buckets)
        self._width = self.window / self.buckets
        self._counts = [0] * self.buckets
        self._head: int | None = None  # absolute bucket index of newest
        self._total = 0
        self.peak = 0.0

    def observe(self, t: float) -> None:
        """Count one event at time *t* (non-decreasing)."""
        b = int(t / self._width)
        if self._head is None:
            self._head = b
        elif b < self._head:
            raise MetricsError(
                f"rolling window observed t={t!r} before its head bucket"
            )
        elif b > self._head:
            # Zero the buckets the window slid past (cap at ring size).
            for i in range(min(b - self._head, self.buckets)):
                idx = (self._head + 1 + i) % self.buckets
                self._total -= self._counts[idx]
                self._counts[idx] = 0
            self._head = b
        self._counts[b % self.buckets] += 1
        self._total += 1
        rate = self._total / self.window
        if rate > self.peak:
            self.peak = rate

    def rate(self) -> float:
        """Events/second over the trailing window (0.0 before any event)."""
        if self._head is None:
            return 0.0
        return self._total / self.window


class StreamMetrics:
    """O(1)-memory aggregate sink for one streaming run.

    The manager calls :meth:`observe_placement` once per placement (with
    the admission-queue delay, 0.0 for jobs placed on arrival — the
    dense mode's per-tenant views backfill the same zeros) and each
    streaming recorder calls :meth:`observe_completion` once per exit.
    Everything a sweep compares across runs — makespan, counts, queue-
    delay totals and percentiles, throughput — is maintained
    incrementally; nothing grows with the number of jobs (per-tenant
    state grows with the number of *tenants*, which is a workload-shape
    constant).
    """

    def __init__(self, k: int = 256, throughput_window: float = 60.0) -> None:
        self.k = int(k)
        self.n_placed = 0
        self.n_completed = 0
        self.first_submit = math.inf
        self.last_finish = -math.inf
        self.total_completion_time = 0.0
        self.max_completion_time = 0.0
        self.completion_sketch = QuantileSketch(k)
        self.queue_sketch = QuantileSketch(k)
        self.total_queue_delay = 0.0
        self.max_queue_delay = 0.0
        self.n_queued = 0
        self.throughput = RollingThroughput(window=throughput_window)
        #: tenant → (placements, summed delay, delay sketch).
        self.tenant_queues: dict[str, list] = {}

    # -- ingest -------------------------------------------------------------

    def observe_placement(
        self, label: str, tenant: str | None, delay: float
    ) -> None:
        """Fold one placement's queue delay in (0.0 if never queued)."""
        self.n_placed += 1
        self.queue_sketch.add(delay)
        if delay > 0:
            self.n_queued += 1
            self.total_queue_delay += delay
            if delay > self.max_queue_delay:
                self.max_queue_delay = delay
        if tenant is not None:
            entry = self.tenant_queues.get(tenant)
            if entry is None:
                entry = [0, 0.0, QuantileSketch(self.k)]
                self.tenant_queues[tenant] = entry
            entry[0] += 1
            entry[1] += delay
            entry[2].add(delay)

    def observe_completion(
        self, submitted: float, finished: float, completion_time: float
    ) -> None:
        """Fold one finished job in (recorder exit hook)."""
        self.n_completed += 1
        if submitted < self.first_submit:
            self.first_submit = submitted
        if finished > self.last_finish:
            self.last_finish = finished
        self.total_completion_time += completion_time
        if completion_time > self.max_completion_time:
            self.max_completion_time = completion_time
        self.completion_sketch.add(completion_time)
        self.throughput.observe(finished)

    # -- aggregate views ----------------------------------------------------

    @property
    def makespan(self) -> float:
        """First recorded start to last completion (dense parity)."""
        if self.n_completed == 0:
            raise MetricsError("no completions observed yet")
        return self.last_finish - self.first_submit

    def _tenant_entry(self, tenant: str) -> list:
        entry = self.tenant_queues.get(tenant)
        if entry is None:
            raise MetricsError(f"no jobs recorded for tenant {tenant!r}")
        return entry

    def quantile_queue_delay(
        self, q: float, tenant: str | None = None
    ) -> float:
        """Queue-delay quantile, overall or for one tenant (live)."""
        sketch = (
            self.queue_sketch
            if tenant is None
            else self._tenant_entry(tenant)[2]
        )
        return sketch.quantile(q)

    def mean_queue_delay(self, tenant: str | None = None) -> float:
        """Mean queue delay over every placement (zeros included)."""
        if tenant is None:
            if self.n_placed == 0:
                raise MetricsError("no placements observed yet")
            return self.total_queue_delay / self.n_placed
        n, total, _ = self._tenant_entry(tenant)
        return total / n

    def mean_completion_time(self) -> float:
        """Mean job completion time."""
        if self.n_completed == 0:
            raise MetricsError("no completions observed yet")
        return self.total_completion_time / self.n_completed

    def quantile_completion_time(self, q: float) -> float:
        """Completion-time quantile (live)."""
        return self.completion_sketch.quantile(q)

    def rank_error_bound(self) -> float:
        """Certified rank-error bound of the queue-delay sketch."""
        return self.queue_sketch.rank_error_bound()

    def slo_report(self) -> dict[str, float]:
        """The live SLO panel: p50/p95/p99 queue delay + throughput."""
        return {
            "p50_queue_delay": self.quantile_queue_delay(0.50),
            "p95_queue_delay": self.quantile_queue_delay(0.95),
            "p99_queue_delay": self.quantile_queue_delay(0.99),
            "rolling_throughput": self.throughput.rate(),
            "peak_throughput": self.throughput.peak,
        }
