"""Run summaries and the paper's evaluation metrics.

§5.2 defines three metrics; all are computed here:

* **overall makespan** — "the total length of the schedule for all the
  jobs in the system": first submission to last completion;
* **individual job completion time** — per-job submission-to-exit
  duration (the paper's per-job bars in Figs. 3–6, 9, 12, 17);
* **CPU usage** — recorded as traces by the recorder; this module adds
  the *jitter index* used to compare Fig. 15 vs Fig. 16 quantitatively.

Plus the derived quantities quoted in the text: pairwise job *overlap*
(§5.3's explanation of makespan gains) and *reduction percentages*
(Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MetricsError
from repro.metrics.sketch import StreamMetrics
from repro.metrics.timeseries import StepSeries

__all__ = [
    "CompletionRecord",
    "RunSummary",
    "reduction_pct",
    "overlap_duration",
    "jitter_index",
]


@dataclass(frozen=True)
class CompletionRecord:
    """One finished job."""

    label: str
    image: str
    cid: int
    submitted: float
    finished: float
    completion_time: float


@dataclass
class RunSummary:
    """Completion metrics for one policy × workload run.

    ``queue_delays`` and ``peak_queue_len`` describe the manager's
    admission queue: seconds spent waiting for an admission slot, for
    the labels that actually queued, and the worst backlog of the run.
    Both are empty/zero for unbounded clusters (the paper's single-node
    setup).  ``migrations`` and ``migration_delays`` describe the
    rebalancer: per-label move counts and summed in-flight
    checkpoint/restore seconds, for the labels that actually migrated —
    empty under ``rebalance="none"``.  ``tenants`` maps labels to their
    owning tenant (empty outside multi-tenant runs) and drives the
    per-tenant queue-delay views; ``fleet_timeline`` is the autoscaler's
    ``(time, worker count)`` trajectory (one entry — the initial fleet —
    for fixed-fleet runs).  ``retries`` and ``failed_jobs`` describe the
    failure injector: per-label crash-restart counts (for jobs that
    restarted at least once) and, for jobs whose retry budget ran out,
    ``label → (retries used, CPU-seconds of progress lost)``.  A label
    appears in the completions *or* in ``failed_jobs``, never both —
    accounting stays exactly-once even though execution under crashes is
    at-least-once.  Both are empty under ``failures="none"``.

    ``fabric_stats`` carries the control-plane fabric's per-message
    counters (``messages_sent``, ``message_retries``,
    ``messages_dropped``, ``duplicates_suppressed``,
    ``mean_message_latency``, …; see :mod:`repro.cluster.fabric`) —
    the ideal fabric reports sends only, all faults and retries zero.

    Streaming runs carry a :class:`~repro.metrics.sketch.StreamMetrics`
    in ``stream`` instead of per-job records: the aggregate views shared
    by both modes — ``makespan``, ``n_completed``, queue-delay totals,
    means and percentiles, ``failed_jobs`` — answer identically (within
    the sketch's certified rank-error bound for percentiles), so sweeps
    can mix modes; the per-job views (``completion_times``, ``overlap``,
    ``tenant_queue_delays``, …) raise :class:`MetricsError` because the
    records were deliberately never kept.
    """

    completions: list[CompletionRecord]
    queue_delays: dict[str, float] = field(default_factory=dict)
    peak_queue_len: int = 0
    migrations: dict[str, int] = field(default_factory=dict)
    migration_delays: dict[str, float] = field(default_factory=dict)
    tenants: dict[str, str] = field(default_factory=dict)
    fleet_timeline: tuple = ()
    retries: dict[str, int] = field(default_factory=dict)
    failed_jobs: dict[str, tuple[int, float]] = field(default_factory=dict)
    fabric_stats: dict[str, float] = field(default_factory=dict)
    stream: StreamMetrics | None = None

    def __post_init__(self) -> None:
        if not self.completions and self.stream is None:
            raise MetricsError("RunSummary needs at least one completion")

    # -- mode seam ----------------------------------------------------------------

    @property
    def streaming(self) -> bool:
        """Whether this summary aggregates through a streaming sink."""
        return self.stream is not None and not self.completions

    def _dense_only(self, what: str) -> None:
        if self.streaming:
            raise MetricsError(
                f"{what} needs per-job records, which streaming mode "
                "deliberately never keeps; use the aggregate views"
            )

    @property
    def n_completed(self) -> int:
        """Jobs that finished (both modes)."""
        if self.streaming:
            return self.stream.n_completed
        return len(self.completions)

    # -- §5.2 metrics -------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """First submission to last completion."""
        if self.streaming:
            return self.stream.makespan
        start = min(c.submitted for c in self.completions)
        end = max(c.finished for c in self.completions)
        return end - start

    def completion_time(self, label: str) -> float:
        """Completion time of one job by label."""
        self._dense_only("completion_time")
        for c in self.completions:
            if c.label == label:
                return c.completion_time
        raise MetricsError(f"no completion recorded for {label!r}")

    def completion_times(self) -> dict[str, float]:
        """label → completion time, in label order."""
        self._dense_only("completion_times")
        return {
            c.label: c.completion_time
            for c in sorted(self.completions, key=lambda c: c.label)
        }

    def labels(self) -> list[str]:
        """Job labels in submission order."""
        self._dense_only("labels")
        return [c.label for c in sorted(self.completions, key=lambda c: c.submitted)]

    # -- admission queue ----------------------------------------------------------

    def queue_delay(self, label: str) -> float:
        """Seconds *label* spent in the admission queue (0.0 if never queued)."""
        return self.queue_delays.get(label, 0.0)

    def total_queue_delay(self) -> float:
        """Sum of all jobs' admission-queue delays."""
        if self.streaming:
            return self.stream.total_queue_delay
        return float(sum(self.queue_delays.values()))

    def max_queue_delay(self) -> float:
        """Largest single admission-queue delay."""
        if self.streaming:
            return self.stream.max_queue_delay
        return max(self.queue_delays.values(), default=0.0)

    # -- multi-tenant fairness ------------------------------------------------------

    def tenant_of(self, label: str) -> str | None:
        """Owning tenant of one job (``None`` outside multi-tenant runs)."""
        return self.tenants.get(label)

    def tenant_labels(self, tenant: str) -> list[str]:
        """Labels belonging to *tenant*, sorted."""
        return sorted(l for l, t in self.tenants.items() if t == tenant)

    def tenant_queue_delays(self, tenant: str | None = None) -> list[float]:
        """Per-job queue delays for one tenant (or every completed job).

        Jobs that never queued contribute 0.0 — the fairness metrics
        must see the whole tenant, not only its unlucky jobs.
        """
        self._dense_only("tenant_queue_delays")
        if tenant is None:
            labels = [c.label for c in self.completions]
        else:
            labels = self.tenant_labels(tenant)
            if not labels:
                raise MetricsError(f"no jobs recorded for tenant {tenant!r}")
        return [self.queue_delays.get(label, 0.0) for label in labels]

    def quantile_queue_delay(
        self, q: float, tenant: str | None = None
    ) -> float:
        """Queue-delay quantile, overall or for one tenant (both modes).

        Dense mode is exact (``numpy.percentile`` over per-job delays,
        zeros included); streaming mode answers from the sketch, within
        ``stream.rank_error_bound()`` of the exact rank.
        """
        if self.streaming:
            return self.stream.quantile_queue_delay(q, tenant)
        delays = self.tenant_queue_delays(tenant)
        return float(
            np.percentile(np.asarray(delays, dtype=np.float64), 100.0 * q)
        )

    def p95_queue_delay(self, tenant: str | None = None) -> float:
        """95th-percentile queue delay, overall or for one tenant."""
        return self.quantile_queue_delay(0.95, tenant)

    def mean_queue_delay(self, tenant: str | None = None) -> float:
        """Mean queue delay, overall or for one tenant."""
        if self.streaming:
            return self.stream.mean_queue_delay(tenant)
        delays = self.tenant_queue_delays(tenant)
        return float(np.mean(np.asarray(delays, dtype=np.float64)))

    def slo_report(self) -> dict[str, float]:
        """Live SLO aggregates — streaming runs only."""
        if self.stream is None:
            raise MetricsError(
                "slo_report needs a streaming sink; dense runs expose "
                "exact per-job views instead"
            )
        return self.stream.slo_report()

    # -- failures --------------------------------------------------------------------

    def failed_labels(self) -> list[str]:
        """Labels that exhausted their retry budget, sorted."""
        return sorted(self.failed_jobs)

    def retry_count(self, label: str) -> int:
        """Crash-restarts consumed by one job (0 if it never crashed)."""
        return self.retries.get(label, 0)

    def total_retries(self) -> int:
        """Crash-restarts executed across the whole run."""
        return sum(self.retries.values())

    def failed_lost_work(self) -> float:
        """CPU-seconds of progress lost by retry-exhausted jobs."""
        return float(sum(lost for _, lost in self.failed_jobs.values()))

    # -- control-plane fabric --------------------------------------------------------

    def messages_sent(self) -> float:
        """Control-plane messages dispatched through the fabric."""
        return self.fabric_stats.get("messages_sent", 0.0)

    def message_retries(self) -> float:
        """Timeout-triggered resends executed by the fabric."""
        return self.fabric_stats.get("message_retries", 0.0)

    def messages_dropped(self) -> float:
        """Send attempts lost to drops, partitions or gray links."""
        return self.fabric_stats.get("messages_dropped", 0.0)

    def messages_failed(self) -> float:
        """Messages the fabric gave up on after exhausting retries."""
        return self.fabric_stats.get("messages_failed", 0.0)

    def duplicates_suppressed(self) -> float:
        """Redundant deliveries the receive-side dedup discarded."""
        return self.fabric_stats.get("duplicates_suppressed", 0.0)

    def mean_message_latency(self) -> float:
        """Mean send-to-delivery latency over delivered messages."""
        return self.fabric_stats.get("mean_message_latency", 0.0)

    # -- autoscaling -----------------------------------------------------------------

    def peak_fleet(self) -> int:
        """Largest worker count the run reached (0 when untracked)."""
        return max((n for _, n in self.fleet_timeline), default=0)

    def final_fleet(self) -> int:
        """Worker count at the end of the run (0 when untracked)."""
        return self.fleet_timeline[-1][1] if self.fleet_timeline else 0

    def fleet_changes(self) -> int:
        """Provision/retire transitions executed by the autoscaler."""
        return max(0, len(self.fleet_timeline) - 1)

    # -- rebalancing ---------------------------------------------------------------

    def migration_count(self, label: str) -> int:
        """How many times *label* was migrated (0 if never)."""
        return self.migrations.get(label, 0)

    def total_migrations(self) -> int:
        """Migrations executed across the whole run."""
        return sum(self.migrations.values())

    def migrated_labels(self) -> list[str]:
        """Labels that migrated at least once, sorted."""
        return sorted(self.migrations)

    def migration_delay(self, label: str) -> float:
        """In-flight seconds *label* spent migrating (0.0 if never)."""
        return self.migration_delays.get(label, 0.0)

    def total_migration_delay(self) -> float:
        """Sum of all jobs' in-flight migration seconds."""
        return float(sum(self.migration_delays.values()))

    # -- derived ---------------------------------------------------------------------

    def interval_of(self, label: str) -> tuple[float, float]:
        """``(submitted, finished)`` for one job."""
        self._dense_only("interval_of")
        for c in self.completions:
            if c.label == label:
                return (c.submitted, c.finished)
        raise MetricsError(f"no completion recorded for {label!r}")

    def overlap(self, *labels: str) -> float:
        """Duration during which *all* given jobs ran concurrently (§5.3)."""
        if len(labels) < 2:
            raise MetricsError("overlap needs at least two jobs")
        intervals = [self.interval_of(label) for label in labels]
        lo = max(start for start, _ in intervals)
        hi = min(end for _, end in intervals)
        return max(0.0, hi - lo)

    def total_concurrency_seconds(self) -> float:
        """∫ (active jobs − 1)⁺ dt — aggregate overlap pressure."""
        self._dense_only("total_concurrency_seconds")
        edges = sorted(
            {c.submitted for c in self.completions}
            | {c.finished for c in self.completions}
        )
        total = 0.0
        for lo, hi in zip(edges[:-1], edges[1:]):
            active = sum(
                1 for c in self.completions if c.submitted <= lo and c.finished >= hi
            )
            total += max(0, active - 1) * (hi - lo)
        return total


def reduction_pct(baseline: float, improved: float) -> float:
    """Percentage reduction relative to *baseline* (positive = faster).

    Table 2 reports exactly this: ``(NA − FlowCon) / NA · 100``.
    """
    if baseline <= 0:
        raise MetricsError(f"baseline must be positive, got {baseline!r}")
    return (baseline - improved) / baseline * 100.0


def overlap_duration(
    a: tuple[float, float], b: tuple[float, float]
) -> float:
    """Overlap of two ``(start, end)`` intervals."""
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


def jitter_index(series: StepSeries, t0: float | None = None,
                 t1: float | None = None, grid_step: float = 1.0) -> float:
    """Mean absolute first difference of a usage trace on a uniform grid.

    Quantifies Fig. 15-vs-16's qualitative claim ("the resource usage for
    each container is much smoother" under FlowCon): free competition
    produces larger sample-to-sample swings, hence a larger index.
    """
    if series.empty or len(series) < 2:
        return 0.0
    lo = series.t_start if t0 is None else t0
    hi = series.t_end if t1 is None else t1
    if hi <= lo:
        return 0.0
    grid = np.arange(lo, hi, grid_step)
    if grid.size < 2:
        return 0.0
    values = series.resample(grid)
    return float(np.mean(np.abs(np.diff(values))))
