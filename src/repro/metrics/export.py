"""Serialization of metrics to CSV / JSON.

Kept dependency-free (no pandas): benches call these helpers to archive
regenerated figure data next to the printed report, so results can be
re-plotted with any external tool.
"""

from __future__ import annotations

import io
import json
from typing import Mapping

import numpy as np

from repro.metrics.summary import RunSummary
from repro.metrics.timeseries import StepSeries

__all__ = ["series_to_csv", "summary_to_json"]


def series_to_csv(
    series_by_name: Mapping[str, StepSeries],
    *,
    grid_step: float = 1.0,
) -> str:
    """Render several step series onto a common grid as CSV text.

    The grid spans the union of all series' supports; a series is blank
    outside its own support (before its first point / after its last).
    """
    named = {k: s for k, s in series_by_name.items() if not s.empty}
    if not named:
        return "time\n"
    lo = min(s.t_start for s in named.values())
    hi = max(s.t_end for s in named.values())
    grid = np.arange(lo, hi + grid_step, grid_step)

    buf = io.StringIO()
    buf.write("time," + ",".join(named.keys()) + "\n")
    columns = {}
    for name, series in named.items():
        vals = np.full(grid.shape, np.nan)
        mask = (grid >= series.t_start) & (grid <= series.t_end)
        if mask.any():
            vals[mask] = series.resample(grid[mask])
        columns[name] = vals
    for i, t in enumerate(grid):
        row = [f"{t:.3f}"]
        for name in named:
            v = columns[name][i]
            row.append("" if np.isnan(v) else f"{v:.6f}")
        buf.write(",".join(row) + "\n")
    return buf.getvalue()


def summary_to_json(summary: RunSummary, *, policy: str = "") -> str:
    """Serialize a run summary (completion times + makespan) to JSON."""
    payload = {
        "policy": policy,
        "makespan": summary.makespan,
        "jobs": [
            {
                "label": c.label,
                "image": c.image,
                "submitted": c.submitted,
                "finished": c.finished,
                "completion_time": c.completion_time,
            }
            for c in sorted(summary.completions, key=lambda c: c.submitted)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
