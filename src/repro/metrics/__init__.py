"""Telemetry: time series, recorders, summaries, export.

The experiments need three data products, all produced here:

* **traces** — per-container CPU usage / limit / evaluation-function /
  growth-efficiency step series (Figs. 7–8, 10–11, 13–16);
* **summaries** — completion times, makespan, overlaps and reduction
  percentages (Figs. 3–6, 9, 12, 17 and Table 2);
* **exports** — CSV/JSON serialization so bench output can be archived
  and re-plotted outside this repository.
"""

from repro.metrics.export import series_to_csv, summary_to_json
from repro.metrics.recorder import ContainerTrace, MetricsRecorder
from repro.metrics.sketch import QuantileSketch, RollingThroughput, StreamMetrics
from repro.metrics.summary import (
    CompletionRecord,
    RunSummary,
    jitter_index,
    overlap_duration,
    reduction_pct,
)
from repro.metrics.timeseries import StepSeries

__all__ = [
    "CompletionRecord",
    "ContainerTrace",
    "MetricsRecorder",
    "QuantileSketch",
    "RollingThroughput",
    "RunSummary",
    "StepSeries",
    "StreamMetrics",
    "jitter_index",
    "overlap_duration",
    "reduction_pct",
    "series_to_csv",
    "summary_to_json",
]
