"""Step-function time series.

The simulated system's observables (allocations, limits, usage averages)
are piecewise-constant, so the natural series type holds ``(t_i, v_i)``
meaning "value ``v_i`` from ``t_i`` until the next point".  Storage is a
pair of growing Python lists converted lazily to numpy for queries —
append-heavy recording stays O(1), analytics stay vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricsError

__all__ = ["StepSeries"]


class StepSeries:
    """Append-only piecewise-constant series."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        self._last_t: float | None = None
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    # -- building ----------------------------------------------------------------

    def append(self, time: float, value: float) -> None:
        """Record that the series takes *value* from *time* onward.

        Times must be non-decreasing; equal-time appends overwrite (the
        latest observation at an instant wins, matching how settlement
        followed by reallocation updates state at one event time).
        """
        t = float(time)
        last = self._last_t
        if last is not None:
            if t < last - 1e-12:
                raise MetricsError(
                    f"series {self.name!r}: non-monotonic time {time!r} "
                    f"after {last!r}"
                )
            if abs(t - last) <= 1e-12:
                self._values[-1] = float(value)
                self._cache = None
                return
        self._times.append(t)
        self._values.append(float(value))
        self._last_t = t
        self._cache = None

    # -- raw access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    @property
    def empty(self) -> bool:
        """Whether no points have been recorded."""
        return not self._times

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` as float64 arrays (cached)."""
        if self._cache is None:
            self._cache = (
                np.asarray(self._times, dtype=np.float64),
                np.asarray(self._values, dtype=np.float64),
            )
        return self._cache

    @property
    def t_start(self) -> float:
        """First recorded time."""
        self._require_data()
        return self._times[0]

    @property
    def t_end(self) -> float:
        """Last recorded time."""
        self._require_data()
        return self._times[-1]

    # -- queries ------------------------------------------------------------------

    def value_at(self, t: float) -> float:
        """Series value at time *t* (left-step semantics)."""
        self._require_data()
        times, values = self.arrays()
        idx = int(np.searchsorted(times, t, side="right")) - 1
        if idx < 0:
            raise MetricsError(
                f"series {self.name!r}: query at {t!r} precedes first point"
            )
        return float(values[idx])

    def resample(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_at` over a time grid."""
        self._require_data()
        times, values = self.arrays()
        idx = np.searchsorted(times, grid, side="right") - 1
        if np.any(idx < 0):
            raise MetricsError(
                f"series {self.name!r}: grid precedes first point"
            )
        return values[idx]

    def integral(self, t0: float | None = None, t1: float | None = None) -> float:
        """∫ value dt over ``[t0, t1]`` (defaults to the full span)."""
        self._require_data()
        times, values = self.arrays()
        lo = self.t_start if t0 is None else t0
        hi = self.t_end if t1 is None else t1
        if hi <= lo:
            return 0.0
        # Build the knot sequence clipped to [lo, hi].
        edges = np.concatenate(([lo], times[(times > lo) & (times < hi)], [hi]))
        mids = self.resample(edges[:-1])
        return float(np.sum(mids * np.diff(edges)))

    def mean(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        self._require_data()
        lo = self.t_start if t0 is None else t0
        hi = self.t_end if t1 is None else t1
        if hi <= lo:
            raise MetricsError(f"empty mean window [{lo!r}, {hi!r}]")
        return self.integral(lo, hi) / (hi - lo)

    def _require_data(self) -> None:
        if not self._times:
            raise MetricsError(f"series {self.name!r} is empty")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.empty:
            return f"StepSeries({self.name!r}, empty)"
        return (
            f"StepSeries({self.name!r}, n={len(self)}, "
            f"span=[{self.t_start:.3g}, {self.t_end:.3g}])"
        )
