"""The metrics recorder: policy-independent observation of a run.

The recorder plays the role of the paper's measurement harness: it samples
every running container at a fixed cadence and keeps per-container step
series of CPU usage, limit, evaluation value and growth efficiency, plus
completion records captured from worker exit hooks.  It is attached to
*every* run — including NA — which is how the paper obtains growth-
efficiency traces for the baseline (Figs. 13–14 plot ``G`` "in both
FlowCon and NA").

The recorder's sampling deliberately calls :meth:`Worker.poke`, which also
re-samples contention jitter; the sampling grid therefore doubles as the
OS-noise granularity (see DESIGN.md §2).

Streaming mode
--------------
``MetricsRecorder(..., streaming=True)`` trades per-container series for
O(1) memory per container: sampling still pokes the worker and advances
the bus pass (so run *dynamics* — settle points, jitter draws, pruning
cadence — are bit-identical to dense mode), but no step series or growth
histories are kept, and completions fold into a shared
:class:`~repro.metrics.sketch.StreamMetrics` sink instead of a list.
Exited containers are forgotten from the sampler windows, so a
million-job run holds recorder state only for *live* containers.  The
default dense mode is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.worker import Worker
from repro.containers.container import Container
from repro.containers.spec import ResourceType
from repro.core.efficiency import GrowthTracker
from repro.errors import MetricsError
from repro.metrics.summary import CompletionRecord, RunSummary
from repro.metrics.timeseries import StepSeries
from repro.simcore.events import PRIORITY_SAMPLE, Event, EventKind

__all__ = ["ContainerTrace", "MetricsRecorder"]


@dataclass
class ContainerTrace:
    """All step series recorded for one container."""

    cid: int
    label: str
    image: str
    cpu_usage: StepSeries = field(default_factory=lambda: StepSeries("cpu"))
    cpu_limit: StepSeries = field(default_factory=lambda: StepSeries("limit"))
    eval_value: StepSeries = field(default_factory=lambda: StepSeries("eval"))
    growth: StepSeries = field(default_factory=lambda: StepSeries("growth"))


class MetricsRecorder:
    """Samples one worker for the duration of a run.

    Parameters
    ----------
    worker:
        The worker to observe.
    sample_interval:
        Sampling cadence in seconds.
    resource:
        Resource dimension for the recorded growth efficiency.
    streaming:
        When ``True``, keep no per-container series or completion list —
        O(1) memory per container; completions fold into *sink* (when
        given) and exited containers are forgotten.  Dense-mode
        dynamics are preserved exactly (same poke/observe cadence).
    sink:
        Optional :class:`~repro.metrics.sketch.StreamMetrics` shared by
        every recorder of a streaming run; receives one
        ``observe_completion`` per exit.
    """

    def __init__(
        self,
        worker: Worker,
        sample_interval: float = 5.0,
        resource: ResourceType = ResourceType.CPU,
        *,
        streaming: bool = False,
        sink=None,
    ) -> None:
        if sample_interval <= 0:
            raise MetricsError("sample_interval must be positive")
        self.worker = worker
        self.sample_interval = float(sample_interval)
        self.streaming = bool(streaming)
        self.sink = sink
        self.traces: dict[int, ContainerTrace] = {}
        self.completions: list[CompletionRecord] = []
        self._n_completed = 0
        self._tracker = GrowthTracker(resource)
        self._sampler = worker.obsbus.sampler()
        self._labels: dict[str, int] = {}
        self._handle = None
        self._started = False
        self._hooks_installed = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Install hooks and begin sampling (restartable after stop).

        Hooks are installed exactly once across start/stop/start cycles:
        a recorder restarted on a crash-recovered worker must not record
        each completion twice.
        """
        if self._started:
            return
        self._started = True
        if not self._hooks_installed:
            self._hooks_installed = True
            self.worker.exit_hooks.append(self._on_exit)
            self.worker.launch_hooks.append(self._on_launch)
        self._schedule_sample()

    def stop(self) -> None:
        """Stop sampling (hooks remain; they only record)."""
        self._started = False
        if self._handle is not None:
            self.worker.sim.cancel(self._handle)
            self._handle = None

    # -- sampling -------------------------------------------------------------------

    def _schedule_sample(self) -> None:
        # ``payload=self`` identifies the owning recorder to the fleet
        # ticker's batched sampling pass; the serial path ignores it.
        self._handle = self.worker.sim.schedule_in(
            self.sample_interval,
            self._on_sample,
            kind=EventKind.METRIC_SAMPLE,
            priority=PRIORITY_SAMPLE,
            payload=self,
        )

    def _on_sample(self, _event: Event) -> None:
        if not self._started:
            return
        self.sample_now()
        self._schedule_sample()

    def sample_now(self) -> None:
        """Take one sample of every running container immediately.

        Sampling reads the worker's observation bus: the settle and the
        per-container ``E(t)``/window snapshots are computed once per
        instant and shared with every other observer (FlowCon's monitor,
        the progress signal); only this recorder's sampling windows and
        step series are private.

        Streaming mode runs the *same* poke + shared-pass + window
        advance (identical dynamics, identical pruning cadence) but
        appends nothing: the sampled stats are discarded after moving
        this recorder's windows forward.
        """
        self.worker.poke()
        if self.streaming:
            sample = self._sampler.sample
            for obs in self.worker.obsbus.observe():
                sample(obs)
            return
        observe = self._tracker.observe
        sample = self._sampler.sample
        for obs in self.worker.obsbus.observe():
            trace = self.traces.get(obs.cid)
            if trace is None:
                trace = self._trace_for(obs.container)
            stats = sample(obs)
            if stats is None:
                continue
            now = obs.time
            trace.cpu_usage.append(now, stats.mean_usage.cpu)
            trace.cpu_limit.append(now, stats.cpu_limit)
            if stats.eval_value is not None:
                trace.eval_value.append(now, stats.eval_value)
                grown = observe(
                    obs.cid, now, stats.eval_value, stats.mean_usage
                )
                if grown is not None:
                    trace.growth.append(now, grown.growth)

    # -- hooks ------------------------------------------------------------------------

    def _on_launch(self, container: Container) -> None:
        if self.streaming:
            return
        self._trace_for(container)

    def _on_exit(self, container: Container) -> None:
        self._n_completed += 1
        if self.streaming:
            if self.sink is not None:
                self.sink.observe_completion(
                    submitted=container.created_at,
                    finished=container.finished_at,
                    completion_time=container.completion_time(),
                )
            # Exited containers leave no recorder state behind — the
            # bounded-memory guarantee is exactly this pair of forgets.
            self._sampler.forget(container.cid)
            self._tracker.forget(container.cid)
            return
        trace = self.traces.get(container.cid)
        if trace is not None:
            trace.cpu_usage.append(self.worker.sim.now, 0.0)
        self.completions.append(
            CompletionRecord(
                label=container.name,
                image=container.image,
                cid=container.cid,
                submitted=container.created_at,
                finished=container.finished_at,
                completion_time=container.completion_time(),
            )
        )

    def _trace_for(self, container: Container) -> ContainerTrace:
        trace = self.traces.get(container.cid)
        if trace is None:
            trace = ContainerTrace(
                cid=container.cid, label=container.name, image=container.image
            )
            self.traces[container.cid] = trace
            # First trace wins the label (labels are unique per run; the
            # index replaces the historical O(n) scan of trace_by_label).
            self._labels.setdefault(container.name, container.cid)
        return trace

    # -- results -----------------------------------------------------------------------

    @property
    def n_completions(self) -> int:
        """Completions observed by this recorder (both modes)."""
        return self._n_completed

    def trace_by_label(self, label: str) -> ContainerTrace:
        """Trace for a job label (container name), via the label index."""
        cid = self._labels.get(label)
        if cid is None:
            raise MetricsError(f"no trace recorded for label {label!r}")
        return self.traces[cid]

    def summary(self) -> RunSummary:
        """Completion-time summary for the whole run (dense mode only)."""
        if self.streaming:
            raise MetricsError(
                "per-worker summaries are dense-mode only; streaming runs "
                "aggregate into the shared StreamMetrics sink"
            )
        if not self.completions:
            raise MetricsError("no completions recorded yet")
        return RunSummary(completions=list(self.completions))
