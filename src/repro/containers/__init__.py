"""Docker-like container runtime substrate.

The paper drives a real Docker daemon through ``docker run`` /
``docker update`` / ``docker stats``.  This package reproduces exactly the
surface FlowCon touches:

* :class:`~repro.containers.container.Container` — lifecycle
  (``CREATED → RUNNING → EXITED``), attached training job, cgroup account.
* :class:`~repro.containers.limits.LimitSet` — per-resource *soft* limits
  with ``docker update`` semantics.
* :class:`~repro.containers.allocator.CpuAllocator` — two-phase weighted
  water-filling CPU scheduler: max-min fair under ``min(limit, demand)``
  ceilings, then (in soft mode) redistribution of leftover capacity to
  containers with unmet demand, reproducing the paper's §4.1/§5.4 soft-limit
  behaviour.
* :class:`~repro.containers.runtime.ContainerRuntime` — the daemon facade:
  ``run`` / ``update`` / ``stats`` / ``ps`` / ``remove``.
* :class:`~repro.containers.cgroup.CgroupAccount` — cumulative usage
  accounting (cpu-seconds, memory, block and network I/O).
"""

from repro.containers.allocator import AllocationMode, CpuAllocator, water_fill
from repro.containers.cgroup import CgroupAccount
from repro.containers.container import Container, ContainerState
from repro.containers.limits import LimitSet
from repro.containers.runtime import ContainerRuntime
from repro.containers.spec import ResourceSpec, ResourceType, ResourceVector
from repro.containers.stats import ContainerStats, StatsSampler

__all__ = [
    "AllocationMode",
    "CgroupAccount",
    "Container",
    "ContainerRuntime",
    "ContainerState",
    "ContainerStats",
    "CpuAllocator",
    "LimitSet",
    "ResourceSpec",
    "ResourceType",
    "ResourceVector",
    "StatsSampler",
    "water_fill",
]
