"""Per-container resource limits with ``docker update`` semantics.

FlowCon manipulates containers exclusively through limit updates
(§4.1: ``docker update <options> container_id``).  Two properties of Docker
limits matter to the algorithms and are preserved here:

1. **Limits are fractions of node capacity** and act as ceilings during the
   fair-share pass of the CPU scheduler.
2. **Limits are soft** (§4.1 last sentence): capacity a limited container
   leaves on the table is usable by others.  Softness itself is implemented
   in :mod:`repro.containers.allocator`; this module only stores and
   validates the values and keeps an update journal (useful for Fig. 7/10
   style limit traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.spec import ResourceType
from repro.errors import ConfigError

__all__ = ["LimitUpdate", "LimitSet"]

#: Docker's smallest accepted --cpus granularity is 0.01 of a core; we keep
#: a similar quantum so limits of exactly zero (which would wedge a
#: container forever) cannot be expressed.
MIN_LIMIT = 1e-4


@dataclass(frozen=True)
class LimitUpdate:
    """Journal entry: one ``docker update`` call."""

    time: float
    resource: ResourceType
    old: float
    new: float


class LimitSet:
    """Mutable per-container limits, one value in ``(0, 1]`` per resource.

    A fresh container starts with every limit at ``1.0`` — Docker's default
    of unconstrained competition, which is also the paper's NA baseline.
    """

    def __init__(self) -> None:
        self._limits: dict[ResourceType, float] = {
            r: 1.0 for r in ResourceType.ordered()
        }
        self._journal: list[LimitUpdate] = []

    # -- reads -------------------------------------------------------------

    def get(self, resource: ResourceType = ResourceType.CPU) -> float:
        """Current limit for *resource*."""
        return self._limits[resource]

    @property
    def cpu(self) -> float:
        """Shorthand for the CPU limit (the contended resource)."""
        return self._limits[ResourceType.CPU]

    @property
    def journal(self) -> list[LimitUpdate]:
        """Chronological list of every update applied."""
        return list(self._journal)

    # -- writes ------------------------------------------------------------

    def set(
        self,
        resource: ResourceType,
        value: float,
        *,
        time: float = 0.0,
    ) -> bool:
        """Apply one update; returns ``True`` if the value actually changed.

        Values are clamped into ``[MIN_LIMIT, 1]`` after validation, the
        same way the Docker CLI rejects nonsensical ``--cpus`` values.
        """
        if not isinstance(value, (int, float)):
            raise ConfigError(f"limit must be numeric, got {type(value).__name__}")
        if value != value:  # NaN guard
            raise ConfigError("limit must not be NaN")
        if value <= 0.0:
            raise ConfigError(f"limit must be positive, got {value!r}")
        clamped = min(max(float(value), MIN_LIMIT), 1.0)
        old = self._limits[resource]
        if abs(clamped - old) < 1e-12:
            return False
        self._limits[resource] = clamped
        self._journal.append(LimitUpdate(time, resource, old, clamped))
        return True

    def set_cpu(self, value: float, *, time: float = 0.0) -> bool:
        """Shorthand for updating the CPU limit."""
        return self.set(ResourceType.CPU, value, time=time)

    def reset(self, *, time: float = 0.0) -> None:
        """Lift every limit back to 1.0 (free competition)."""
        for resource in ResourceType.ordered():
            self.set(resource, 1.0, time=time)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict snapshot keyed by resource name."""
        return {r.value: v for r, v in self._limits.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{r.value}={v:.3f}" for r, v in self._limits.items())
        return f"LimitSet({parts})"
