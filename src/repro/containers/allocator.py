"""Work-conserving CPU allocation with soft limits.

This module is the heart of the container substrate: it reproduces the
*observable contract* of the Linux CFS + Docker limits stack that FlowCon
manipulates, using a two-phase weighted water-filling computation.

Semantics (validated against the paper's worked examples)
---------------------------------------------------------
Let capacity be ``C`` (normalized to 1.0 per worker), and per container
``i`` let ``L_i`` be its CPU limit and ``d_i`` its demand (parallelism
ceiling).

**Phase 1 — fair share under ceilings.**  Max-min fair allocation with
per-container ceiling ``u_i = min(L_i, d_i) · C`` and equal weights: spare
share from saturated containers is recursively redistributed to
unsaturated ones.  This reproduces the §5.3 example: VAE limited to 0.25
and a fresh MNIST at limit 1 split the node 25 % / 75 %.

**Phase 2 — soft-limit redistribution** (``AllocationMode.SOFT``).  If
capacity remains after phase 1 (all ceilings met) and some containers still
have unmet *demand*, the leftover is water-filled among them ignoring their
limits.  This is Docker's soft-limit behaviour the paper leans on in §4.1
("even if the container cannot maximize its own resource, the unused option
will be utilized by others") and §5.4 technique (1).  ``HARD`` mode skips
phase 2 and models ``--cpus``-style strict ceilings — used by the ablation
benchmarks to show the capacity soft limits reclaim.

Both phases run in vectorized numpy: the water-fill is the standard
sort-then-progressive-fill algorithm, O(n log n) per call.  For the pool
sizes one worker actually hosts (a handful to a few dozen containers)
the ~25 numpy-call constant factor dominates the arithmetic, so a scalar
fast path handles ``n <= _SCALAR_MAX`` with **the exact same operations
in the same order** — element-wise IEEE arithmetic is reproduced
literally, and the two reductions whose result feeds back into the
arithmetic (``alloc.sum()``) are delegated to numpy on the assembled
array so even pairwise-summation order matches.  A property test pins
bit-identical equality of the two paths.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import AllocationError

__all__ = ["AllocationMode", "CpuAllocator", "water_fill"]


#: Largest pool the scalar water-fill fast path handles; beyond it the
#: vectorized numpy formulation wins.
_SCALAR_MAX = 64


class AllocationMode(enum.Enum):
    """How limits behave once every ceiling is honoured."""

    #: Leftover capacity is redistributed to containers with unmet demand
    #: (Docker cpu-shares-like behaviour; the paper's semantics).
    SOFT = "soft"
    #: Limits are strict ceilings (``docker update --cpus``); leftover
    #: capacity idles.  Ablation mode.
    HARD = "hard"


def water_fill(
    capacity: float,
    ceilings: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted max-min fair ("water-filling") allocation under ceilings.

    Distributes ``capacity`` among ``n`` entities so that each receives at
    most ``ceilings[i]``, unsaturated entities receive shares proportional
    to ``weights[i]``, and no capacity is left over unless every entity is
    saturated.

    Parameters
    ----------
    capacity:
        Total divisible quantity (>= 0).
    ceilings:
        Per-entity upper bounds (>= 0).  ``inf`` is allowed.
    weights:
        Optional positive proportional-share weights (default: equal).

    Returns
    -------
    numpy.ndarray
        Allocations with ``0 <= alloc <= ceilings`` and
        ``alloc.sum() == min(capacity, ceilings.sum())`` up to float
        round-off.

    Notes
    -----
    Implemented with the classic sort-by-normalized-ceiling progressive
    fill, fully vectorized via cumulative sums (no Python-level loop over
    entities), per the hpc-parallel guide's vectorization idiom.
    """
    ceilings = np.asarray(ceilings, dtype=np.float64)
    n = ceilings.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if capacity < 0:
        raise AllocationError(f"negative capacity {capacity!r}")
    if ceilings.min() < -1e-12:
        raise AllocationError("negative ceiling in water_fill")
    ceilings = np.maximum(ceilings, 0.0)

    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != ceilings.shape:
            raise AllocationError("weights and ceilings shape mismatch")
        if weights.min() <= 0:
            raise AllocationError("weights must be strictly positive")

    if capacity == 0.0:
        return np.zeros(n, dtype=np.float64)

    # Normalized saturation level of entity i is ceilings[i] / weights[i]:
    # at water level λ, entity i receives min(λ * w_i, c_i).  Find the
    # level where total allocation equals capacity.
    levels = ceilings / weights
    order = np.argsort(levels, kind="stable")
    c_sorted = ceilings[order]
    w_sorted = weights[order]
    lv_sorted = levels[order]

    # After the k entities with smallest levels saturate, the remaining
    # capacity is capacity - cumsum(c)[k-1] and the remaining weight is
    # total_w - cumsum(w)[k-1].  Entity k saturates iff the candidate level
    # (remaining capacity / remaining weight) exceeds its own level.
    csum_c = np.concatenate(([0.0], np.cumsum(c_sorted)))
    csum_w = np.concatenate(([0.0], np.cumsum(w_sorted)))
    total_w = csum_w[-1]

    remaining_cap = capacity - csum_c[:-1]          # before considering k
    remaining_w = total_w - csum_w[:-1]
    # Suffix weight sums are positive except for float round-off at the
    # tail; masked division avoids the (costly) errstate guard.
    positive = remaining_w > 0
    candidate = np.full(n, np.inf, dtype=np.float64)
    np.divide(remaining_cap, remaining_w, out=candidate, where=positive)
    saturated = candidate >= lv_sorted - 1e-15

    # `saturated` is a prefix (monotone) property; find the first index
    # where the candidate level no longer saturates the entity.
    not_sat = np.nonzero(~saturated)[0]
    k = int(not_sat[0]) if not_sat.size else n

    alloc_sorted = np.empty(n, dtype=np.float64)
    alloc_sorted[:k] = c_sorted[:k]
    if k < n:
        lam = max(0.0, (capacity - csum_c[k]) / (total_w - csum_w[k]))
        alloc_sorted[k:] = np.minimum(lam * w_sorted[k:], c_sorted[k:])

    alloc = np.empty(n, dtype=np.float64)
    alloc[order] = alloc_sorted
    # Numeric hygiene: clamp and never exceed capacity.
    alloc = np.minimum(np.maximum(alloc, 0.0), ceilings)
    excess = alloc.sum() - capacity
    if excess > 1e-9:
        alloc *= capacity / alloc.sum()
    return alloc


def _water_fill_scalar(
    capacity: float,
    ceilings: list[float],
    weights: list[float] | None,
) -> list[float]:
    """Scalar replica of :func:`water_fill` for small pools.

    Every element-wise operation, comparison threshold and division is
    performed in the same order as the vectorized formulation, and the
    two whole-array sums whose values feed back into the arithmetic are
    delegated to ``np.sum`` on the assembled array, so results are
    **bit-identical** (pinned by a property test).  Callers guarantee
    ``len(ceilings) >= 1`` and pre-validated inputs shapes.
    """
    n = len(ceilings)
    if capacity < 0:
        raise AllocationError(f"negative capacity {capacity!r}")
    if min(ceilings) < -1e-12:
        raise AllocationError("negative ceiling in water_fill")
    ceilings = [c if c > 0.0 else 0.0 for c in ceilings]

    if weights is None:
        weights = [1.0] * n
    else:
        if len(weights) != n:
            raise AllocationError("weights and ceilings shape mismatch")
        if min(weights) <= 0:
            raise AllocationError("weights must be strictly positive")

    if capacity == 0.0:
        return [0.0] * n

    levels = [c / w for c, w in zip(ceilings, weights)]
    order = sorted(range(n), key=levels.__getitem__)  # stable, like argsort
    c_sorted = [ceilings[i] for i in order]
    w_sorted = [weights[i] for i in order]

    # Sequential prefix sums — np.cumsum accumulates left to right, so a
    # running Python sum reproduces it exactly.
    csum_c = [0.0] * (n + 1)
    csum_w = [0.0] * (n + 1)
    acc_c = acc_w = 0.0
    for i in range(n):
        acc_c += c_sorted[i]
        acc_w += w_sorted[i]
        csum_c[i + 1] = acc_c
        csum_w[i + 1] = acc_w
    total_w = csum_w[n]

    k = n
    for i in range(n):
        remaining_w = total_w - csum_w[i]
        if remaining_w > 0:
            candidate = (capacity - csum_c[i]) / remaining_w
        else:
            candidate = np.inf
        if not candidate >= levels[order[i]] - 1e-15:
            k = i
            break

    alloc_sorted = c_sorted[:k]
    if k < n:
        lam = max(0.0, (capacity - csum_c[k]) / (total_w - csum_w[k]))
        alloc_sorted += [min(lam * w, c) for w, c in zip(w_sorted[k:], c_sorted[k:])]

    alloc = [0.0] * n
    for i, a in zip(order, alloc_sorted):
        alloc[i] = a
    # Numeric hygiene: clamp and never exceed capacity (sum via numpy on
    # the assembled array keeps pairwise-summation order identical).
    alloc = [min(a if a > 0.0 else 0.0, c) for a, c in zip(alloc, ceilings)]
    total = float(np.sum(np.array(alloc, dtype=np.float64)))
    excess = total - capacity
    if excess > 1e-9:
        factor = capacity / total
        alloc = [a * factor for a in alloc]
    return alloc


class CpuAllocator:
    """Stateless CPU allocation policy for one worker.

    Parameters
    ----------
    mode:
        :class:`AllocationMode` — soft (paper semantics, default) or hard.
    """

    def __init__(self, mode: AllocationMode = AllocationMode.SOFT) -> None:
        self.mode = mode

    def allocate(
        self,
        capacity: float,
        limits: np.ndarray,
        demands: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute per-container CPU allocations.

        Parameters
        ----------
        capacity:
            Worker CPU capacity (normalized, typically 1.0).
        limits:
            Per-container CPU limits in ``(0, 1]`` (fractions of capacity).
        demands:
            Per-container CPU demand ceilings in ``(0, 1]`` of capacity.
        weights:
            Optional fair-share weights for the phase-1 water-fill.  The
            kernel's instantaneous shares of equal-priority tasks are not
            perfectly equal; the worker passes per-settlement noise here
            (the Fig. 16-style jitter of free competition).  Default:
            equal weights.

        Returns
        -------
        numpy.ndarray
            Allocations satisfying ``alloc <= demands`` always,
            ``alloc <= limits·capacity`` in hard mode, and work conservation
            (``sum == min(capacity, demands.sum())``) in soft mode.
        """
        limits = np.asarray(limits, dtype=np.float64)
        demands = np.asarray(demands, dtype=np.float64)
        if limits.shape != demands.shape:
            raise AllocationError("limits and demands shape mismatch")
        n = limits.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        if n <= _SCALAR_MAX:
            return self._allocate_scalar(capacity, limits, demands, weights)
        if limits.min() <= 0 or limits.max() > 1.0 + 1e-12:
            raise AllocationError(f"limits must lie in (0, 1]: {limits!r}")
        if demands.min() < 0:
            raise AllocationError("demands must be non-negative")

        demand_abs = np.minimum(demands, 1.0) * capacity
        phase1_ceiling = np.minimum(limits * capacity, demand_abs)
        alloc = water_fill(capacity, phase1_ceiling, weights)

        if self.mode is AllocationMode.SOFT:
            spare = capacity - alloc.sum()
            if spare > 1e-12:
                residual = np.maximum(demand_abs - alloc, 0.0)
                if residual.sum() > 1e-12:
                    alloc = alloc + water_fill(spare, residual)

        return np.minimum(alloc, demand_abs)

    def _allocate_scalar(
        self,
        capacity: float,
        limits: np.ndarray,
        demands: np.ndarray,
        weights: np.ndarray | None,
    ) -> np.ndarray:
        """Scalar fast path of :meth:`allocate` (small pools).

        Same operations in the same order as the vectorized formulation
        — see :func:`_water_fill_scalar` — so allocations are
        bit-identical; only the constant factor changes.
        """
        lim = limits.tolist()
        dem = demands.tolist()
        if min(lim) <= 0 or max(lim) > 1.0 + 1e-12:
            raise AllocationError(f"limits must lie in (0, 1]: {limits!r}")
        if min(dem) < 0:
            raise AllocationError("demands must be non-negative")

        demand_abs = [min(d, 1.0) * capacity for d in dem]
        ceil = [min(li * capacity, da) for li, da in zip(lim, demand_abs)]
        wts = weights.tolist() if weights is not None else None
        alloc = _water_fill_scalar(capacity, ceil, wts)

        if self.mode is AllocationMode.SOFT:
            spare = capacity - float(np.sum(np.array(alloc, dtype=np.float64)))
            if spare > 1e-12:
                residual = [
                    r if (r := da - a) > 0.0 else 0.0
                    for da, a in zip(demand_abs, alloc)
                ]
                if float(np.sum(np.array(residual, dtype=np.float64))) > 1e-12:
                    extra = _water_fill_scalar(spare, residual, None)
                    alloc = [a + e for a, e in zip(alloc, extra)]

        return np.array(
            [min(a, da) for a, da in zip(alloc, demand_abs)],
            dtype=np.float64,
        )
