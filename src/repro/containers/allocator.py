"""Work-conserving CPU allocation with soft limits.

This module is the heart of the container substrate: it reproduces the
*observable contract* of the Linux CFS + Docker limits stack that FlowCon
manipulates, using a two-phase weighted water-filling computation.

Semantics (validated against the paper's worked examples)
---------------------------------------------------------
Let capacity be ``C`` (normalized to 1.0 per worker), and per container
``i`` let ``L_i`` be its CPU limit and ``d_i`` its demand (parallelism
ceiling).

**Phase 1 — fair share under ceilings.**  Max-min fair allocation with
per-container ceiling ``u_i = min(L_i, d_i) · C`` and equal weights: spare
share from saturated containers is recursively redistributed to
unsaturated ones.  This reproduces the §5.3 example: VAE limited to 0.25
and a fresh MNIST at limit 1 split the node 25 % / 75 %.

**Phase 2 — soft-limit redistribution** (``AllocationMode.SOFT``).  If
capacity remains after phase 1 (all ceilings met) and some containers still
have unmet *demand*, the leftover is water-filled among them ignoring their
limits.  This is Docker's soft-limit behaviour the paper leans on in §4.1
("even if the container cannot maximize its own resource, the unused option
will be utilized by others") and §5.4 technique (1).  ``HARD`` mode skips
phase 2 and models ``--cpus``-style strict ceilings — used by the ablation
benchmarks to show the capacity soft limits reclaim.

Both phases run in vectorized numpy: the water-fill is the standard
sort-then-progressive-fill algorithm, O(n log n) per call.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import AllocationError

__all__ = ["AllocationMode", "CpuAllocator", "water_fill"]


class AllocationMode(enum.Enum):
    """How limits behave once every ceiling is honoured."""

    #: Leftover capacity is redistributed to containers with unmet demand
    #: (Docker cpu-shares-like behaviour; the paper's semantics).
    SOFT = "soft"
    #: Limits are strict ceilings (``docker update --cpus``); leftover
    #: capacity idles.  Ablation mode.
    HARD = "hard"


def water_fill(
    capacity: float,
    ceilings: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted max-min fair ("water-filling") allocation under ceilings.

    Distributes ``capacity`` among ``n`` entities so that each receives at
    most ``ceilings[i]``, unsaturated entities receive shares proportional
    to ``weights[i]``, and no capacity is left over unless every entity is
    saturated.

    Parameters
    ----------
    capacity:
        Total divisible quantity (>= 0).
    ceilings:
        Per-entity upper bounds (>= 0).  ``inf`` is allowed.
    weights:
        Optional positive proportional-share weights (default: equal).

    Returns
    -------
    numpy.ndarray
        Allocations with ``0 <= alloc <= ceilings`` and
        ``alloc.sum() == min(capacity, ceilings.sum())`` up to float
        round-off.

    Notes
    -----
    Implemented with the classic sort-by-normalized-ceiling progressive
    fill, fully vectorized via cumulative sums (no Python-level loop over
    entities), per the hpc-parallel guide's vectorization idiom.
    """
    ceilings = np.asarray(ceilings, dtype=np.float64)
    n = ceilings.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if capacity < 0:
        raise AllocationError(f"negative capacity {capacity!r}")
    if ceilings.min() < -1e-12:
        raise AllocationError("negative ceiling in water_fill")
    ceilings = np.maximum(ceilings, 0.0)

    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != ceilings.shape:
            raise AllocationError("weights and ceilings shape mismatch")
        if weights.min() <= 0:
            raise AllocationError("weights must be strictly positive")

    if capacity == 0.0:
        return np.zeros(n, dtype=np.float64)

    # Normalized saturation level of entity i is ceilings[i] / weights[i]:
    # at water level λ, entity i receives min(λ * w_i, c_i).  Find the
    # level where total allocation equals capacity.
    levels = ceilings / weights
    order = np.argsort(levels, kind="stable")
    c_sorted = ceilings[order]
    w_sorted = weights[order]
    lv_sorted = levels[order]

    # After the k entities with smallest levels saturate, the remaining
    # capacity is capacity - cumsum(c)[k-1] and the remaining weight is
    # total_w - cumsum(w)[k-1].  Entity k saturates iff the candidate level
    # (remaining capacity / remaining weight) exceeds its own level.
    csum_c = np.concatenate(([0.0], np.cumsum(c_sorted)))
    csum_w = np.concatenate(([0.0], np.cumsum(w_sorted)))
    total_w = csum_w[-1]

    remaining_cap = capacity - csum_c[:-1]          # before considering k
    remaining_w = total_w - csum_w[:-1]
    # Suffix weight sums are positive except for float round-off at the
    # tail; masked division avoids the (costly) errstate guard.
    positive = remaining_w > 0
    candidate = np.full(n, np.inf, dtype=np.float64)
    np.divide(remaining_cap, remaining_w, out=candidate, where=positive)
    saturated = candidate >= lv_sorted - 1e-15

    # `saturated` is a prefix (monotone) property; find the first index
    # where the candidate level no longer saturates the entity.
    not_sat = np.nonzero(~saturated)[0]
    k = int(not_sat[0]) if not_sat.size else n

    alloc_sorted = np.empty(n, dtype=np.float64)
    alloc_sorted[:k] = c_sorted[:k]
    if k < n:
        lam = max(0.0, (capacity - csum_c[k]) / (total_w - csum_w[k]))
        alloc_sorted[k:] = np.minimum(lam * w_sorted[k:], c_sorted[k:])

    alloc = np.empty(n, dtype=np.float64)
    alloc[order] = alloc_sorted
    # Numeric hygiene: clamp and never exceed capacity.
    alloc = np.minimum(np.maximum(alloc, 0.0), ceilings)
    excess = alloc.sum() - capacity
    if excess > 1e-9:
        alloc *= capacity / alloc.sum()
    return alloc


class CpuAllocator:
    """Stateless CPU allocation policy for one worker.

    Parameters
    ----------
    mode:
        :class:`AllocationMode` — soft (paper semantics, default) or hard.
    """

    def __init__(self, mode: AllocationMode = AllocationMode.SOFT) -> None:
        self.mode = mode

    def allocate(
        self,
        capacity: float,
        limits: np.ndarray,
        demands: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute per-container CPU allocations.

        Parameters
        ----------
        capacity:
            Worker CPU capacity (normalized, typically 1.0).
        limits:
            Per-container CPU limits in ``(0, 1]`` (fractions of capacity).
        demands:
            Per-container CPU demand ceilings in ``(0, 1]`` of capacity.
        weights:
            Optional fair-share weights for the phase-1 water-fill.  The
            kernel's instantaneous shares of equal-priority tasks are not
            perfectly equal; the worker passes per-settlement noise here
            (the Fig. 16-style jitter of free competition).  Default:
            equal weights.

        Returns
        -------
        numpy.ndarray
            Allocations satisfying ``alloc <= demands`` always,
            ``alloc <= limits·capacity`` in hard mode, and work conservation
            (``sum == min(capacity, demands.sum())``) in soft mode.
        """
        limits = np.asarray(limits, dtype=np.float64)
        demands = np.asarray(demands, dtype=np.float64)
        if limits.shape != demands.shape:
            raise AllocationError("limits and demands shape mismatch")
        n = limits.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        if limits.min() <= 0 or limits.max() > 1.0 + 1e-12:
            raise AllocationError(f"limits must lie in (0, 1]: {limits!r}")
        if demands.min() < 0:
            raise AllocationError("demands must be non-negative")

        demand_abs = np.minimum(demands, 1.0) * capacity
        phase1_ceiling = np.minimum(limits * capacity, demand_abs)
        alloc = water_fill(capacity, phase1_ceiling, weights)

        if self.mode is AllocationMode.SOFT:
            spare = capacity - alloc.sum()
            if spare > 1e-12:
                residual = np.maximum(demand_abs - alloc, 0.0)
                if residual.sum() > 1e-12:
                    alloc = alloc + water_fill(spare, residual)

        return np.minimum(alloc, demand_abs)
