"""Work-conserving CPU allocation with soft limits.

This module is the heart of the container substrate: it reproduces the
*observable contract* of the Linux CFS + Docker limits stack that FlowCon
manipulates, using a two-phase weighted water-filling computation.

Semantics (validated against the paper's worked examples)
---------------------------------------------------------
Let capacity be ``C`` (normalized to 1.0 per worker), and per container
``i`` let ``L_i`` be its CPU limit and ``d_i`` its demand (parallelism
ceiling).

**Phase 1 — fair share under ceilings.**  Max-min fair allocation with
per-container ceiling ``u_i = min(L_i, d_i) · C`` and equal weights: spare
share from saturated containers is recursively redistributed to
unsaturated ones.  This reproduces the §5.3 example: VAE limited to 0.25
and a fresh MNIST at limit 1 split the node 25 % / 75 %.

**Phase 2 — soft-limit redistribution** (``AllocationMode.SOFT``).  If
capacity remains after phase 1 (all ceilings met) and some containers still
have unmet *demand*, the leftover is water-filled among them ignoring their
limits.  This is Docker's soft-limit behaviour the paper leans on in §4.1
("even if the container cannot maximize its own resource, the unused option
will be utilized by others") and §5.4 technique (1).  ``HARD`` mode skips
phase 2 and models ``--cpus``-style strict ceilings — used by the ablation
benchmarks to show the capacity soft limits reclaim.

Both phases run in vectorized numpy: the water-fill is the standard
sort-then-progressive-fill algorithm, O(n log n) per call.  For the pool
sizes one worker actually hosts (a handful to a few dozen containers)
the ~25 numpy-call constant factor dominates the arithmetic, so a scalar
fast path handles ``n <= _SCALAR_MAX`` with **the exact same operations
in the same order** — element-wise IEEE arithmetic is reproduced
literally, and the two reductions whose result feeds back into the
arithmetic (``alloc.sum()``) are delegated to numpy on the assembled
array so even pairwise-summation order matches.  A property test pins
bit-identical equality of the two paths.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import AllocationError

__all__ = ["AllocationMode", "CpuAllocator", "water_fill"]


#: Largest pool the scalar water-fill fast path handles; beyond it the
#: vectorized numpy formulation wins.
_SCALAR_MAX = 64


class AllocationMode(enum.Enum):
    """How limits behave once every ceiling is honoured."""

    #: Leftover capacity is redistributed to containers with unmet demand
    #: (Docker cpu-shares-like behaviour; the paper's semantics).
    SOFT = "soft"
    #: Limits are strict ceilings (``docker update --cpus``); leftover
    #: capacity idles.  Ablation mode.
    HARD = "hard"


def water_fill(
    capacity: float,
    ceilings: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted max-min fair ("water-filling") allocation under ceilings.

    Distributes ``capacity`` among ``n`` entities so that each receives at
    most ``ceilings[i]``, unsaturated entities receive shares proportional
    to ``weights[i]``, and no capacity is left over unless every entity is
    saturated.

    Parameters
    ----------
    capacity:
        Total divisible quantity (>= 0).
    ceilings:
        Per-entity upper bounds (>= 0).  ``inf`` is allowed.
    weights:
        Optional positive proportional-share weights (default: equal).

    Returns
    -------
    numpy.ndarray
        Allocations with ``0 <= alloc <= ceilings`` and
        ``alloc.sum() == min(capacity, ceilings.sum())`` up to float
        round-off.

    Notes
    -----
    Implemented with the classic sort-by-normalized-ceiling progressive
    fill, fully vectorized via cumulative sums (no Python-level loop over
    entities), per the hpc-parallel guide's vectorization idiom.
    """
    ceilings = np.asarray(ceilings, dtype=np.float64)
    n = ceilings.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if capacity < 0:
        raise AllocationError(f"negative capacity {capacity!r}")
    if ceilings.min() < -1e-12:
        raise AllocationError("negative ceiling in water_fill")
    ceilings = np.maximum(ceilings, 0.0)

    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != ceilings.shape:
            raise AllocationError("weights and ceilings shape mismatch")
        if weights.min() <= 0:
            raise AllocationError("weights must be strictly positive")

    if capacity == 0.0:
        return np.zeros(n, dtype=np.float64)

    # Normalized saturation level of entity i is ceilings[i] / weights[i]:
    # at water level λ, entity i receives min(λ * w_i, c_i).  Find the
    # level where total allocation equals capacity.
    levels = ceilings / weights
    order = np.argsort(levels, kind="stable")
    c_sorted = ceilings[order]
    w_sorted = weights[order]
    lv_sorted = levels[order]

    # After the k entities with smallest levels saturate, the remaining
    # capacity is capacity - cumsum(c)[k-1] and the remaining weight is
    # total_w - cumsum(w)[k-1].  Entity k saturates iff the candidate level
    # (remaining capacity / remaining weight) exceeds its own level.
    csum_c = np.concatenate(([0.0], np.cumsum(c_sorted)))
    csum_w = np.concatenate(([0.0], np.cumsum(w_sorted)))
    total_w = csum_w[-1]

    remaining_cap = capacity - csum_c[:-1]          # before considering k
    remaining_w = total_w - csum_w[:-1]
    # Suffix weight sums are positive except for float round-off at the
    # tail; masked division avoids the (costly) errstate guard.
    positive = remaining_w > 0
    candidate = np.full(n, np.inf, dtype=np.float64)
    np.divide(remaining_cap, remaining_w, out=candidate, where=positive)
    saturated = candidate >= lv_sorted - 1e-15

    # `saturated` is a prefix (monotone) property; find the first index
    # where the candidate level no longer saturates the entity.
    not_sat = np.nonzero(~saturated)[0]
    k = int(not_sat[0]) if not_sat.size else n

    alloc_sorted = np.empty(n, dtype=np.float64)
    alloc_sorted[:k] = c_sorted[:k]
    if k < n:
        lam = max(0.0, (capacity - csum_c[k]) / (total_w - csum_w[k]))
        alloc_sorted[k:] = np.minimum(lam * w_sorted[k:], c_sorted[k:])

    alloc = np.empty(n, dtype=np.float64)
    alloc[order] = alloc_sorted
    # Numeric hygiene: clamp and never exceed capacity.
    alloc = np.minimum(np.maximum(alloc, 0.0), ceilings)
    excess = alloc.sum() - capacity
    if excess > 1e-9:
        alloc *= capacity / alloc.sum()
    return alloc


def _water_fill_scalar(
    capacity: float,
    ceilings: list[float],
    weights: list[float] | None,
) -> list[float]:
    """Scalar replica of :func:`water_fill` for small pools.

    Every element-wise operation, comparison threshold and division is
    performed in the same order as the vectorized formulation, and the
    two whole-array sums whose values feed back into the arithmetic are
    delegated to ``np.sum`` on the assembled array, so results are
    **bit-identical** (pinned by a property test).  Callers guarantee
    ``len(ceilings) >= 1`` and pre-validated inputs shapes.
    """
    n = len(ceilings)
    if capacity < 0:
        raise AllocationError(f"negative capacity {capacity!r}")
    if min(ceilings) < -1e-12:
        raise AllocationError("negative ceiling in water_fill")
    ceilings = [c if c > 0.0 else 0.0 for c in ceilings]

    if weights is None:
        weights = [1.0] * n
    else:
        if len(weights) != n:
            raise AllocationError("weights and ceilings shape mismatch")
        if min(weights) <= 0:
            raise AllocationError("weights must be strictly positive")

    if capacity == 0.0:
        return [0.0] * n

    if n == 1:
        # Single entity: the general path below collapses to a handful of
        # scalar operations (prefix sums are zero, ``np.sum`` over one
        # element is that element), replicated here in the same IEEE
        # order — bit-identical, pinned by the same property test.
        c = ceilings[0]
        w = weights[0]
        candidate = capacity / w
        if candidate >= c / w - 1e-15:
            a = c
        else:
            lam = max(0.0, candidate)
            a = min(lam * w, c)
        a = min(a if a > 0.0 else 0.0, c)
        if a - capacity > 1e-9:
            a = a * (capacity / a)
        return [a]

    levels = [c / w for c, w in zip(ceilings, weights)]
    order = sorted(range(n), key=levels.__getitem__)  # stable, like argsort
    c_sorted = [ceilings[i] for i in order]
    w_sorted = [weights[i] for i in order]

    # Sequential prefix sums — np.cumsum accumulates left to right, so a
    # running Python sum reproduces it exactly.
    csum_c = [0.0] * (n + 1)
    csum_w = [0.0] * (n + 1)
    acc_c = acc_w = 0.0
    for i in range(n):
        acc_c += c_sorted[i]
        acc_w += w_sorted[i]
        csum_c[i + 1] = acc_c
        csum_w[i + 1] = acc_w
    total_w = csum_w[n]

    k = n
    for i in range(n):
        remaining_w = total_w - csum_w[i]
        if remaining_w > 0:
            candidate = (capacity - csum_c[i]) / remaining_w
        else:
            candidate = np.inf
        if not candidate >= levels[order[i]] - 1e-15:
            k = i
            break

    alloc_sorted = c_sorted[:k]
    if k < n:
        lam = max(0.0, (capacity - csum_c[k]) / (total_w - csum_w[k]))
        alloc_sorted += [min(lam * w, c) for w, c in zip(w_sorted[k:], c_sorted[k:])]

    alloc = [0.0] * n
    for i, a in zip(order, alloc_sorted):
        alloc[i] = a
    # Numeric hygiene: clamp and never exceed capacity (sum via numpy on
    # the assembled array keeps pairwise-summation order identical).
    alloc = [min(a if a > 0.0 else 0.0, c) for a, c in zip(alloc, ceilings)]
    # ``np.sum`` delegates to ``ndarray.sum`` — calling the method directly
    # skips the dispatch wrapper without changing the reduction.
    total = float(np.array(alloc, dtype=np.float64).sum())
    excess = total - capacity
    if excess > 1e-9:
        factor = capacity / total
        alloc = [a * factor for a in alloc]
    return alloc


class CpuAllocator:
    """Stateless CPU allocation policy for one worker.

    Parameters
    ----------
    mode:
        :class:`AllocationMode` — soft (paper semantics, default) or hard.
    """

    def __init__(self, mode: AllocationMode = AllocationMode.SOFT) -> None:
        self.mode = mode

    def allocate(
        self,
        capacity: float,
        limits: np.ndarray,
        demands: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute per-container CPU allocations.

        Parameters
        ----------
        capacity:
            Worker CPU capacity (normalized, typically 1.0).
        limits:
            Per-container CPU limits in ``(0, 1]`` (fractions of capacity).
        demands:
            Per-container CPU demand ceilings in ``(0, 1]`` of capacity.
        weights:
            Optional fair-share weights for the phase-1 water-fill.  The
            kernel's instantaneous shares of equal-priority tasks are not
            perfectly equal; the worker passes per-settlement noise here
            (the Fig. 16-style jitter of free competition).  Default:
            equal weights.

        Returns
        -------
        numpy.ndarray
            Allocations satisfying ``alloc <= demands`` always,
            ``alloc <= limits·capacity`` in hard mode, and work conservation
            (``sum == min(capacity, demands.sum())``) in soft mode.
        """
        limits = np.asarray(limits, dtype=np.float64)
        demands = np.asarray(demands, dtype=np.float64)
        if limits.shape != demands.shape:
            raise AllocationError("limits and demands shape mismatch")
        n = limits.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        if n <= _SCALAR_MAX:
            return self._allocate_scalar(capacity, limits, demands, weights)
        if limits.min() <= 0 or limits.max() > 1.0 + 1e-12:
            raise AllocationError(f"limits must lie in (0, 1]: {limits!r}")
        if demands.min() < 0:
            raise AllocationError("demands must be non-negative")

        demand_abs = np.minimum(demands, 1.0) * capacity
        phase1_ceiling = np.minimum(limits * capacity, demand_abs)
        alloc = water_fill(capacity, phase1_ceiling, weights)

        if self.mode is AllocationMode.SOFT:
            spare = capacity - alloc.sum()
            if spare > 1e-12:
                residual = np.maximum(demand_abs - alloc, 0.0)
                if residual.sum() > 1e-12:
                    alloc = alloc + water_fill(spare, residual)

        return np.minimum(alloc, demand_abs)

    def _allocate_scalar(
        self,
        capacity: float,
        limits: np.ndarray,
        demands: np.ndarray,
        weights: np.ndarray | None,
    ) -> np.ndarray:
        """Scalar fast path of :meth:`allocate` (small pools).

        Same operations in the same order as the vectorized formulation
        — see :func:`_water_fill_scalar` — so allocations are
        bit-identical; only the constant factor changes.
        """
        lim = limits.tolist()
        dem = demands.tolist()
        if min(lim) <= 0 or max(lim) > 1.0 + 1e-12:
            raise AllocationError(f"limits must lie in (0, 1]: {limits!r}")
        if min(dem) < 0:
            raise AllocationError("demands must be non-negative")

        demand_abs = [min(d, 1.0) * capacity for d in dem]
        ceil = [min(li * capacity, da) for li, da in zip(lim, demand_abs)]
        return self._finish_scalar(capacity, demand_abs, ceil, weights)

    def _finish_scalar(
        self,
        capacity: float,
        demand_abs: list[float],
        ceil: list[float],
        weights: np.ndarray | None,
    ) -> np.ndarray:
        """Water-fill + soft phase 2 given precomputed scalar ceilings.

        Tail of :meth:`_allocate_scalar`, factored out so the segmented
        fleet path can compute ``demand_abs``/``ceil`` for many workers in
        one packed numpy pass and still finish each segment through the
        exact scalar pipeline (bit-identical to the per-worker call).
        """
        wts = weights.tolist() if weights is not None else None
        alloc = _water_fill_scalar(capacity, ceil, wts)

        if len(demand_abs) == 1:
            # Single container: both whole-array sums are the lone element
            # itself (``np.sum`` over one element), so the phase-2 guard
            # and the final demand clamp run as plain scalar ops — same
            # values, same branches as the general path below.
            a = alloc[0]
            da = demand_abs[0]
            if self.mode is AllocationMode.SOFT:
                spare = capacity - a
                if spare > 1e-12:
                    residual = r if (r := da - a) > 0.0 else 0.0
                    if residual > 1e-12:
                        a = a + _water_fill_scalar(spare, [residual], None)[0]
            return np.array([min(a, da)], dtype=np.float64)

        if self.mode is AllocationMode.SOFT:
            spare = capacity - float(np.array(alloc, dtype=np.float64).sum())
            if spare > 1e-12:
                residual = [
                    r if (r := da - a) > 0.0 else 0.0
                    for da, a in zip(demand_abs, alloc)
                ]
                if float(np.array(residual, dtype=np.float64).sum()) > 1e-12:
                    extra = _water_fill_scalar(spare, residual, None)
                    alloc = [a + e for a, e in zip(alloc, extra)]

        return np.array(
            [min(a, da) for a, da in zip(alloc, demand_abs)],
            dtype=np.float64,
        )

    def _finish_n1(
        self,
        caps: np.ndarray,
        dem_abs: np.ndarray,
        ceil: np.ndarray,
        wts: np.ndarray,
    ) -> np.ndarray:
        """Single-container segments, all finished in one broadcast.

        Element *j* reproduces :meth:`_finish_scalar` on the one-element
        segment ``(caps[j], [dem_abs[j]], [ceil[j]], [wts[j]])`` exactly:
        with ``n == 1`` every reduction is the lone element, so the
        scalar pipeline is a fixed chain of element-wise IEEE ops and
        comparisons that broadcasts across segments bit-identically.
        Callers guarantee ``caps >= 0``, ``ceil >= 0`` and ``wts > 0``.

        Two scalar-path checks are provably dead for ``n == 1`` and are
        not mirrored: the phase-1 over-capacity rescale (both branches
        bound the allocation by ``capacity + w·1e-15``) and the inner
        phase-2 rescale (the refill is bounded by ``spare + 1e-15``).
        A zero capacity yields a zero ceiling, so the scalar path's
        ``capacity == 0`` early-out also lands on the same value.
        """
        candidate = caps / wts
        # Phase 1: water-fill — level check, weighted share, clamp.
        alloc = np.where(
            candidate >= ceil / wts - 1e-15,
            ceil,
            np.minimum(candidate * wts, ceil),
        )
        alloc = np.minimum(np.where(alloc > 0.0, alloc, 0.0), ceil)
        if self.mode is AllocationMode.SOFT:
            # Phase 2: redistribute spare toward unmet demand (the inner
            # water-fill runs unweighted, exactly like the scalar path).
            spare = caps - alloc
            residual = dem_abs - alloc
            residual = np.where(residual > 0.0, residual, 0.0)
            refill = (spare > 1e-12) & (residual > 1e-12)
            if refill.any():
                extra = np.where(
                    spare >= residual - 1e-15,
                    residual,
                    np.minimum(spare, residual),
                )
                extra = np.minimum(np.where(extra > 0.0, extra, 0.0), residual)
                alloc = np.where(refill, alloc + extra, alloc)
        return np.minimum(alloc, dem_abs)

    def allocate_segmented(
        self,
        capacities: list[float],
        limits_seq: list[np.ndarray],
        demands_seq: list[np.ndarray],
        weights_seq: list[np.ndarray | None],
    ) -> list[np.ndarray]:
        """Allocate many independent worker pools in one packed pass.

        Each index describes one worker (segment): its capacity, limit and
        demand vectors, and optional weights.  The per-segment results are
        **bit-identical** to calling :meth:`allocate` per worker: the only
        fused stage is the element-wise ceiling computation
        (``min(d, 1) · C`` and ``min(L · C, d_abs)``), which is identical
        IEEE arithmetic whether performed packed or per segment; the
        water-fill and soft-limit redistribution — whose reductions feed
        back into the arithmetic — still run per segment through
        :meth:`_finish_scalar`.  Segments larger than the scalar fast-path
        bound (or empty) delegate to :meth:`allocate` unchanged.  Invalid
        inputs re-run per segment so the failing worker raises exactly the
        error the serial path would.
        """
        n_segs = len(limits_seq)
        lens = [limits.shape[0] for limits in limits_seq]
        results: list[np.ndarray] = [None] * n_segs  # type: ignore[list-item]
        small: list[int] = []
        for i, ln in enumerate(lens):
            if 0 < ln <= _SCALAR_MAX:
                small.append(i)
            else:
                results[i] = self.allocate(
                    capacities[i], limits_seq[i], demands_seq[i], weights_seq[i]
                )
        if not small:
            return results
        lims_p = np.concatenate([limits_seq[i] for i in small])
        dems_p = np.concatenate([demands_seq[i] for i in small])
        if lims_p.min() <= 0 or lims_p.max() > 1.0 + 1e-12 or dems_p.min() < 0:
            for i in small:
                results[i] = self.allocate(
                    capacities[i], limits_seq[i], demands_seq[i], weights_seq[i]
                )
            return results
        caps_s = np.array([capacities[i] for i in small], dtype=np.float64)
        caps_p = np.repeat(caps_s, [lens[i] for i in small])
        dem_abs_p = np.minimum(dems_p, 1.0) * caps_p
        ceil_p = np.minimum(lims_p * caps_p, dem_abs_p)
        if dems_p.shape[0] == len(small) and caps_s.min() >= 0.0:
            # Every small segment holds exactly one container — the
            # dominant fleet shape (one training job per node).  The
            # whole scalar pipeline is branch-free per segment, so it
            # broadcasts across segments; invalid weights fall through
            # to the per-segment loop, which raises for the offender.
            wts_s = np.ones(len(small), dtype=np.float64)
            valid = True
            for j, i in enumerate(small):
                wt = weights_seq[i]
                if wt is None:
                    continue
                if wt.shape[0] != 1 or wt[0] <= 0:
                    valid = False  # shape/positivity errors raise serially
                    break
                wts_s[j] = wt[0]
            if valid:
                alloc_s = self._finish_n1(caps_s, dem_abs_p, ceil_p, wts_s)
                for j, i in enumerate(small):
                    results[i] = alloc_s[j : j + 1]
                return results
        dem_abs_list = dem_abs_p.tolist()
        ceil_list = ceil_p.tolist()
        off = 0
        for i in small:
            end = off + lens[i]
            results[i] = self._finish_scalar(
                capacities[i],
                dem_abs_list[off:end],
                ceil_list[off:end],
                weights_seq[i],
            )
            off = end
        return results
