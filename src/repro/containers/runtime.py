"""The container-daemon facade.

:class:`ContainerRuntime` plays the role of the local Docker daemon on one
worker: it owns the container table and exposes the exact operations the
paper's middleware issues — ``run``, ``update``, ``stats``, ``ps``,
``remove`` (§2.1, §4.1).  It does **not** decide CPU shares or advance
jobs; that is the worker's job (:mod:`repro.cluster.worker`), mirroring how
the real daemon delegates scheduling to the kernel.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.containers.container import Container, ContainerState, Workload
from repro.containers.spec import ResourceType
from repro.containers.stats import ContainerStats, StatsSampler
from repro.errors import ContainerStateError, UnknownContainerError

__all__ = ["ContainerRuntime"]


class ContainerRuntime:
    """In-memory daemon for one worker node.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time; the
        daemon timestamps lifecycle transitions with it.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._containers: dict[int, Container] = {}
        self._sampler = StatsSampler()
        #: Observers notified on lifecycle changes: (event, container).
        self._listeners: list[Callable[[str, Container], None]] = []
        #: Monotonic table/limit version; bumped on any membership or
        #: limit change, keying the ``ps`` caches and the worker's
        #: allocation-input caches.
        self.version = 0
        self._ps_cache: tuple[int, list[Container]] | None = None
        self._ps_all_cache: tuple[int, list[Container]] | None = None

    # -- daemon API ----------------------------------------------------------

    def run(
        self,
        job: Workload,
        *,
        name: str | None = None,
        image: str = "repro/dl-job",
    ) -> Container:
        """``docker run -d <image>``: create and immediately start."""
        now = self._clock()
        container = Container(job, name=name, image=image, created_at=now)
        container.start(now)
        self._containers[container.cid] = container
        self.version += 1
        self._notify("run", container)
        return container

    def update(
        self,
        cid: int,
        *,
        cpus: float | None = None,
        memory: float | None = None,
        blkio_weight: float | None = None,
    ) -> bool:
        """``docker update <options> container_id``.

        Returns ``True`` if any limit actually changed.  Updating an exited
        container raises, like the real daemon.
        """
        container = self.get(cid)
        if container.state is ContainerState.EXITED:
            raise ContainerStateError(
                f"cannot update exited container {container.name}"
            )
        now = self._clock()
        changed = False
        if cpus is not None:
            changed |= container.limits.set(ResourceType.CPU, cpus, time=now)
        if memory is not None:
            changed |= container.limits.set(ResourceType.MEMORY, memory, time=now)
        if blkio_weight is not None:
            changed |= container.limits.set(
                ResourceType.BLKIO, blkio_weight, time=now
            )
        if changed:
            self.version += 1
            self._notify("update", container)
        return changed

    def stats(self, cid: int) -> ContainerStats | None:
        """``docker stats --no-stream <cid>`` plus the job's ``E(t)``."""
        return self._sampler.sample(self.get(cid), self._clock())

    def ps(self, *, all_states: bool = False) -> list[Container]:
        """``docker ps`` — RUNNING containers (or all with ``all_states``).

        The returned list is cached per table version (membership and
        state changes invalidate it); treat it as read-only.
        """
        if all_states:
            cached = self._ps_all_cache
            if cached is not None and cached[0] == self.version:
                return cached[1]
            containers = sorted(self._containers.values(), key=lambda c: c.cid)
            self._ps_all_cache = (self.version, containers)
            return containers
        cached = self._ps_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        containers = [
            c
            for c in sorted(self._containers.values(), key=lambda c: c.cid)
            if c.state is ContainerState.RUNNING
        ]
        self._ps_cache = (self.version, containers)
        return containers

    def remove(self, cid: int) -> Container:
        """``docker rm`` — drop an exited container from the table."""
        container = self.get(cid)
        if container.state is not ContainerState.EXITED:
            raise ContainerStateError(
                f"cannot remove non-exited container {container.name}"
            )
        del self._containers[cid]
        self._sampler.forget(cid)
        self.version += 1
        self._notify("remove", container)
        return container

    def release(self, cid: int) -> Container:
        """Hand a RUNNING container off this daemon (live-migration source).

        The container keeps its full state (job progress, limits, cgroup
        counters); only the table entry and this daemon's sampler memory
        go.  The counterpart of :meth:`adopt` on the target daemon.
        """
        container = self.get(cid)
        if container.state is not ContainerState.RUNNING:
            raise ContainerStateError(
                f"cannot release non-running container {container.name}"
            )
        del self._containers[cid]
        self._sampler.forget(cid)
        self.version += 1
        self._notify("release", container)
        return container

    def adopt(self, container: Container) -> Container:
        """Accept a RUNNING container released by another daemon."""
        if container.state is not ContainerState.RUNNING:
            raise ContainerStateError(
                f"cannot adopt non-running container {container.name}"
            )
        if container.cid in self._containers:
            raise ContainerStateError(
                f"container {container.name} is already on this daemon"
            )
        self._containers[container.cid] = container
        self.version += 1
        self._notify("adopt", container)
        return container

    # -- internal / worker-facing ---------------------------------------------

    def get(self, cid: int) -> Container:
        """Look up a container by id."""
        try:
            return self._containers[cid]
        except KeyError:
            raise UnknownContainerError(cid) from None

    def mark_exited(self, cid: int) -> Container:
        """Transition a container to EXITED (called by the worker)."""
        container = self.get(cid)
        container.mark_exited(self._clock())
        self.version += 1
        self._notify("exit", container)
        return container

    def running(self) -> list[Container]:
        """All RUNNING containers in cid order."""
        return self.ps()

    def all_containers(self) -> list[Container]:
        """Every container the daemon has seen and not removed."""
        return self.ps(all_states=True)

    def __len__(self) -> int:
        return len(self._containers)

    def __iter__(self) -> Iterable[Container]:
        return iter(self.ps(all_states=True))

    # -- events ----------------------------------------------------------------

    def subscribe(self, callback: Callable[[str, Container], None]) -> None:
        """Register a lifecycle observer (``event`` in run/update/exit/remove)."""
        self._listeners.append(callback)

    def _notify(self, event: str, container: Container) -> None:
        for listener in self._listeners:
            listener(event, container)
