"""Resource kinds and per-container resource descriptors.

The paper's container monitor records four resources per container
(§3.2.1): CPU, memory, block I/O and network I/O.  CPU is the contended,
dynamically re-allocated resource in the evaluation; the other three are
tracked for accounting and for the multi-resource form of Eq. 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["ResourceType", "ResourceVector", "ResourceSpec"]


class ResourceType(enum.Enum):
    """The four resource dimensions FlowCon's container monitor records."""

    CPU = "cpu"
    MEMORY = "memory"
    BLKIO = "blkio"
    NETIO = "netio"

    @classmethod
    def ordered(cls) -> tuple["ResourceType", ...]:
        """Stable ordering used for vectorized representations."""
        return (cls.CPU, cls.MEMORY, cls.BLKIO, cls.NETIO)

    @property
    def index(self) -> int:
        """Position of this resource in :meth:`ordered`."""
        return ResourceType.ordered().index(self)


@dataclass(frozen=True)
class ResourceVector:
    """An immutable quantity per resource dimension.

    Units are normalized: CPU in fractions of one worker's capacity,
    memory in fractions of worker RAM, block/network I/O in fractions of
    the device bandwidth.  Normalization keeps the allocator and the
    growth-efficiency math unit-free, mirroring the paper's normalized
    CPU-usage plots (Figs. 7–16).
    """

    cpu: float = 0.0
    memory: float = 0.0
    blkio: float = 0.0
    netio: float = 0.0

    def as_array(self) -> np.ndarray:
        """Dense ``float64[4]`` view in :meth:`ResourceType.ordered` order."""
        return np.array(
            [self.cpu, self.memory, self.blkio, self.netio], dtype=np.float64
        )

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "ResourceVector":
        """Inverse of :meth:`as_array`.

        Hot path (one call per container per sample): fields are written
        through ``__dict__`` to skip the frozen-dataclass
        ``object.__setattr__`` round-trips; the resulting instance is an
        ordinary (immutable) :class:`ResourceVector`.
        """
        if arr.shape != (4,):
            raise ConfigError(f"resource array must have shape (4,), got {arr.shape}")
        self = object.__new__(cls)
        self.__dict__.update(
            cpu=float(arr[0]),
            memory=float(arr[1]),
            blkio=float(arr[2]),
            netio=float(arr[3]),
        )
        return self

    def get(self, resource: ResourceType) -> float:
        """Value along one resource dimension."""
        return getattr(self, resource.value)

    def replace(self, resource: ResourceType, value: float) -> "ResourceVector":
        """Functional single-field update."""
        fields = {r.value: self.get(r) for r in ResourceType.ordered()}
        fields[resource.value] = float(value)
        return ResourceVector(**fields)

    def scaled(self, factor: float) -> "ResourceVector":
        """Multiply every dimension by *factor*."""
        return ResourceVector.from_array(self.as_array() * factor)

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(self.as_array() + other.as_array())

    def dominates(self, other: "ResourceVector") -> bool:
        """Component-wise ``>=`` comparison."""
        return bool(np.all(self.as_array() >= other.as_array() - 1e-12))


@dataclass(frozen=True)
class ResourceSpec:
    """Static resource *footprint* of a containerized job.

    Attributes
    ----------
    cpu_demand:
        Maximum CPU fraction the job can exploit (its parallelism ceiling).
        Most DL training loops here are compute-bound (``1.0``); the paper's
        LSTM-CFC famously idles part of the node (§5.4, Fig. 11), modelled
        as ``cpu_demand < 1``.
    memory:
        Resident memory footprint while training (fraction of worker RAM).
    blkio:
        Average block-I/O bandwidth fraction (dataset streaming).
    netio:
        Average network-I/O bandwidth fraction.
    """

    cpu_demand: float = 1.0
    memory: float = 0.1
    blkio: float = 0.01
    netio: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cpu_demand", "memory", "blkio", "netio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"ResourceSpec.{name} must be within [0, 1], got {value!r}"
                )
        if self.cpu_demand <= 0.0:
            raise ConfigError("ResourceSpec.cpu_demand must be positive")

    def usage_at(self, cpu_alloc: float) -> ResourceVector:
        """Instantaneous usage when granted ``cpu_alloc`` CPU.

        Memory is resident (independent of CPU); I/O scales with achieved
        compute rate because a faster training loop streams batches faster.
        """
        rate = 0.0 if self.cpu_demand <= 0 else min(cpu_alloc, self.cpu_demand)
        scale = rate / self.cpu_demand
        return ResourceVector(
            cpu=rate,
            memory=self.memory,
            blkio=self.blkio * scale,
            netio=self.netio * scale,
        )
