"""``docker stats``-style sampling.

The container monitor (§3.2.1) consumes periodic per-container usage
snapshots.  :class:`StatsSampler` produces them from cgroup accounts; each
:class:`ContainerStats` corresponds to one line of ``docker stats`` output
plus the evaluation-function reading FlowCon additionally scrapes from the
job's log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.container import Container
from repro.containers.spec import ResourceVector

__all__ = ["ContainerStats", "StatsSampler"]


@dataclass(frozen=True)
class ContainerStats:
    """One sampled observation of a running container."""

    time: float
    cid: int
    name: str
    state: str
    #: Mean usage since the previous sample (Eq. 2's ``R(t_i)``).
    mean_usage: ResourceVector
    #: Instantaneous CPU allocation at sampling time.
    cpu_alloc: float
    #: Current CPU limit.
    cpu_limit: float
    #: Evaluation-function reading ``E(t)`` (loss/accuracy), if available.
    eval_value: float | None


class StatsSampler:
    """Stateful sampler that remembers each container's last sample time.

    One sampler instance belongs to one observer (the container monitor);
    separate observers sampling at different cadences do not interfere.
    """

    def __init__(self) -> None:
        self._last_sample: dict[int, float] = {}

    def sample(self, container: Container, time: float) -> ContainerStats | None:
        """Sample *container* at *time*.

        Returns ``None`` for a zero-length window (two samples at the same
        instant), mirroring how a real monitor would skip a duplicate poll.
        """
        t_prev = self._last_sample.get(container.cid, container.created_at)
        if time <= t_prev:
            return None
        mean = container.cgroup.mean_usage_since(t_prev, time)
        self._last_sample[container.cid] = time
        try:
            eval_value: float | None = container.job.eval_value()
        except Exception:  # job may not expose E(t); monitor tolerates it
            eval_value = None
        return ContainerStats(
            time=time,
            cid=container.cid,
            name=container.name,
            state=container.state.value,
            mean_usage=mean,
            cpu_alloc=container.current_alloc,
            cpu_limit=container.limits.cpu,
            eval_value=eval_value,
        )

    def forget(self, cid: int) -> None:
        """Drop sampler state for an exited container."""
        self._last_sample.pop(cid, None)
