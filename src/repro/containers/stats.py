"""``docker stats``-style sampling.

The container monitor (§3.2.1) consumes periodic per-container usage
snapshots.  :class:`StatsSampler` produces them from cgroup accounts; each
:class:`ContainerStats` corresponds to one line of ``docker stats`` output
plus the evaluation-function reading FlowCon additionally scrapes from the
job's log.
"""

from __future__ import annotations

from repro.containers.container import Container
from repro.containers.spec import ResourceVector

__all__ = ["ContainerStats", "StatsSampler"]


class ContainerStats:
    """One sampled observation of a running container.

    A plain ``__slots__`` record (immutable by convention): one is
    created per container per observer per sample tick, which makes
    construction a measured hot path.

    Attributes
    ----------
    time / cid / name / state:
        Sample timestamp and container identity.
    mean_usage:
        Mean usage since the previous sample (Eq. 2's ``R(t_i)``).
    cpu_alloc:
        Instantaneous CPU allocation at sampling time.
    cpu_limit:
        Current CPU limit.
    eval_value:
        Evaluation-function reading ``E(t)`` (loss/accuracy), if available.
    """

    __slots__ = (
        "time",
        "cid",
        "name",
        "state",
        "mean_usage",
        "cpu_alloc",
        "cpu_limit",
        "eval_value",
    )

    def __init__(
        self,
        time: float,
        cid: int,
        name: str,
        state: str,
        mean_usage: ResourceVector,
        cpu_alloc: float,
        cpu_limit: float,
        eval_value: float | None,
    ) -> None:
        self.time = time
        self.cid = cid
        self.name = name
        self.state = state
        self.mean_usage = mean_usage
        self.cpu_alloc = cpu_alloc
        self.cpu_limit = cpu_limit
        self.eval_value = eval_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContainerStats(t={self.time:.3f}, cid={self.cid}, "
            f"name={self.name!r}, eval={self.eval_value!r})"
        )


class StatsSampler:
    """Stateful sampler that remembers each container's last sample time.

    One sampler instance belongs to one observer (the container monitor);
    separate observers sampling at different cadences do not interfere.
    """

    def __init__(self) -> None:
        self._last_sample: dict[int, float] = {}

    def sample(self, container: Container, time: float) -> ContainerStats | None:
        """Sample *container* at *time*.

        Returns ``None`` for a zero-length window (two samples at the same
        instant), mirroring how a real monitor would skip a duplicate poll.
        """
        t_prev = self._last_sample.get(container.cid)
        if t_prev is None:
            # First sample: window from creation — or from the pruned
            # history floor when the observation bus has already bounded
            # this account's checkpoints (the floor equals the creation
            # time on unpruned accounts, so behaviour is unchanged).
            t_prev = container.cgroup.history_floor
        if time <= t_prev:
            return None
        mean = container.cgroup.mean_usage_since(t_prev, time)
        self._last_sample[container.cid] = time
        try:
            eval_value: float | None = container.job.eval_value()
        except Exception:  # job may not expose E(t); monitor tolerates it
            eval_value = None
        return ContainerStats(
            time=time,
            cid=container.cid,
            name=container.name,
            state=container.state.value,
            mean_usage=mean,
            cpu_alloc=container.current_alloc,
            cpu_limit=container.limits.cpu,
            eval_value=eval_value,
        )

    def forget(self, cid: int) -> None:
        """Drop sampler state for an exited container."""
        self._last_sample.pop(cid, None)
