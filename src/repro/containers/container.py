"""Container objects and their lifecycle.

A :class:`Container` wraps one workload (a DL training job) together with
its limits and cgroup account, and tracks Docker's lifecycle states.  The
containers layer deliberately knows nothing about *how* workloads make
progress — it only requires the tiny :class:`Workload` protocol — so the
substrate stays reusable below :mod:`repro.workloads`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Protocol, runtime_checkable

from repro.containers.cgroup import CgroupAccount
from repro.containers.limits import LimitSet
from repro.containers.spec import ResourceSpec, ResourceVector
from repro.errors import ContainerStateError

__all__ = ["Container", "ContainerState", "Workload"]

_cid_counter = itertools.count(1)


@runtime_checkable
class Workload(Protocol):
    """What the container substrate requires of a job.

    :class:`repro.workloads.job.TrainingJob` is the canonical
    implementation; tests use lightweight stand-ins.
    """

    @property
    def footprint(self) -> ResourceSpec:
        """Static resource footprint (demand ceiling, memory, I/O)."""
        ...

    @property
    def finished(self) -> bool:
        """Whether the job has completed all its work."""
        ...

    def remaining_work(self) -> float:
        """CPU-seconds of work left until completion."""
        ...

    def advance(self, cpu_seconds: float) -> None:
        """Consume delivered CPU-seconds, moving training forward."""
        ...

    def eval_value(self) -> float:
        """Current value of the job's evaluation function ``E(t)``."""
        ...


class ContainerState(enum.Enum):
    """Docker lifecycle states used by the reproduction."""

    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"


class Container:
    """One containerized training job on a worker.

    Parameters
    ----------
    job:
        The :class:`Workload` executed inside the container.
    name:
        Human-readable name (defaults to ``con-<cid>``).
    image:
        Docker-image-style label, e.g. ``"pytorch/mnist"``; cosmetic but
        kept because the experiment reports group by it.
    created_at:
        Simulation time of ``docker run``.
    """

    def __init__(
        self,
        job: Workload,
        *,
        name: str | None = None,
        image: str = "repro/dl-job",
        created_at: float = 0.0,
    ) -> None:
        self.cid: int = next(_cid_counter)
        self.name = name if name is not None else f"con-{self.cid}"
        self.image = image
        self.job = job
        self.state = ContainerState.CREATED
        self.created_at = float(created_at)
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.limits = LimitSet()
        self.cgroup = CgroupAccount(created_at=created_at)
        #: CPU share granted by the most recent allocation pass.
        self.current_alloc: float = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self, time: float) -> None:
        """``CREATED → RUNNING``."""
        if self.state is not ContainerState.CREATED:
            raise ContainerStateError(
                f"cannot start container {self.name} in state {self.state.value}"
            )
        self.state = ContainerState.RUNNING
        self.started_at = float(time)

    def mark_exited(self, time: float) -> None:
        """``RUNNING → EXITED`` (job complete)."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerStateError(
                f"cannot exit container {self.name} in state {self.state.value}"
            )
        self.state = ContainerState.EXITED
        self.finished_at = float(time)
        self.current_alloc = 0.0

    # -- derived properties --------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the container is currently RUNNING."""
        return self.state is ContainerState.RUNNING

    @property
    def exited(self) -> bool:
        """Whether the container has EXITED."""
        return self.state is ContainerState.EXITED

    def completion_time(self) -> float:
        """Wall-clock duration from creation to exit.

        The paper computes a job's completion time "whenever the container
        is marked as exited" (§5.5.1), measured from its submission.
        """
        if self.finished_at is None:
            raise ContainerStateError(
                f"container {self.name} has not exited yet"
            )
        return self.finished_at - self.created_at

    def demand(self) -> float:
        """Current CPU demand ceiling of the enclosed job."""
        return self.job.footprint.cpu_demand

    def usage_at(self, cpu_alloc: float) -> ResourceVector:
        """Instantaneous resource usage if granted *cpu_alloc*."""
        return self.job.footprint.usage_at(cpu_alloc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Container(cid={self.cid}, name={self.name!r}, "
            f"state={self.state.value}, limit={self.limits.cpu:.3f})"
        )
