"""Cgroup-style cumulative usage accounting.

Docker exposes per-container usage through the cgroup filesystem
(``cpuacct.usage``, ``memory.usage_in_bytes``, blkio/net counters);
``docker stats`` and FlowCon's container monitor read those counters.
:class:`CgroupAccount` is the simulated equivalent: cumulative counters
advanced analytically whenever the worker settles an interval of constant
allocation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.containers.spec import ResourceType, ResourceVector
from repro.errors import ContainerError

__all__ = ["CgroupAccount", "UsageWindow"]


@dataclass(frozen=True)
class UsageWindow:
    """Average usage over a closed time window (for Eq. 2's ``R(t_i)``)."""

    t_start: float
    t_end: float
    mean: ResourceVector

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.t_end - self.t_start


class CgroupAccount:
    """Cumulative resource counters for a single container.

    The counters integrate *instantaneous* usage over time, exactly like
    ``cpuacct.usage`` integrates CPU-nanoseconds.  Interval averages — what
    Eq. 2's ``R_{cid,ri}(t_i)`` asks for — are recovered as counter deltas
    divided by elapsed time via :meth:`window_between`.
    """

    def __init__(self, created_at: float = 0.0) -> None:
        self.created_at = float(created_at)
        self.last_update = float(created_at)
        # Integral of usage dt per resource, ResourceType.ordered() order.
        self._integral = np.zeros(4, dtype=np.float64)
        # Checkpoint history for window queries, stored as parallel lists
        # so lookups can bisect the times without rebuilding an array.
        self._cp_times: list[float] = [self.created_at]
        self._cp_values: list[np.ndarray] = [self._integral.copy()]

    # -- accumulation ------------------------------------------------------

    def accumulate(self, dt: float, usage: ResourceVector) -> None:
        """Integrate constant *usage* over an interval of length *dt*."""
        if dt < 0:
            raise ContainerError(f"negative accounting interval {dt!r}")
        if dt == 0.0:
            return
        self._integral += usage.as_array() * dt
        self.last_update += dt

    def settle_add(self, dt: float, contrib: np.ndarray) -> None:
        """Bulk settlement fast-path: add a precomputed ``usage · dt`` row.

        The worker's vectorized settlement computes every container's
        contribution in one numpy pass and hands each account its row;
        this is ``accumulate`` + ``checkpoint`` without re-deriving the
        usage vector.  *dt* must be positive (the worker already
        early-outs on empty intervals).
        """
        self._integral += contrib
        self.last_update += dt
        self._cp_times.append(self.last_update)
        self._cp_values.append(self._integral.copy())

    def checkpoint(self) -> None:
        """Record the current counters for later window queries."""
        self._cp_times.append(self.last_update)
        self._cp_values.append(self._integral.copy())

    # -- queries -----------------------------------------------------------

    @property
    def totals(self) -> ResourceVector:
        """Cumulative usage integrals (e.g. CPU-seconds) since creation."""
        return ResourceVector.from_array(self._integral)

    def cpu_seconds(self) -> float:
        """Total CPU-seconds consumed (the ``cpuacct.usage`` analogue)."""
        return float(self._integral[ResourceType.CPU.index])

    def mean_usage_since(self, t_start: float, t_end: float) -> ResourceVector:
        """Average usage over ``[t_start, t_end]``.

        Requires checkpoints at (or integration up to) both endpoints; the
        worker checkpoints at every settlement, so monitor intervals always
        align.  Falls back to linear interpolation between the two nearest
        checkpoints for robustness.
        """
        if t_end <= t_start:
            raise ContainerError(
                f"empty usage window [{t_start!r}, {t_end!r}]"
            )
        start_integral = self._integral_at(t_start)
        end_integral = self._integral_at(t_end)
        mean = (end_integral - start_integral) / (t_end - t_start)
        return ResourceVector.from_array(mean)

    def window_between(self, t_start: float, t_end: float) -> UsageWindow:
        """Convenience wrapper returning a :class:`UsageWindow`."""
        return UsageWindow(t_start, t_end, self.mean_usage_since(t_start, t_end))

    def _integral_at(self, t: float) -> np.ndarray:
        """Counter values at time *t* (interpolating between checkpoints)."""
        times = self._cp_times
        if t <= times[0]:
            return self._cp_values[0]
        if t >= self.last_update:
            return self._integral
        idx = bisect_right(times, t) - 1
        t0, v0 = times[idx], self._cp_values[idx]
        if idx + 1 < len(times):
            t1, v1 = times[idx + 1], self._cp_values[idx + 1]
        else:
            t1, v1 = self.last_update, self._integral
        if t1 <= t0:
            return v1
        frac = (t - t0) / (t1 - t0)
        return v0 + (v1 - v0) * frac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CgroupAccount(cpu_s={self.cpu_seconds():.3f}, "
            f"updated={self.last_update:.3f})"
        )
