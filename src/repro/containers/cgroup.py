"""Cgroup-style cumulative usage accounting.

Docker exposes per-container usage through the cgroup filesystem
(``cpuacct.usage``, ``memory.usage_in_bytes``, blkio/net counters);
``docker stats`` and FlowCon's container monitor read those counters.
:class:`CgroupAccount` is the simulated equivalent: cumulative counters
advanced analytically whenever the worker settles an interval of constant
allocation.

Storage layout
--------------
Checkpoint history lives in two growable **contiguous numpy buffers** —
``times`` (shape ``(cap,)``) and ``values`` (shape ``(cap, 4)``) — with a
live window ``[lo, n)``.  Appends are amortized O(1) (capacity doubling),
lookups are ``np.searchsorted`` on the contiguous times slice, and
**pruning** (:meth:`prune_before`) just advances ``lo``; dead rows are
reclaimed on the next grow.  The per-element arithmetic of
:meth:`_integral_at` is unchanged from the historical parallel-list
implementation, so interpolated window queries are bit-identical.

Observation cache
-----------------
The observation bus (:mod:`repro.cluster.obsbus`) funnels every
observer's window queries through :meth:`window_mean_cached`, which
memoizes integral snapshots by exact query time: at a sampling tick the
snapshot "integral at *now*" is computed once and every subscriber's
*next* window reuses it as its start point, so N subscribers cost one
uncached query per container per tick (:attr:`window_queries` counts
them, for tests and benches).  Memo entries below the prune floor are
evicted with the checkpoints they summarize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.containers.spec import ResourceType, ResourceVector
from repro.errors import ContainerError

__all__ = ["CgroupAccount", "UsageWindow"]

#: Initial checkpoint-buffer capacity (doubles as needed).
_INITIAL_CAP = 16

#: Snapshot-memo entries beyond which :meth:`window_mean_cached` resets
#: the memo (pruning normally evicts; this bounds unpruned runs).
_MEMO_CAP = 512


@dataclass(frozen=True)
class UsageWindow:
    """Average usage over a closed time window (for Eq. 2's ``R(t_i)``)."""

    t_start: float
    t_end: float
    mean: ResourceVector

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.t_end - self.t_start


class CgroupAccount:
    """Cumulative resource counters for a single container.

    The counters integrate *instantaneous* usage over time, exactly like
    ``cpuacct.usage`` integrates CPU-nanoseconds.  Interval averages — what
    Eq. 2's ``R_{cid,ri}(t_i)`` asks for — are recovered as counter deltas
    divided by elapsed time via :meth:`window_between`.
    """

    def __init__(self, created_at: float = 0.0) -> None:
        self.created_at = float(created_at)
        self.last_update = float(created_at)
        # Integral of usage dt per resource, ResourceType.ordered() order.
        self._integral = np.zeros(4, dtype=np.float64)
        # Contiguous checkpoint buffers; live entries are [lo, n).
        self._cp_t = np.empty(_INITIAL_CAP, dtype=np.float64)
        self._cp_v = np.empty((_INITIAL_CAP, 4), dtype=np.float64)
        self._cp_t[0] = self.last_update
        self._cp_v[0] = 0.0
        self._lo = 0
        self._n = 1
        self._pruned = False
        # time → immutable integral snapshot, shared by all observers.
        self._memo: dict[float, np.ndarray] = {}
        #: Uncached integral computations (test/bench instrumentation).
        self.window_queries = 0

    # -- accumulation ------------------------------------------------------

    def accumulate(self, dt: float, usage: ResourceVector) -> None:
        """Integrate constant *usage* over an interval of length *dt*."""
        if dt < 0:
            raise ContainerError(f"negative accounting interval {dt!r}")
        if dt == 0.0:
            return
        self._integral += usage.as_array() * dt
        self.last_update += dt

    def settle_add(self, dt: float, contrib: np.ndarray) -> None:
        """Bulk settlement fast-path: add a precomputed ``usage · dt`` row.

        The worker's vectorized settlement computes every container's
        contribution in one numpy pass and hands each account its row;
        this is ``accumulate`` + ``checkpoint`` without re-deriving the
        usage vector.  *dt* must be positive (the worker already
        early-outs on empty intervals).
        """
        self._integral += contrib
        self.last_update += dt
        n = self._n
        if n == self._cp_t.shape[0]:
            self._grow()
            n = self._n
        self._cp_t[n] = self.last_update
        self._cp_v[n] = self._integral
        self._n = n + 1

    def checkpoint(self) -> None:
        """Record the current counters for later window queries."""
        n = self._n
        if n == self._cp_t.shape[0]:
            self._grow()
            n = self._n
        self._cp_t[n] = self.last_update
        self._cp_v[n] = self._integral
        self._n = n + 1

    def _grow(self) -> None:
        """Make room for one more checkpoint (compact or double)."""
        lo, n = self._lo, self._n
        live = n - lo
        if lo >= live and lo >= _INITIAL_CAP:
            # More dead rows than live ones: compact in place.
            self._cp_t[:live] = self._cp_t[lo:n]
            self._cp_v[:live] = self._cp_v[lo:n]
        else:
            cap = max(_INITIAL_CAP, 2 * live)
            new_t = np.empty(cap, dtype=np.float64)
            new_v = np.empty((cap, 4), dtype=np.float64)
            new_t[:live] = self._cp_t[lo:n]
            new_v[:live] = self._cp_v[lo:n]
            self._cp_t = new_t
            self._cp_v = new_v
        self._lo = 0
        self._n = live

    # -- pruning -----------------------------------------------------------

    @property
    def checkpoint_count(self) -> int:
        """Live checkpoints currently retained."""
        return self._n - self._lo

    @property
    def history_floor(self) -> float:
        """Earliest time still answerable by :meth:`_integral_at`."""
        return float(self._cp_t[self._lo])

    def prune_before(self, t: float) -> int:
        """Drop checkpoints no window query will ever need again.

        Keeps the newest checkpoint at or before *t* (so windows starting
        exactly at *t* still resolve) and everything after it.  Queries
        strictly below the new floor raise :class:`ContainerError`
        afterwards — better a loud error than silently interpolating
        from truncated history.  Returns the number of rows pruned.
        """
        lo, n = self._lo, self._n
        if t <= self._cp_t[lo]:
            return 0
        idx = lo + int(np.searchsorted(self._cp_t[lo:n], t, side="right")) - 1
        if idx <= lo:
            return 0
        self._lo = idx
        self._pruned = True
        if self._memo:
            floor = self._cp_t[idx]
            self._memo = {k: v for k, v in self._memo.items() if k >= floor}
        return idx - lo

    # -- queries -----------------------------------------------------------

    @property
    def totals(self) -> ResourceVector:
        """Cumulative usage integrals (e.g. CPU-seconds) since creation."""
        return ResourceVector.from_array(self._integral)

    def cpu_seconds(self) -> float:
        """Total CPU-seconds consumed (the ``cpuacct.usage`` analogue)."""
        return float(self._integral[ResourceType.CPU.index])

    def mean_usage_since(self, t_start: float, t_end: float) -> ResourceVector:
        """Average usage over ``[t_start, t_end]``.

        Requires checkpoints at (or integration up to) both endpoints; the
        worker checkpoints at every settlement, so monitor intervals always
        align.  Falls back to linear interpolation between the two nearest
        checkpoints for robustness.
        """
        if t_end <= t_start:
            raise ContainerError(
                f"empty usage window [{t_start!r}, {t_end!r}]"
            )
        start_integral = self._integral_at(t_start)
        end_integral = self._integral_at(t_end)
        mean = (end_integral - start_integral) / (t_end - t_start)
        return ResourceVector.from_array(mean)

    def window_between(self, t_start: float, t_end: float) -> UsageWindow:
        """Convenience wrapper returning a :class:`UsageWindow`."""
        return UsageWindow(t_start, t_end, self.mean_usage_since(t_start, t_end))

    def window_mean_cached(self, t_start: float, t_end: float) -> np.ndarray:
        """Mean-usage row over ``[t_start, t_end]`` via the snapshot memo.

        The observation-bus hot path: identical arithmetic to
        :meth:`mean_usage_since`, but integral snapshots are memoized by
        exact query time so concurrent observers (and each observer's
        next window, whose start is this window's end) share one
        computation.  Returns the raw 4-vector; callers wrap it in a
        :class:`~repro.containers.spec.ResourceVector` as needed.
        """
        if t_end <= t_start:
            raise ContainerError(
                f"empty usage window [{t_start!r}, {t_end!r}]"
            )
        memo = self._memo
        if len(memo) > _MEMO_CAP:
            # Without pruning (e.g. rebalance runs keep full history) the
            # memo would otherwise grow one snapshot per tick for the
            # whole run.  A deterministic reset is safe: every entry can
            # be recomputed from the (unpruned-above-floor) checkpoints.
            memo.clear()
        start = memo.get(t_start)
        if start is None:
            start = self._integral_at(t_start)
            start.flags.writeable = False
            memo[t_start] = start
        end = memo.get(t_end)
        if end is None:
            end = self._integral_at(t_end)
            end.flags.writeable = False
            memo[t_end] = end
        return (end - start) / (t_end - t_start)

    def _integral_at(self, t: float) -> np.ndarray:
        """Counter values at time *t* (interpolating between checkpoints).

        Always returns a **fresh array** the caller owns — never a view
        of the live counters or the checkpoint buffers, so mutating the
        result cannot corrupt accounting.
        """
        self.window_queries += 1
        lo, n = self._lo, self._n
        times = self._cp_t
        if t <= times[lo]:
            if self._pruned and t < times[lo]:
                raise ContainerError(
                    f"window start {t!r} predates pruned history "
                    f"(floor {float(times[lo])!r})"
                )
            return self._cp_v[lo].copy()
        if t >= self.last_update:
            return self._integral.copy()
        idx = lo + int(np.searchsorted(times[lo:n], t, side="right")) - 1
        t0, v0 = times[idx], self._cp_v[idx]
        if idx + 1 < n:
            t1, v1 = times[idx + 1], self._cp_v[idx + 1]
        else:
            t1, v1 = self.last_update, self._integral
        if t1 <= t0:
            return v1.copy()
        frac = (t - t0) / (t1 - t0)
        return v0 + (v1 - v0) * frac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CgroupAccount(cpu_s={self.cpu_seconds():.3f}, "
            f"updated={self.last_update:.3f}, "
            f"checkpoints={self.checkpoint_count})"
        )
