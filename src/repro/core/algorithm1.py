"""Algorithm 1 — Dynamic Resource Management for containers on a worker.

A faithful transcription of the paper's pseudocode, structured as a pure
function: it takes the current measurements, list state and configuration,
and returns the limit updates plus the back-off decision.  Keeping it pure
makes the exact decision logic unit-testable without a simulator.

Pseudocode ↔ implementation map
-------------------------------
=====  =======================================================
Lines  Here
=====  =======================================================
2–13   :func:`_classify` — list transitions driven by ``G < α``
14–17  the *all-CL* branch: limits 1, ``itval ×= 2``
18–26  share assignment ``G_i / Σ G`` with WL freeze and CL floor
=====  =======================================================

Interpretation notes (DESIGN.md §2): the α comparison uses peak-relative
growth; fresh containers (fewer than ``min_samples`` samples) stay in NL
at limit 1; the share denominator sums raw ``G`` over all measured
containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import FlowConConfig
from repro.core.lists import ContainerLists, ListName
from repro.core.monitor import Measurement

__all__ = ["Algorithm1Result", "run_algorithm1"]


@dataclass(frozen=True)
class Algorithm1Result:
    """Outcome of one Algorithm 1 execution.

    Attributes
    ----------
    limit_updates:
        ``cid → new CPU limit`` for every container whose limit should
        change (unchanged containers are omitted).
    all_completing:
        Line 14 fired: every container is in CL.
    double_interval:
        Line 17 fired: the executor should double ``itval``.
    classifications:
        Post-run list membership per measured cid (for traces/tests).
    """

    limit_updates: dict[int, float] = field(default_factory=dict)
    all_completing: bool = False
    double_interval: bool = False
    classifications: dict[int, ListName] = field(default_factory=dict)


def _classify(
    measurements: list[Measurement],
    lists: ContainerLists,
    config: FlowConConfig,
    time: float,
) -> None:
    """Lines 2–13: move each container between NL/WL/CL."""
    for m in measurements:
        current = lists.where(m.cid)
        if current is None:
            # Not yet tracked (e.g. listeners disabled): enters as new.
            lists.place(m.cid, ListName.NL, time=time)
            current = ListName.NL
        if m.n_samples < config.min_samples:
            # Fresh container: no growth history yet, stays in NL.
            lists.place(m.cid, ListName.NL, time=time)
            continue
        below = m.relative_growth < config.alpha
        if below and current is ListName.NL:
            lists.place(m.cid, ListName.WL, time=time)  # lines 4–6
        elif below and current is ListName.WL:
            lists.place(m.cid, ListName.CL, time=time)  # lines 7–9
        elif not below:
            lists.place(m.cid, ListName.NL, time=time)  # lines 10–13
        # (below and current is CL) → stays in CL.


def run_algorithm1(
    measurements: list[Measurement],
    lists: ContainerLists,
    config: FlowConConfig,
    *,
    time: float = 0.0,
) -> Algorithm1Result:
    """Execute Algorithm 1 once.

    Parameters
    ----------
    measurements:
        Fresh output of :meth:`ContainerMonitor.measure` for every running
        container on the worker.
    lists:
        The worker's NL/WL/CL state; mutated in place (classification is
        stateful across runs by design — WL means "seen below α once").
    config:
        FlowCon parameters (α, β, back-off).
    time:
        Current simulation time, recorded on list transitions.

    Returns
    -------
    Algorithm1Result
        Limit updates to apply and the back-off decision.
    """
    if not measurements:
        return Algorithm1Result()

    _classify(measurements, lists, config, time)
    by_cid = {m.cid: m for m in measurements}
    classifications = {m.cid: lists.where(m.cid) for m in measurements}

    # Lines 14–17: every container completing ⇒ free competition + back-off.
    measured_all_cl = all(
        classifications[m.cid] is ListName.CL for m in measurements
    )
    if measured_all_cl:
        updates = {m.cid: 1.0 for m in measurements}
        return Algorithm1Result(
            limit_updates=updates,
            all_completing=True,
            double_interval=config.backoff_enabled,
            classifications=classifications,
        )

    # Lines 18–26: growth-proportional shares.
    #
    # The share denominator uses *peak-relative* growth, not raw G: raw
    # growth efficiencies are incomparable across evaluation functions
    # (a reconstruction loss spans hundreds of units, a cross entropy a
    # couple), and raw G/ΣG would hand nearly the whole node to whichever
    # job happens to train the largest-scale metric — the opposite of the
    # behaviour the paper describes and plots (Fig. 7: converged VAE at
    # 0.25, young MNIST near 1).  Peak-relative G preserves the formula's
    # intent — shares proportional to how much useful growth each job
    # still shows — on a scale-free footing.  See DESIGN.md §2 note 1.
    classified = [m for m in measurements if m.n_samples >= config.min_samples]
    total_growth = sum(m.relative_growth for m in classified)
    n = len(measurements)
    floor = (1.0 / (config.beta * n)) if config.beta is not None else None

    updates: dict[int, float] = {}
    for m in measurements:
        where = classifications[m.cid]
        if where is ListName.WL:
            continue  # line 24: WL limits remain unchanged
        if m.n_samples < config.min_samples:
            updates[m.cid] = 1.0  # fresh container: full limit (§5.3)
            continue
        if where is ListName.NL and config.nl_full_limit:
            # Line 26's intent per the prose ("Allocate more resources to
            # containers in the NL") and per §5.3's observed behaviour
            # (young jobs run at limit 1 in Fig. 7): NL members compete at
            # the full limit.  Set ``nl_full_limit=False`` for the literal
            # G-proportional reading of line 26 (ablation).
            updates[m.cid] = 1.0
            continue
        if total_growth <= 0.0:
            # No container shows measurable growth and not all are in CL
            # (e.g. all fresh/warming): fall back to free competition.
            updates[m.cid] = 1.0
            continue
        share = m.relative_growth / total_growth  # lines 21 / 26
        if where is ListName.CL and floor is not None:
            share = max(share, floor)  # line 22
        updates[m.cid] = min(1.0, max(share, 1e-4))

    return Algorithm1Result(
        limit_updates=updates,
        all_completing=False,
        double_interval=False,
        classifications=classifications,
    )
