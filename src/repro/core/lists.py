"""The NL / WL / CL container categorization (§4.2).

Algorithm 1 sorts every active container into exactly one of three lists:

* **NL — New List**: "young and quickly growing";
* **WL — Watching List**: "near convergence" (first sighting below α);
* **CL — Completing List**: "converging and growing slowly" (second
  sighting below α).

:class:`ContainerLists` owns the membership sets and enforces the
at-most-one-list invariant as a hard guarantee — the paper's pseudocode
maintains it implicitly via paired remove/insert calls, and a silent
violation would corrupt every later share computation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ListMembershipError

__all__ = ["ListName", "ListTransition", "ContainerLists"]


class ListName(enum.Enum):
    """The three categories of Algorithm 1."""

    NL = "NL"
    WL = "WL"
    CL = "CL"


@dataclass(frozen=True)
class ListTransition:
    """A recorded membership change (for traces and tests)."""

    time: float
    cid: int
    source: ListName | None
    target: ListName | None


class ContainerLists:
    """Membership of containers in NL/WL/CL with invariant checking."""

    def __init__(self) -> None:
        self._members: dict[ListName, set[int]] = {name: set() for name in ListName}
        self._where: dict[int, ListName] = {}
        self.transitions: list[ListTransition] = []

    # -- mutation ----------------------------------------------------------------

    def place(self, cid: int, target: ListName, *, time: float = 0.0) -> None:
        """Move *cid* into *target*, removing it from any other list."""
        source = self._where.get(cid)
        if source is target:
            return
        if source is not None:
            self._members[source].discard(cid)
        self._members[target].add(cid)
        self._where[cid] = target
        self.transitions.append(ListTransition(time, cid, source, target))
        self._check_invariant(cid)

    def remove(self, cid: int, *, time: float = 0.0) -> None:
        """Remove *cid* from whichever list holds it (Algorithm 2 lines
        12–14 issue removals against all three; this is the idempotent
        equivalent)."""
        source = self._where.pop(cid, None)
        if source is None:
            return
        self._members[source].discard(cid)
        self.transitions.append(ListTransition(time, cid, source, None))

    def clear(self) -> None:
        """Empty all lists (used when a policy detaches)."""
        for members in self._members.values():
            members.clear()
        self._where.clear()

    # -- queries ------------------------------------------------------------------

    def where(self, cid: int) -> ListName | None:
        """Which list holds *cid* (``None`` if untracked)."""
        return self._where.get(cid)

    def members(self, name: ListName) -> set[int]:
        """A copy of one list's membership."""
        return set(self._members[name])

    def tracked(self) -> set[int]:
        """All containers currently in any list."""
        return set(self._where)

    def counts(self) -> dict[ListName, int]:
        """Sizes of the three lists."""
        return {name: len(members) for name, members in self._members.items()}

    def all_completing(self) -> bool:
        """Algorithm 1 line 14: is every tracked container in CL?

        Vacuously false when nothing is tracked (an empty worker has
        nothing to back off from).
        """
        return bool(self._where) and all(
            name is ListName.CL for name in self._where.values()
        )

    def in_list(self, cid: int, name: ListName) -> bool:
        """Membership test."""
        return cid in self._members[name]

    # -- internals -------------------------------------------------------------------

    def _check_invariant(self, cid: int) -> None:
        holding = [name for name, members in self._members.items() if cid in members]
        if len(holding) > 1:
            raise ListMembershipError(
                f"container {cid} is in multiple lists: {[n.value for n in holding]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {name.value: len(m) for name, m in self._members.items()}
        return f"ContainerLists({counts})"
