"""FlowCon's core: the paper's primary contribution.

The modules here implement §3–§4 of the paper directly:

* :mod:`~repro.core.efficiency` — Eq. 1 (progress score) and Eq. 2 (growth
  efficiency) with per-container history and peak-relative normalization.
* :mod:`~repro.core.monitor` — the Container Monitor (§3.2.1).
* :mod:`~repro.core.lists` — the NL / WL / CL categorization (§4.2).
* :mod:`~repro.core.algorithm1` — Algorithm 1, dynamic resource management.
* :mod:`~repro.core.worker_monitor` — the Worker Monitor with its New-Cons
  and Finished-Cons listeners (§3.2.2).
* :mod:`~repro.core.algorithm2` — Algorithm 2, the listener workflow (§4.3).
* :mod:`~repro.core.executor` — the Executor (§3.2.3): periodic Algorithm 1
  runs, exponential back-off, listener interrupts.
* :mod:`~repro.core.policy` — :class:`SchedulingPolicy` interface and the
  assembled :class:`FlowConPolicy`.
"""

from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.algorithm2 import Listener, ListenerReport
from repro.core.efficiency import EfficiencyHistory, EfficiencySample, GrowthTracker
from repro.core.executor import Executor
from repro.core.lists import ContainerLists, ListName
from repro.core.monitor import ContainerMonitor, Measurement
from repro.core.policy import FlowConPolicy, SchedulingPolicy
from repro.core.worker_monitor import WorkerMonitor

__all__ = [
    "Algorithm1Result",
    "ContainerLists",
    "ContainerMonitor",
    "EfficiencyHistory",
    "EfficiencySample",
    "Executor",
    "FlowConPolicy",
    "GrowthTracker",
    "Listener",
    "ListenerReport",
    "ListName",
    "Measurement",
    "SchedulingPolicy",
    "WorkerMonitor",
    "run_algorithm1",
]
