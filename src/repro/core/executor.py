"""The Executor (§3.2.3).

"The Executor is a key module that collects and analyzes the evaluation
functions and resource usage data on the worker.  Based on the initial
interval, it calculates the required parameters [...] and execute[s] the
algorithm to update the resource configuration for each container.  Upon
receiving a report from one of the listeners, the Executor will interrupt
the current interval and start running the algorithm."

Responsibilities implemented here:

* schedule Algorithm 1 every ``itval`` seconds (``SCHEDULER_TICK``);
* apply the resulting ``docker update`` batch through the worker;
* exponential back-off — double ``itval`` when Algorithm 1 reports
  *all-completing* (line 17), capped at ``max_itval``;
* listener interrupts — on a pool-change report, reset ``itval`` to its
  initial value, run Algorithm 1 immediately, and restart the tick timer
  (Algorithm 2 lines 8–9 / 16–17);
* listener scheduling itself — event-driven (subscribed to worker launch
  and exit hooks) or periodic polling, per configuration.
"""

from __future__ import annotations

from repro.cluster.worker import Worker
from repro.config import FlowConConfig
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.algorithm2 import Listener
from repro.core.lists import ContainerLists
from repro.core.monitor import ContainerMonitor
from repro.core.worker_monitor import WorkerMonitor
from repro.simcore.equeue import EventHandle
from repro.simcore.events import (
    PRIORITY_LISTENER,
    PRIORITY_TICK,
    Event,
    EventKind,
)

__all__ = ["Executor"]


class Executor:
    """Drives Algorithm 1 + Algorithm 2 for one worker.

    Construct, then call :meth:`start` once the simulation is assembled;
    call :meth:`stop` to detach cleanly (used by experiment teardown).
    """

    def __init__(self, worker: Worker, config: FlowConConfig) -> None:
        self.worker = worker
        self.sim = worker.sim
        self.config = config
        self.lists = ContainerLists()
        self.monitor = ContainerMonitor(worker, config.resource)
        self.worker_monitor = WorkerMonitor(worker)
        self.listener = Listener(self.worker_monitor, self.lists)

        #: Current (possibly backed-off) interval.
        self.itval = config.itval
        self.runs = 0
        self.interrupts = 0
        self.backoffs = 0
        self._tick_handle: EventHandle | None = None
        self._poll_handle: EventHandle | None = None
        self._started = False
        self._hooks_installed = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic scheduling and listener tracking."""
        if self._started:
            return
        self._started = True
        self.itval = self.config.itval
        # Baseline the worker monitor on the current pool so pre-existing
        # containers are treated as arrivals on the first listener step.
        if self.config.listeners_enabled:
            if self.config.event_driven_listeners:
                self._install_hooks()
            else:
                self._schedule_poll()
        self._schedule_tick()

    def stop(self) -> None:
        """Cancel scheduled work (listener hooks stay; they no-op)."""
        self._started = False
        if self._tick_handle is not None:
            self.sim.cancel(self._tick_handle)
            self._tick_handle = None
        if self._poll_handle is not None:
            self.sim.cancel(self._poll_handle)
            self._poll_handle = None

    # -- periodic Algorithm 1 -----------------------------------------------------

    def _schedule_tick(self) -> None:
        if self._tick_handle is not None:
            self.sim.cancel(self._tick_handle)
        self._tick_handle = self.sim.schedule_in(
            self.itval,
            self._on_tick,
            kind=EventKind.SCHEDULER_TICK,
            priority=PRIORITY_TICK,
        )

    def _on_tick(self, _event: Event) -> None:
        if not self._started:
            return
        self._tick_handle = None
        self.run_algorithm(reason="interval")
        self._schedule_tick()

    def run_algorithm(self, *, reason: str) -> Algorithm1Result:
        """Measure, run Algorithm 1, apply updates, manage back-off."""
        measurements = self.monitor.measure()
        result = run_algorithm1(
            measurements, self.lists, self.config, time=self.sim.now
        )
        self.runs += 1
        if result.limit_updates:
            self.worker.batch_update(result.limit_updates)
        if result.double_interval:
            new_itval = min(
                self.itval * self.config.backoff_factor, self.config.max_itval
            )
            if new_itval > self.itval:
                self.backoffs += 1
                if self.sim.trace_enabled:
                    self.sim.trace(
                        "core.backoff",
                        f"all containers completing; itval {self.itval:g} → "
                        f"{new_itval:g}",
                    )
            self.itval = new_itval
        if self.sim.trace_enabled:
            self.sim.trace(
                "core.algorithm1",
                f"run #{self.runs} ({reason}): "
                f"{len(result.limit_updates)} updates, "
                f"lists={ {k.value: v for k, v in self.lists.counts().items()} }",
                updates=dict(result.limit_updates),
            )
        return result

    # -- listeners ---------------------------------------------------------------------

    def _install_hooks(self) -> None:
        """Event-driven mode: react to pool changes instantly."""
        if self._hooks_installed:
            return
        self._hooks_installed = True
        self.worker.launch_hooks.append(lambda _c: self._listener_step())
        self.worker.exit_hooks.append(lambda _c: self._listener_step())

    def _schedule_poll(self) -> None:
        if self._poll_handle is not None:
            self.sim.cancel(self._poll_handle)
        self._poll_handle = self.sim.schedule_in(
            self.config.listener_poll_interval,
            self._on_poll,
            kind=EventKind.LISTENER_POLL,
            priority=PRIORITY_LISTENER,
        )

    def _on_poll(self, _event: Event) -> None:
        if not self._started:
            return
        self._poll_handle = None
        self._listener_step()
        self._schedule_poll()

    def _listener_step(self) -> None:
        """One Algorithm 2 iteration; interrupt on pool change."""
        if not self._started:
            return
        report = self.listener.step()
        if report.interrupt:
            self.interrupts += 1
            # Lines 8 / 16: reset itval, breaking the back-off.
            self.itval = self.config.itval
            for cid in report.completions:
                self.monitor.forget(cid)
            self.sim.trace(
                "core.listener",
                f"pool change (+{len(report.arrivals)}/-"
                f"{len(report.completions)}); interrupting interval",
            )
            # Lines 9 / 17: run Algorithm 1 now and restart the timer.
            self.run_algorithm(reason="listener")
            self._schedule_tick()
