"""The Worker Monitor (§3.2.2).

"A worker monitor measures the container pool on the worker.  There are
two listeners, one called New Cons and the other one called Finished Cons.
[...] The New Cons listener tracks the incoming containers and assigns the
appropriate resources to them.  The Finished Cons listener monitors the
containers with finished jobs and releases their resources to the system."

:class:`WorkerMonitor` owns the two listeners and the last-observed pool
snapshot; :mod:`~repro.core.algorithm2` implements the iteration logic
that consumes its observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.pool import PoolDelta
from repro.cluster.worker import Worker

__all__ = ["PoolObservation", "WorkerMonitor"]


@dataclass(frozen=True)
class PoolObservation:
    """One worker-monitor reading of the container pool."""

    time: float
    iteration: int
    #: Algorithm 2's ``T(i)``.
    count: int
    delta: PoolDelta


class WorkerMonitor:
    """Tracks pool membership changes between listener iterations."""

    def __init__(self, worker: Worker) -> None:
        self.worker = worker
        self._known_cids: set[int] = set()
        self._iteration = 0

    @property
    def iteration(self) -> int:
        """Number of observations taken so far (Algorithm 2's ``i``)."""
        return self._iteration

    def observe(self) -> PoolObservation:
        """Take one reading: current count and delta vs. the previous one.

        Corresponds to Algorithm 2 lines 2–4: fetch ``T(i)`` and compute
        ``c = T(i) − T(i−1)``; additionally identifies *which* containers
        arrived/finished (the pseudocode's "find out the cid" steps).
        """
        pool = self.worker.pool
        delta = pool.delta_since(self._known_cids)
        observation = PoolObservation(
            time=self.worker.sim.now,
            iteration=self._iteration,
            count=pool.count(),
            delta=delta,
        )
        self._known_cids = pool.cids()
        self._iteration += 1
        return observation

    def reset(self) -> None:
        """Forget prior observations (fresh attach)."""
        self._known_cids = set()
        self._iteration = 0
