"""Algorithm 2 — the listener workflow (§4.3).

The listeners close FlowCon's reaction-latency gap: Algorithm 1 only runs
every ``itval`` seconds, but "there is latency between the time that a
worker's state changes (e.g., a new container is initiated) and the point
that it can reallocate resources".  Algorithm 2 therefore watches the pool
continuously and, on any membership change,

* **arrival** (``c > 0``, lines 5–9): put the new containers into NL,
  reset ``itval`` to its initial value (breaking the exponential
  back-off), and immediately run Algorithm 1;
* **completion** (``c < 0``, lines 10–17): remove the finished containers
  from whichever list held them, release their resources, reset ``itval``
  and immediately run Algorithm 1.

:class:`Listener` implements one poll iteration as a pure-ish step over a
:class:`~repro.core.worker_monitor.WorkerMonitor` observation; the
:class:`~repro.core.executor.Executor` wires its reports to actual
Algorithm 1 interrupts, in both event-driven and polling modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lists import ContainerLists, ListName
from repro.core.worker_monitor import PoolObservation, WorkerMonitor

__all__ = ["ListenerReport", "Listener"]


@dataclass(frozen=True)
class ListenerReport:
    """What one listener iteration decided.

    Attributes
    ----------
    time / iteration:
        When the iteration ran.
    arrivals / completions:
        Container ids that entered / left the pool since last iteration.
    interrupt:
        ``True`` when Algorithm 1 must run now with ``itval`` reset —
        i.e. the pool changed.
    """

    time: float
    iteration: int
    arrivals: tuple[int, ...] = ()
    completions: tuple[int, ...] = ()
    interrupt: bool = False


class Listener:
    """The New-Cons + Finished-Cons listener pair for one worker."""

    def __init__(self, monitor: WorkerMonitor, lists: ContainerLists) -> None:
        self.monitor = monitor
        self.lists = lists
        self.reports: list[ListenerReport] = []

    def step(self) -> ListenerReport:
        """Run one listener iteration (Algorithm 2 lines 2–17)."""
        obs: PoolObservation = self.monitor.observe()
        report = self._process(obs)
        self.reports.append(report)
        return report

    def _process(self, obs: PoolObservation) -> ListenerReport:
        added = obs.delta.added
        removed = obs.delta.removed

        # Lines 5–7: new containers → NL.
        for cid in added:
            self.lists.place(cid, ListName.NL, time=obs.time)

        # Lines 10–15: finished containers → removed from their lists
        # ("NL.remove; WL.remove; CL.remove; Release_resource").
        for cid in removed:
            self.lists.remove(cid, time=obs.time)

        return ListenerReport(
            time=obs.time,
            iteration=obs.iteration,
            arrivals=added,
            completions=removed,
            interrupt=bool(added or removed),
        )
