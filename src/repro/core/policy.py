"""Scheduling-policy interface and the assembled FlowCon policy.

A :class:`SchedulingPolicy` is anything that can attach to a worker and
manage its containers' resource limits over a run.  The experiment runner
(:mod:`repro.experiments.runner`) is policy-agnostic: FlowCon, the NA
baseline, static partitioning and the SLAQ-like scheduler all plug in
through this interface, which is what makes the paper's FlowCon-vs-NA
comparisons (and our extra baselines) apples-to-apples.
"""

from __future__ import annotations

import abc

from repro.cluster.worker import Worker
from repro.config import FlowConConfig
from repro.core.executor import Executor

__all__ = ["SchedulingPolicy", "FlowConPolicy"]


class SchedulingPolicy(abc.ABC):
    """Interface every resource-management policy implements."""

    #: Display name used in reports ("FlowCon-5%-20", "NA", ...).
    name: str = "policy"

    @abc.abstractmethod
    def attach(self, worker: Worker) -> None:
        """Install the policy on *worker* before the simulation starts."""

    def detach(self) -> None:
        """Tear down scheduled work (optional)."""

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


class FlowConPolicy(SchedulingPolicy):
    """The paper's system: Container/Worker monitors + Executor.

    Parameters
    ----------
    config:
        FlowCon parameters; defaults to the paper's headline α=5 %,
        itval=20 s configuration.
    """

    def __init__(self, config: FlowConConfig | None = None) -> None:
        self.config = config if config is not None else FlowConConfig()
        self.executor: Executor | None = None
        self.name = self.config.describe()

    def attach(self, worker: Worker) -> None:
        """Create and start an Executor bound to *worker*."""
        self.executor = Executor(worker, self.config)
        self.executor.start()

    def detach(self) -> None:
        """Stop the executor's scheduled events."""
        if self.executor is not None:
            self.executor.stop()

    def describe(self) -> str:
        cfg = self.config
        return (
            f"FlowCon(alpha={cfg.alpha:.0%}, itval={cfg.itval:g}s, "
            f"beta={cfg.beta}, backoff={cfg.backoff_enabled}, "
            f"listeners={cfg.listeners_enabled})"
        )
