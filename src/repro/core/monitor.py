"""The Container Monitor (§3.2.1).

"A container monitor in FlowCon keeps track of the ML/DL jobs inside each
container and collects the progress of each of the jobs in terms of
different evaluation functions that are defined by the jobs themselves.
Besides that, it collects the resource usage of each container."

:class:`ContainerMonitor` samples every running container through the
worker's :class:`~repro.cluster.obsbus.ObservationBus` — the shared
``docker stats`` pass all observers read — feeds readings into the
:class:`~repro.core.efficiency.GrowthTracker`, and hands the Executor a
per-container :class:`Measurement` bundle.  The monitor's sampling
*windows* stay private (a :class:`~repro.cluster.obsbus.BusSampler`),
so its measurement intervals are untouched by other observers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.worker import Worker
from repro.containers.spec import ResourceType, ResourceVector
from repro.core.efficiency import GrowthTracker

__all__ = ["Measurement", "ContainerMonitor"]


@dataclass(frozen=True)
class Measurement:
    """One container's state as Algorithm 1 consumes it.

    Attributes
    ----------
    cid / name:
        Container identity.
    growth:
        Latest raw growth efficiency ``G`` (Eq. 2).
    relative_growth:
        Peak-relative ``G`` used for the α comparison.
    n_samples:
        Complete samples available; below ``min_samples`` the container
        is treated as fresh (NL, limit 1).
    eval_value:
        Last evaluation-function reading.
    """

    cid: int
    name: str
    growth: float
    relative_growth: float
    n_samples: int
    eval_value: float | None


class ContainerMonitor:
    """Watches one worker's running containers.

    Parameters
    ----------
    worker:
        The worker whose pool is monitored.
    resource:
        Resource dimension used for Eq. 2 (CPU in the paper's evaluation).
    """

    def __init__(
        self,
        worker: Worker,
        resource: ResourceType = ResourceType.CPU,
    ) -> None:
        self.worker = worker
        self.tracker = GrowthTracker(resource)
        self._sampler = worker.obsbus.sampler()

    def measure(self) -> list[Measurement]:
        """Sample every running container and return fresh measurements.

        Sampling settles the worker first (so cgroup counters include the
        interval just ended), exactly like ``docker stats`` observing the
        kernel's up-to-date accounting; the settle, the ``E(t)`` reading
        and the integral snapshots come from the shared observation-bus
        pass for this instant.
        """
        measurements: list[Measurement] = []
        for obs in self.worker.obsbus.observe():
            now = obs.time
            history = self.tracker.history(obs.cid)
            stats = self._sampler.sample(obs)
            if stats is not None and stats.eval_value is not None:
                history.observe(now, stats.eval_value, stats.mean_usage)
            elif not history.seeded:
                # A just-launched container has no stats window yet; seed
                # its baseline E(t₀) immediately so the very next interval
                # already yields a complete (two-point) Eq. 1 sample
                # instead of burning a whole interval on the baseline.
                if obs.eval_value is not None:
                    history.observe(now, obs.eval_value, ResourceVector())
            measurements.append(
                Measurement(
                    cid=obs.cid,
                    name=obs.name,
                    growth=history.latest_growth(),
                    relative_growth=history.relative_growth(),
                    n_samples=history.n_samples,
                    eval_value=(
                        stats.eval_value if stats is not None else None
                    ),
                )
            )
        return measurements

    def forget(self, cid: int) -> None:
        """Release per-container monitoring state after exit."""
        self.tracker.forget(cid)
