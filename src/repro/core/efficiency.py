"""Progress score (Eq. 1) and growth efficiency (Eq. 2).

The math is deliberately tiny — the value of this module is in the exact
definitions and the per-container bookkeeping:

* ``P(t_i) = |E(t_i) − E(t_{i−1})| / (t_i − t_{i−1})`` — per-second
  progress of the evaluation function over a measurement interval.
* ``G_r(t_i) = P(t_i) / R_r(t_i)`` — progress per unit of resource ``r``
  actually consumed during the interval.

Threshold normalization
-----------------------
The paper compares ``G`` against percentages (``α ∈ 1%…15%``) although
``G`` carries model-dependent units (the raw traces in Figs. 13 and 14
differ by an order of magnitude).  Following DESIGN.md interpretation
note 1, classification uses the **peak-relative** value
``G(t_i) / max_{s ≤ t_i} G(s)``: every job starts at its efficiency peak
and decays, so "below α of peak" is a scale-free convergence signal.
Raw ``G`` keeps feeding the share formula ``G_i / Σ G`` of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.spec import ResourceType, ResourceVector
from repro.errors import MetricsError

__all__ = [
    "progress_score",
    "growth_efficiency",
    "EfficiencySample",
    "EfficiencyHistory",
    "GrowthTracker",
]

#: Resource usage below this is treated as "no measurable consumption";
#: G is reported as 0 instead of exploding (a paused container makes no
#: progress *and* uses nothing — its efficiency is not infinite).
_USAGE_EPS = 1e-6


def progress_score(e_prev: float, e_curr: float, dt: float) -> float:
    """Eq. 1: absolute evaluation-function change per second.

    Direction-agnostic (``|ΔE|``): losses falling and accuracies rising
    both count as progress, which is how the paper supports metric-diverse
    zoos (Table 1).
    """
    if dt <= 0:
        raise MetricsError(f"progress interval must be positive, got {dt!r}")
    return abs(e_curr - e_prev) / dt


def growth_efficiency(p_score: float, usage: float) -> float:
    """Eq. 2: progress per unit of consumed resource.

    ``usage`` is the *average* consumption over the same interval the
    progress score was computed on (``R_{cid,r}(t_i)``).
    """
    if p_score < 0:
        raise MetricsError(f"progress score cannot be negative: {p_score!r}")
    if usage < 0:
        raise MetricsError(f"usage cannot be negative: {usage!r}")
    if usage < _USAGE_EPS:
        return 0.0
    return p_score / usage


class EfficiencySample:
    """One monitor observation of one container.

    A plain ``__slots__`` record (immutable by convention) — one is
    created per complete Eq. 1 sample on the sampling hot path.
    ``usage`` is the mean usage over ``(prev_time, time]`` for the
    tracked resource.
    """

    __slots__ = ("time", "eval_value", "usage", "progress", "growth")

    def __init__(
        self,
        time: float,
        eval_value: float,
        usage: float,
        progress: float,
        growth: float,
    ) -> None:
        self.time = time
        self.eval_value = eval_value
        self.usage = usage
        self.progress = progress
        self.growth = growth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EfficiencySample(t={self.time:.3f}, E={self.eval_value:.4g}, "
            f"P={self.progress:.4g}, G={self.growth:.4g})"
        )


@dataclass
class EfficiencyHistory:
    """Growth-efficiency history of a single container."""

    cid: int
    resource: ResourceType
    samples: list[EfficiencySample] = field(default_factory=list)
    peak_growth: float = 0.0
    _last_eval: float | None = None
    _last_time: float | None = None

    def __post_init__(self) -> None:
        # Attribute name of the tracked resource on a ResourceVector,
        # resolved once (enum property access is measurable at sampling
        # rate).
        self._res_name = self.resource.value

    def observe(
        self,
        time: float,
        eval_value: float,
        mean_usage: ResourceVector,
    ) -> EfficiencySample | None:
        """Fold one monitor reading into the history.

        The very first reading only seeds the baseline and yields no
        sample (Eq. 1 needs two points).  Readings at a non-increasing
        time are ignored.
        """
        last_time = self._last_time
        if last_time is None:
            self._last_time = time
            self._last_eval = eval_value
            return None
        if time <= last_time:
            return None
        # Inline Eq. 1 / Eq. 2 — the validated forms live in
        # progress_score / growth_efficiency; here dt > 0 and |ΔE| >= 0
        # hold by construction.
        dt = time - last_time
        p = abs(eval_value - self._last_eval) / dt
        usage = getattr(mean_usage, self._res_name)
        g = p / usage if usage >= _USAGE_EPS else 0.0
        sample = EfficiencySample(time, eval_value, usage, p, g)
        self.samples.append(sample)
        if g > self.peak_growth:
            self.peak_growth = g
        self._last_time = time
        self._last_eval = eval_value
        return sample

    # -- queries -----------------------------------------------------------------

    @property
    def seeded(self) -> bool:
        """Whether a baseline reading exists (first Eq. 1 point)."""
        return self._last_time is not None

    @property
    def n_samples(self) -> int:
        """Number of complete (two-point) samples."""
        return len(self.samples)

    def latest(self) -> EfficiencySample | None:
        """Most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def latest_growth(self) -> float:
        """Most recent raw growth efficiency (0.0 before any sample)."""
        sample = self.latest()
        return sample.growth if sample is not None else 0.0

    def relative_growth(self) -> float:
        """Peak-relative growth efficiency in [0, 1].

        Returns 1.0 while no peak has been established (a job that has
        shown no efficiency yet cannot be called converged).
        """
        if self.peak_growth <= 0.0:
            return 1.0
        return self.latest_growth() / self.peak_growth


class GrowthTracker:
    """Growth-efficiency histories for a whole container pool."""

    def __init__(self, resource: ResourceType = ResourceType.CPU) -> None:
        self.resource = resource
        self._histories: dict[int, EfficiencyHistory] = {}

    def history(self, cid: int) -> EfficiencyHistory:
        """History for *cid*, created on first touch."""
        hist = self._histories.get(cid)
        if hist is None:
            hist = EfficiencyHistory(cid=cid, resource=self.resource)
            self._histories[cid] = hist
        return hist

    def observe(
        self,
        cid: int,
        time: float,
        eval_value: float,
        mean_usage: ResourceVector,
    ) -> EfficiencySample | None:
        """Record one reading for *cid*."""
        return self.history(cid).observe(time, eval_value, mean_usage)

    def forget(self, cid: int) -> None:
        """Drop a finished container's history (resource release)."""
        self._histories.pop(cid, None)

    def known_cids(self) -> set[int]:
        """Containers with at least one reading."""
        return set(self._histories)

    def __contains__(self, cid: int) -> bool:
        return cid in self._histories
