"""Named, independently-seeded random streams.

Reproducibility discipline: *all* stochastic behaviour in the library
(random job arrival times, contention jitter, workload parameter noise)
draws from a named stream obtained here.  Streams are derived from one root
seed via ``numpy`` ``SeedSequence.spawn``-style keying, so

* the same ``(root_seed, name)`` pair always yields the same stream, and
* adding a new consumer never perturbs the draws seen by existing ones —
  experiments stay comparable as the library grows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)``.

    Uses BLAKE2b over the root seed and the stream name, which is stable
    across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A factory and cache of named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("jitter")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._root_seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._root_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *newly reset* generator for *name* (drops cached state)."""
        self._streams.pop(name, None)
        return self.stream(name)

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose root seed derives from *name*.

        Useful for giving each experiment repetition its own independent
        but reproducible universe of streams.
        """
        return RngRegistry(derive_seed(self._root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngRegistry(seed={self._root_seed}, "
            f"streams={sorted(self._streams)})"
        )
