"""Structured in-memory simulation traces.

The tracer is the simulator's flight recorder: every interesting state
transition (container started, limit updated, list transition, back-off
doubled, ...) is appended as a :class:`TraceRecord`.  Tests assert on the
trace; the experiment harness mines it for figures; and it doubles as a
debugging log that can be dumped as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line.

    Attributes
    ----------
    time:
        Simulation time of the occurrence.
    topic:
        Dotted topic string, e.g. ``"runtime.update"`` or ``"core.list_move"``.
    message:
        Human-readable one-liner.
    data:
        Structured payload for programmatic consumers.
    """

    time: float
    topic: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Render as a fixed-width log line."""
        return f"[{self.time:10.3f}] {self.topic:<24} {self.message}"


class Tracer:
    """Append-only trace with topic filtering.

    Parameters
    ----------
    enabled:
        When ``False`` the tracer drops records at the door, making tracing
        zero-cost for large benchmark sweeps.
    max_records:
        Safety valve; beyond this many records the oldest are *not*
        discarded — recording simply stops and :attr:`truncated` is set.
        Losing the tail loudly beats silently unbounded memory.
    """

    def __init__(self, enabled: bool = True, max_records: int = 2_000_000):
        self.enabled = enabled
        self.max_records = int(max_records)
        self.truncated = False
        self._records: list[TraceRecord] = []

    # -- recording ---------------------------------------------------------

    def record(
        self,
        time: float,
        topic: str,
        message: str,
        **data: Any,
    ) -> None:
        """Append one record (no-op when disabled or truncated)."""
        if not self.enabled or self.truncated:
            return
        if len(self._records) >= self.max_records:
            self.truncated = True
            return
        self._records.append(TraceRecord(time, topic, message, data))

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, topic: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered by topic prefix."""
        if topic is None:
            return list(self._records)
        prefix = topic.rstrip(".")
        return [
            r
            for r in self._records
            if r.topic == prefix or r.topic.startswith(prefix + ".")
        ]

    def topics(self) -> set[str]:
        """Distinct topics seen so far."""
        return {r.topic for r in self._records}

    def clear(self) -> None:
        """Drop all records and reset truncation."""
        self._records.clear()
        self.truncated = False

    def dump(self, topic: str | None = None) -> str:
        """Render (a filtered view of) the trace as text."""
        return "\n".join(r.format() for r in self.records(topic))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(enabled={self.enabled}, n={len(self._records)}, "
            f"truncated={self.truncated})"
        )
