"""Binary-heap event queue with lazy cancellation and amortized compaction.

The engine frequently needs to *reschedule* a container's projected exit
event when allocations change (the projected finish time moves).  Removing
an arbitrary element from a binary heap is O(n), so instead we use the
classic *lazy deletion* technique: :meth:`EventQueue.cancel` marks a handle
dead in O(1) and dead events are skipped when popped.

Reschedule-heavy runs (one cancel + one push per allocation change per
container) would otherwise grow a graveyard of dead entries that every
``pop``/``peek`` has to scan past.  The queue therefore tracks its dead
count and *compacts* — rebuilds the heap from the live entries in O(n) —
once dead entries outnumber live ones.  Each dead entry is removed at most
once, so the amortized cost per cancellation stays O(1) and ``pop`` stays
O(log n) on the live size rather than the historical size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import EventQueueError
from repro.simcore.events import Event

__all__ = ["EventHandle", "EventQueue"]

#: Compaction never triggers below this heap size — rebuilding a handful of
#: entries costs more in constant factors than the scan it avoids.
_COMPACT_MIN = 64


@dataclass(slots=True)
class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`.

    Holding a handle allows O(1) cancellation of the scheduled event.
    """

    event: Event
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Mark the underlying event dead (idempotent)."""
        self.cancelled = True

    @property
    def alive(self) -> bool:
        """Whether the event is still eligible to fire."""
        return not self.cancelled


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Determinism comes from :meth:`Event.sort_key`: ties on time are broken
    by priority then by scheduling order, so identical runs replay
    identically.  Compaction preserves this exactly — sort keys are unique,
    so the pop order never depends on the heap's internal arrangement.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], EventHandle]] = []
        self._live = 0
        self._dead = 0

    # -- mutation ----------------------------------------------------------

    def push(self, event: Event) -> EventHandle:
        """Schedule *event*, returning a cancellable handle."""
        handle = EventHandle(event)
        heapq.heappush(
            self._heap, ((event.time, event.priority, event.seq), handle)
        )
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously-pushed event (idempotent, amortized O(1))."""
        if handle.alive:
            handle.cancel()
            self._live -= 1
            self._dead += 1
            self._maybe_compact()

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        EventQueueError
            If the queue holds no live events.
        """
        while self._heap:
            _, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                # Consumed: mark dead so _live never double-counts.
                handle.cancelled = True
                self._live -= 1
                return handle.event
            self._dead -= 1
        raise EventQueueError("pop from an empty event queue")

    def clear(self) -> None:
        """Drop every event, live or dead.

        Outstanding handles are cancelled so that a stale ``cancel()``
        issued after the clear is a no-op instead of corrupting the live
        count (the handle would otherwise still read as alive).
        """
        for _, handle in self._heap:
            handle.cancelled = True
        self._heap.clear()
        self._live = 0
        self._dead = 0

    # -- compaction --------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Rebuild the heap once dead entries outnumber live ones."""
        if self._dead > self._live and len(self._heap) >= _COMPACT_MIN:
            self.compact()

    def compact(self) -> None:
        """Drop all dead entries and re-heapify the survivors (O(n)).

        Safe to call at any time; pop order is unchanged because sort keys
        totally order the live entries.
        """
        if self._dead == 0:
            return
        self._heap = [entry for entry in self._heap if entry[1].alive]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- inspection --------------------------------------------------------

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        self._compact_head()
        if not self._heap:
            return None
        return self._heap[0][1].event.time

    def peek_event(self) -> Event | None:
        """The earliest live event itself, or ``None`` when empty.

        The event stays queued; the engine's same-instant batching
        window uses this to decide whether the head belongs to the batch
        currently being collected without committing to the pop.
        """
        self._compact_head()
        if not self._heap:
            return None
        return self._heap[0][1].event

    def _compact_head(self) -> None:
        """Pop dead entries sitting at the heap root."""
        heap = self._heap
        while heap and not heap[0][1].alive:
            heapq.heappop(heap)
            self._dead -= 1

    def next_time_of(self, kinds) -> float | None:
        """Time of the earliest live event whose kind is in *kinds*.

        A linear scan over the heap (the heap property only orders the
        root, and dead entries are interleaved), so the cost is O(n) per
        call — callers that poll it every step should expect the queue
        to stay small relative to their batch width.  The sharded
        executor uses it once per fused batch to locate the conservative
        lookahead boundary: the next manager-bound event anywhere in the
        queue.  Returns ``None`` when no live event matches.
        """
        best: float | None = None
        for key, handle in self._heap:
            if handle.cancelled or handle.event.kind not in kinds:
                continue
            t = key[0]
            if best is None or t < best:
                best = t
        return best

    def __len__(self) -> int:
        """Number of *live* events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.peek_time()
        return (
            f"EventQueue(live={self._live}, dead={self._dead}, next_t={nxt})"
        )
