"""Binary-heap event queue with lazy cancellation.

The engine frequently needs to *reschedule* a container's projected exit
event when allocations change (the projected finish time moves).  Removing
an arbitrary element from a binary heap is O(n), so instead we use the
classic *lazy deletion* technique: :meth:`EventQueue.cancel` marks a handle
dead in O(1) and dead events are skipped when popped.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import EventQueueError
from repro.simcore.events import Event

__all__ = ["EventHandle", "EventQueue"]


@dataclass
class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`.

    Holding a handle allows O(1) cancellation of the scheduled event.
    """

    event: Event
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Mark the underlying event dead (idempotent)."""
        self.cancelled = True

    @property
    def alive(self) -> bool:
        """Whether the event is still eligible to fire."""
        return not self.cancelled


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Determinism comes from :meth:`Event.sort_key`: ties on time are broken
    by priority then by scheduling order, so identical runs replay
    identically.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], EventHandle]] = []
        self._live = 0

    # -- mutation ----------------------------------------------------------

    def push(self, event: Event) -> EventHandle:
        """Schedule *event*, returning a cancellable handle."""
        handle = EventHandle(event)
        heapq.heappush(self._heap, (event.sort_key(), handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously-pushed event (idempotent)."""
        if handle.alive:
            handle.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        EventQueueError
            If the queue holds no live events.
        """
        while self._heap:
            _, handle = heapq.heappop(self._heap)
            if handle.alive:
                handle.cancel()  # consumed: prevents double-count in _live
                self._live -= 1
                return handle.event
        raise EventQueueError("pop from an empty event queue")

    def clear(self) -> None:
        """Drop every event, live or dead."""
        self._heap.clear()
        self._live = 0

    # -- inspection --------------------------------------------------------

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        self._compact_head()
        if not self._heap:
            return None
        return self._heap[0][1].event.time

    def _compact_head(self) -> None:
        """Pop dead entries sitting at the heap root."""
        while self._heap and not self._heap[0][1].alive:
            heapq.heappop(self._heap)

    def __len__(self) -> int:
        """Number of *live* events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.peek_time()
        return f"EventQueue(live={self._live}, next_t={nxt})"
