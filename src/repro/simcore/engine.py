"""The discrete-event simulation loop.

:class:`Simulator` owns the clock, the event queue, the RNG registry and
the tracer, and exposes a tiny scheduling API.  Higher layers (container
runtime, cluster, FlowCon executor) are plain objects that hold a reference
to the simulator and schedule callbacks on it; there are no coroutines or
threads, which keeps replay fully deterministic.

Design notes
------------
* Time between events is advanced analytically by whoever owns continuous
  state (the :class:`~repro.cluster.worker.Worker` integrates job progress);
  the engine only orders callbacks.
* ``run()`` executes until the queue is exhausted, a time horizon is hit,
  or an event-count safety valve trips (runaway-loop protection: a correct
  simulation of this system needs O(jobs × reconfigurations) events, so an
  enormous count always indicates a bug, not a big workload).
* A *batcher* (:meth:`Simulator.register_batcher`) widens ``step()`` into a
  same-instant batching window for one event kind: every consecutive queued
  event sharing the popped event's ``(time, kind, priority)`` is popped into
  a single list and handed to the batcher in pop order.  The batcher is
  responsible for firing each event (the engine only collects); the fleet
  ticker uses this to coalesce per-worker sampling ticks into one fused
  fleet pass.  ``events_processed`` counts every batched event, so batched
  and unbatched runs agree on the event count exactly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.simcore.clock import SimClock
from repro.simcore.equeue import EventHandle, EventQueue
from repro.simcore.events import Event, EventCallback, EventKind
from repro.simcore.rng import RngRegistry
from repro.simcore.tracing import Tracer

__all__ = ["Simulator"]


class Simulator:
    """Deterministic event loop.

    Parameters
    ----------
    seed:
        Root seed for all random streams (see :class:`RngRegistry`).
    trace:
        Whether to keep a structured trace of the run.
    max_events:
        Hard cap on processed events; exceeded ⇒ :class:`SimulationError`.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        max_events: int = 5_000_000,
    ) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rngs = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        self.max_events = int(max_events)
        self.events_processed = 0
        self._running = False
        self._batchers: dict[EventKind, Callable[[list[Event]], None]] = {}

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    def schedule(
        self,
        time: float,
        callback: EventCallback | None,
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: int = 0,
        payload: Any = None,
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*.

        Scheduling in the past raises :class:`SimulationError` — the system
        being modelled cannot react before it observes.
        """
        now = self.clock.now
        if time < now - 1e-9:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={now!r}"
            )
        event = Event(
            time if time >= now else now, kind, callback, priority, payload
        )
        return self.queue.push(event)

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback | None,
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: int = 0,
        payload: Any = None,
    ) -> EventHandle:
        """Schedule *callback* ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(
            self.clock.now + delay,
            callback,
            kind=kind,
            priority=priority,
            payload=payload,
        )

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        self.queue.cancel(handle)

    # -- batching ----------------------------------------------------------

    def register_batcher(
        self, kind: EventKind, handler: Callable[[list[Event]], None]
    ) -> None:
        """Route same-instant events of *kind* through *handler*.

        Whenever ``step()`` pops an event of *kind*, every consecutive
        queued event with the same ``(time, kind, priority)`` is popped
        along with it and the whole batch (in pop order) is passed to
        *handler*, which must fire each event itself.  A lone event of
        *kind* fires directly without involving the handler — batchers
        only ever see genuine same-instant batches (size ≥ 2), so the
        serial path pays one queue peek and nothing else.  One handler
        per kind; re-registering replaces the previous handler.
        """
        self._batchers[kind] = handler

    def unregister_batcher(self, kind: EventKind) -> None:
        """Remove the batcher for *kind* (idempotent)."""
        self._batchers.pop(kind, None)

    def next_time_of(self, kinds) -> float | None:
        """Earliest queued live event among *kinds*, or ``None``.

        The window/barrier companion to :meth:`register_batcher`: a
        batcher that wants to run batch-local work concurrently (the
        sharded fleet executor) asks how far it can look ahead before
        the next event of a *coupling* kind — for the cluster, any
        manager-bound event — and treats ``min(next_time_of(...),
        horizon)`` as its conservative window boundary.  Purely an
        inspection: nothing is popped or reordered.
        """
        return self.queue.next_time_of(kinds)

    # -- execution ---------------------------------------------------------

    def step(self) -> Event | None:
        """Fire the single earliest event; ``None`` when the queue is empty.

        When a batcher is registered for the popped event's kind, every
        consecutive same-``(time, kind, priority)`` event is popped into
        one batch and dispatched through the batcher instead (see
        :meth:`register_batcher`).  The returned event is the first of
        the batch; ``events_processed`` advances by the batch size.
        """
        if not self.queue:
            return None
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "likely a runaway scheduling loop"
            )
        batcher = self._batchers.get(event.kind) if self._batchers else None
        if batcher is None:
            event.fire()
            return event
        queue = self.queue
        time, kind, priority = event.time, event.kind, event.priority
        nxt = queue.peek_event()
        if (
            nxt is None
            or nxt.time != time
            or nxt.kind is not kind
            or nxt.priority != priority
        ):
            # Lone event of a batched kind: fire it directly — handlers
            # only ever see genuine same-instant batches (size ≥ 2), so
            # a registered batcher costs one queue peek on the serial
            # path, nothing more.
            event.fire()
            return event
        batch = [event]
        while True:
            batch.append(queue.pop())
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a runaway scheduling loop"
                )
            nxt = queue.peek_event()
            if (
                nxt is None
                or nxt.time != time
                or nxt.kind is not kind
                or nxt.priority != priority
            ):
                break
        batcher(batch)
        return event

    def run(self, until: float | None = None) -> float:
        """Run the loop.

        Parameters
        ----------
        until:
            Optional time horizon.  Events at exactly ``until`` still fire;
            later ones stay queued and the clock stops at ``until``.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        try:
            while self.queue:
                next_t = self.queue.peek_time()
                if next_t is None:
                    break
                if until is not None and next_t > until:
                    self.clock.advance_to(until)
                    break
                self.step()
            if until is not None and self.clock.now < until:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return self.clock.now

    def run_until_empty(self) -> float:
        """Run with no horizon until the event queue drains."""
        return self.run(until=None)

    @property
    def trace_enabled(self) -> bool:
        """Fast-path guard: whether tracing is active.

        Hot paths check this before building trace messages so that
        disabled-trace runs (large sweeps, benchmarks) skip the string
        formatting entirely.
        """
        return self.tracer.enabled and not self.tracer.truncated

    def trace(self, topic: str, message: str, **data: Any) -> None:
        """Record a trace line stamped with the current time."""
        if self.tracer.enabled:
            self.tracer.record(self.clock.now, topic, message, **data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.clock.now:.6g}, queued={len(self.queue)}, "
            f"processed={self.events_processed})"
        )
