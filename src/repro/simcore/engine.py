"""The discrete-event simulation loop.

:class:`Simulator` owns the clock, the event queue, the RNG registry and
the tracer, and exposes a tiny scheduling API.  Higher layers (container
runtime, cluster, FlowCon executor) are plain objects that hold a reference
to the simulator and schedule callbacks on it; there are no coroutines or
threads, which keeps replay fully deterministic.

Design notes
------------
* Time between events is advanced analytically by whoever owns continuous
  state (the :class:`~repro.cluster.worker.Worker` integrates job progress);
  the engine only orders callbacks.
* ``run()`` executes until the queue is exhausted, a time horizon is hit,
  or an event-count safety valve trips (runaway-loop protection: a correct
  simulation of this system needs O(jobs × reconfigurations) events, so an
  enormous count always indicates a bug, not a big workload).
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError
from repro.simcore.clock import SimClock
from repro.simcore.equeue import EventHandle, EventQueue
from repro.simcore.events import Event, EventCallback, EventKind
from repro.simcore.rng import RngRegistry
from repro.simcore.tracing import Tracer

__all__ = ["Simulator"]


class Simulator:
    """Deterministic event loop.

    Parameters
    ----------
    seed:
        Root seed for all random streams (see :class:`RngRegistry`).
    trace:
        Whether to keep a structured trace of the run.
    max_events:
        Hard cap on processed events; exceeded ⇒ :class:`SimulationError`.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        max_events: int = 5_000_000,
    ) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rngs = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        self.max_events = int(max_events)
        self.events_processed = 0
        self._running = False

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    def schedule(
        self,
        time: float,
        callback: EventCallback | None,
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: int = 0,
        payload: Any = None,
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*.

        Scheduling in the past raises :class:`SimulationError` — the system
        being modelled cannot react before it observes.
        """
        now = self.clock.now
        if time < now - 1e-9:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={now!r}"
            )
        event = Event(
            time if time >= now else now, kind, callback, priority, payload
        )
        return self.queue.push(event)

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback | None,
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: int = 0,
        payload: Any = None,
    ) -> EventHandle:
        """Schedule *callback* ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(
            self.clock.now + delay,
            callback,
            kind=kind,
            priority=priority,
            payload=payload,
        )

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        self.queue.cancel(handle)

    # -- execution ---------------------------------------------------------

    def step(self) -> Event | None:
        """Fire the single earliest event; ``None`` when the queue is empty."""
        if not self.queue:
            return None
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "likely a runaway scheduling loop"
            )
        event.fire()
        return event

    def run(self, until: float | None = None) -> float:
        """Run the loop.

        Parameters
        ----------
        until:
            Optional time horizon.  Events at exactly ``until`` still fire;
            later ones stay queued and the clock stops at ``until``.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        try:
            while self.queue:
                next_t = self.queue.peek_time()
                if next_t is None:
                    break
                if until is not None and next_t > until:
                    self.clock.advance_to(until)
                    break
                self.step()
            if until is not None and self.clock.now < until:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return self.clock.now

    def run_until_empty(self) -> float:
        """Run with no horizon until the event queue drains."""
        return self.run(until=None)

    @property
    def trace_enabled(self) -> bool:
        """Fast-path guard: whether tracing is active.

        Hot paths check this before building trace messages so that
        disabled-trace runs (large sweeps, benchmarks) skip the string
        formatting entirely.
        """
        return self.tracer.enabled and not self.tracer.truncated

    def trace(self, topic: str, message: str, **data: Any) -> None:
        """Record a trace line stamped with the current time."""
        if self.tracer.enabled:
            self.tracer.record(self.clock.now, topic, message, **data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.clock.now:.6g}, queued={len(self.queue)}, "
            f"processed={self.events_processed})"
        )
