"""Monotonic simulation clock.

A trivial but load-bearing component: every subsystem (runtime, monitors,
metrics) reads time from one shared :class:`SimClock` so that the notion of
"now" is globally consistent, and the clock refuses to move backwards which
turns ordering bugs into immediate, loud failures instead of silently
corrupted traces.
"""

from __future__ import annotations

from repro.errors import ClockError

__all__ = ["SimClock"]


class SimClock:
    """A forward-only clock measured in simulated seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time *t*.

        Returns the elapsed interval.  Advancing to the current time is a
        no-op returning ``0.0``.

        Raises
        ------
        ClockError
            If *t* lies in the past (beyond a tiny float tolerance).
        """
        if t < self._now - 1e-9:
            raise ClockError(
                f"cannot move clock backwards: now={self._now!r}, target={t!r}"
            )
        elapsed = max(0.0, t - self._now)
        self._now = max(self._now, float(t))
        return elapsed

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by *dt* seconds (must be >= 0)."""
        if dt < 0.0:
            raise ClockError(f"negative clock increment {dt!r}")
        self._now += float(dt)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only for reuse across independent runs)."""
        if start < 0.0:
            raise ClockError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6g})"
