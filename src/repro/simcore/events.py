"""Event records for the discrete-event engine.

Events are small immutable records ordered by ``(time, priority, seq)``.
The sequence number makes ordering *total* and therefore the whole
simulation deterministic: two events scheduled for the same instant always
fire in scheduling order (unless an explicit priority says otherwise).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable

__all__ = ["EventKind", "Event", "EventCallback"]

#: Signature of an event callback: receives the firing :class:`Event`.
EventCallback = Callable[["Event"], None]

_seq_counter = itertools.count()


class EventKind(enum.Enum):
    """Classification of simulation events.

    The engine itself treats all kinds identically; the kinds exist so that
    traces are self-describing and so tests can assert on the event stream.
    """

    #: A job submission reaching the manager.
    JOB_ARRIVAL = "job_arrival"
    #: A container's training job finished; the container exits.
    CONTAINER_EXIT = "container_exit"
    #: An in-flight migrated container arriving at its target worker.
    CONTAINER_MIGRATION = "container_migration"
    #: An autoscale-provisioned worker joining the fleet after boot.
    WORKER_PROVISION = "worker_provision"
    #: An injected worker fault firing (fail-stop crash or fail-slow).
    WORKER_FAIL = "worker_fail"
    #: A failed worker rejoining the fleet at full health.
    WORKER_RECOVER = "worker_recover"
    #: A control-plane message event (delivery, retry timeout, reconcile)
    #: scheduled by a non-ideal :mod:`repro.cluster.fabric` policy.
    MESSAGE = "message"
    #: A periodic scheduling-policy tick (Algorithm 1 cadence).
    SCHEDULER_TICK = "scheduler_tick"
    #: A listener poll (Algorithm 2 cadence).
    LISTENER_POLL = "listener_poll"
    #: A metrics sampling instant.
    METRIC_SAMPLE = "metric_sample"
    #: Anything else (tests, ad-hoc callbacks).
    GENERIC = "generic"


class Event:
    """A single scheduled occurrence (immutable by convention).

    A plain ``__slots__`` class rather than a dataclass: the simulation
    creates one event per (re)scheduled exit projection, which makes
    construction a measured hot path, and ``object.__setattr__``-based
    frozen-dataclass initialization costs roughly twice a direct
    ``__init__``.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    kind:
        The :class:`EventKind` tag.
    callback:
        Callable invoked with the event itself when it fires.  ``None`` is
        allowed for pure marker events (used by some tests).
    priority:
        Tie-breaker for simultaneous events; *lower fires first*.  The
        engine uses this to guarantee, e.g., that a container exit settles
        before a scheduler tick at the same instant observes the pool.
    payload:
        Arbitrary immutable-by-convention data attached to the event.
    seq:
        Monotonic scheduling sequence number (assigned automatically);
        final tie-breaker giving a total deterministic order.
    """

    __slots__ = ("time", "kind", "callback", "priority", "payload", "seq")

    def __init__(
        self,
        time: float,
        kind: EventKind = EventKind.GENERIC,
        callback: EventCallback | None = None,
        priority: int = 0,
        payload: Any = None,
        seq: int | None = None,
    ) -> None:
        self.time = time
        self.kind = kind
        self.callback = callback
        self.priority = priority
        self.payload = payload
        self.seq = next(_seq_counter) if seq is None else seq

    def sort_key(self) -> tuple[float, int, int]:
        """Total-order key: ``(time, priority, seq)``."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def fire(self) -> None:
        """Invoke the callback (no-op for marker events)."""
        if self.callback is not None:
            self.callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.6g}, kind={self.kind.value}, "
            f"prio={self.priority}, seq={self.seq})"
        )


# Well-known priorities.  Exits settle first so that pool state observed by
# listeners/ticks at the same instant is already up to date; arrivals come
# next; policy work last.
PRIORITY_EXIT = -20
PRIORITY_ARRIVAL = -10
PRIORITY_LISTENER = 0
PRIORITY_TICK = 10
PRIORITY_SAMPLE = 20
