"""Deterministic discrete-event simulation engine.

This package is the foundation substrate for the FlowCon reproduction: the
paper evaluates FlowCon on a physical CloudLab node, while we replay the
same control decisions inside a deterministic discrete-event simulator
(DES).  Allocations in the modelled system are piecewise-constant between
events, so the engine advances time *analytically* — there is no fixed time
step and therefore no integration error.

Public surface
--------------
:class:`~repro.simcore.engine.Simulator`
    The event loop: schedule callbacks, run until quiescence or a horizon.
:class:`~repro.simcore.events.Event` / :class:`~repro.simcore.events.EventKind`
    Immutable event records with a total deterministic ordering.
:class:`~repro.simcore.equeue.EventQueue`
    Binary-heap priority queue with O(1) lazy cancellation.
:class:`~repro.simcore.clock.SimClock`
    Monotonic simulation clock.
:class:`~repro.simcore.rng.RngRegistry`
    Named, independently-seeded ``numpy`` random streams.
:class:`~repro.simcore.tracing.Tracer`
    Structured, in-memory simulation trace.
"""

from repro.simcore.clock import SimClock
from repro.simcore.engine import Simulator
from repro.simcore.equeue import EventQueue
from repro.simcore.events import Event, EventKind
from repro.simcore.rng import RngRegistry
from repro.simcore.tracing import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "RngRegistry",
    "SimClock",
    "Simulator",
    "TraceRecord",
    "Tracer",
]
