"""Baseline scheduling policies FlowCon is compared against.

* :class:`~repro.baselines.na.NAPolicy` — the paper's baseline: the
  default container platform with no limits, pure free competition.
* :class:`~repro.baselines.static.StaticPartitionPolicy` — the "users can
  set an upper limit when initializing" alternative from §2.2: equal
  static shares, re-divided only when membership changes.
* :class:`~repro.baselines.slaq.SlaqLikePolicy` — a quality-driven
  scheduler in the spirit of SLAQ [38], the closest related work (§6):
  periodically re-allocates proportionally to *predicted* near-term loss
  improvement, without FlowCon's listeners/back-off machinery.
* :class:`~repro.baselines.timeslice.TimeSlicePolicy` — Gandiva-inspired
  round-robin time slicing [36]: periodic near-exclusive bursts with no
  training-progress signal at all.
"""

from repro.baselines.na import NAPolicy
from repro.baselines.slaq import SlaqLikePolicy
from repro.baselines.static import StaticPartitionPolicy
from repro.baselines.timeslice import TimeSlicePolicy

__all__ = [
    "NAPolicy",
    "SlaqLikePolicy",
    "StaticPartitionPolicy",
    "TimeSlicePolicy",
]
