"""Static equal partitioning.

§2.2 names the second non-elastic option: "users can set an upper limit to
each of the containers when initializing them".  The canonical static
policy divides the node evenly: with ``n`` live containers each gets limit
``1/n``, re-divided only when membership changes (there is no runtime
elasticity — that is precisely what FlowCon adds).

With *soft* allocation this coincides with NA whenever every job is
compute-bound, but it diverges when demands differ (a demand-limited job's
unused share is redistributed under NA but stays reserved-and-wasted under
hard static limits), which is what the hard/soft ablation bench shows.
"""

from __future__ import annotations

from repro.cluster.worker import Worker
from repro.containers.container import Container
from repro.core.policy import SchedulingPolicy

__all__ = ["StaticPartitionPolicy"]


class StaticPartitionPolicy(SchedulingPolicy):
    """Equal static shares, re-divided on membership change only."""

    name = "Static-1/n"

    def attach(self, worker: Worker) -> None:
        """Install membership hooks that re-divide the node."""
        self.worker = worker
        worker.launch_hooks.append(self._rebalance)
        worker.exit_hooks.append(self._rebalance)

    def _rebalance(self, _container: Container) -> None:
        running = self.worker.running_containers()
        if not running:
            return
        share = 1.0 / len(running)
        self.worker.batch_update({c.cid: share for c in running})

    def describe(self) -> str:
        return "Static equal partition (limit 1/n per container)"
