"""A Gandiva-inspired time-slicing baseline.

§6 cites Gandiva (OSDI'18), which time-slices and migrates DL jobs on
GPU clusters using *intra-job* knowledge.  On our single-node CPU
substrate the comparable idea is coarse time-slicing: each quantum, one
job is *favored* (limit 1) while the rest are squeezed to a small
background share, rotating round-robin.  This gives each job periodic
near-exclusive bursts — good for cache locality on real machines, but
(as the bench shows) it helps nobody here because progress depends only
on aggregate delivered work while completion *order* suffers for
everyone not currently holding the slice.

It exists as a contrast policy: unlike FlowCon it uses no training-
progress signal at all.
"""

from __future__ import annotations

from repro.cluster.worker import Worker
from repro.core.policy import SchedulingPolicy
from repro.errors import ConfigError
from repro.simcore.events import PRIORITY_TICK, Event, EventKind

__all__ = ["TimeSlicePolicy"]


class TimeSlicePolicy(SchedulingPolicy):
    """Round-robin exclusive-ish time slices.

    Parameters
    ----------
    quantum:
        Seconds each job holds the favored slot.
    background_share:
        Limit applied to non-favored containers (kept > 0 so nobody
        fully starves, mirroring Gandiva's suspend-resume rather than
        kill).
    """

    def __init__(self, quantum: float = 20.0,
                 background_share: float = 0.05) -> None:
        if quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum!r}")
        if not 0.0 < background_share < 1.0:
            raise ConfigError(
                f"background_share must lie in (0,1), got {background_share!r}"
            )
        self.quantum = float(quantum)
        self.background_share = float(background_share)
        self.name = f"TimeSlice-{quantum:g}s"
        self._turn = 0
        self._handle = None

    def attach(self, worker: Worker) -> None:
        """Begin rotating slices on *worker*.

        The rotation goes dormant while the pool is empty (so an idle
        worker schedules no events) and re-arms on the next launch.
        """
        self.worker = worker
        self._detached = False
        worker.launch_hooks.append(self._on_launch)
        if worker.running_containers():
            self._rotate()
            self._schedule_tick()

    def detach(self) -> None:
        self._detached = True
        if self._handle is not None:
            self.worker.sim.cancel(self._handle)
            self._handle = None

    # -- rotation ------------------------------------------------------------

    def _on_launch(self, _container) -> None:
        if self._detached or self._handle is not None:
            return
        self._rotate()
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        self._handle = self.worker.sim.schedule_in(
            self.quantum,
            self._on_tick,
            kind=EventKind.SCHEDULER_TICK,
            priority=PRIORITY_TICK,
        )

    def _on_tick(self, _event: Event) -> None:
        self._handle = None
        if self._detached:
            return
        self._rotate()
        if self.worker.running_containers():
            self._schedule_tick()

    def _rotate(self) -> None:
        running = self.worker.running_containers()
        if running:
            favored = running[self._turn % len(running)]
            self.worker.batch_update(
                {
                    c.cid: (1.0 if c.cid == favored.cid
                            else self.background_share)
                    for c in running
                }
            )
            self.worker.sim.trace(
                "timeslice.rotate",
                f"slice → {favored.name}",
                cid=favored.cid,
            )
        self._turn += 1

    def describe(self) -> str:
        return (
            f"Gandiva-style time slicing (quantum={self.quantum:g}s, "
            f"background={self.background_share:g})"
        )
