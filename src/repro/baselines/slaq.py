"""A SLAQ-like quality-driven baseline.

§6 singles out SLAQ (Zhang et al., SoCC'17) as the closest related work:
it "schedules concurrent machine learning training jobs based on quality
improvement for resource usage, by allocating cluster resources
iteratively.  However, SLAQ fails to allocate the resources at real-time."

This policy captures SLAQ's essence at the worker scale so the comparison
is meaningful inside our substrate:

* every fixed epoch (no listeners, no back-off — hence not "real-time"),
  estimate each job's *normalized* recent quality improvement per second;
* allocate CPU shares proportional to that predicted marginal gain
  (SLAQ's greedy highest-marginal-quality-first allocation, smoothed to
  proportional shares since our allocator is share-based);
* fresh jobs receive the mean share until they produce a signal.

Differences from FlowCon that the benches surface: reaction latency to
arrivals (up to one full epoch), no convergence floor, and no free-
competition fallback when everything has converged.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.worker import Worker
from repro.core.efficiency import GrowthTracker
from repro.core.policy import SchedulingPolicy
from repro.errors import ConfigError
from repro.simcore.events import PRIORITY_TICK, Event, EventKind

__all__ = ["SlaqLikePolicy"]


class SlaqLikePolicy(SchedulingPolicy):
    """Quality-driven proportional allocation at fixed epochs.

    Parameters
    ----------
    epoch:
        Re-allocation period in seconds (SLAQ's scheduling epoch).
    min_share:
        Lower bound on any job's share (prevents total starvation, as
        SLAQ's fairness knob does).
    """

    def __init__(self, epoch: float = 20.0, min_share: float = 0.05) -> None:
        if epoch <= 0:
            raise ConfigError(f"epoch must be positive, got {epoch!r}")
        if not 0.0 < min_share < 1.0:
            raise ConfigError(f"min_share must lie in (0,1), got {min_share!r}")
        self.epoch = float(epoch)
        self.min_share = float(min_share)
        self.name = f"SLAQ-like-{epoch:g}s"
        self._tracker: GrowthTracker | None = None

    def attach(self, worker: Worker) -> None:
        """Start the epoch loop."""
        self.worker = worker
        self._tracker = GrowthTracker()
        self._sampler = worker.obsbus.sampler()
        self._schedule_epoch()

    def _schedule_epoch(self) -> None:
        self._handle = self.worker.sim.schedule_in(
            self.epoch,
            self._on_epoch,
            kind=EventKind.SCHEDULER_TICK,
            priority=PRIORITY_TICK,
        )

    def detach(self) -> None:
        if getattr(self, "_handle", None) is not None:
            self.worker.sim.cancel(self._handle)
            self._handle = None

    # -- epoch logic -----------------------------------------------------------

    def _on_epoch(self, _event: Event) -> None:
        worker = self.worker
        observations = worker.obsbus.observe()  # settles, shared E(t) pass
        if observations:
            n = len(observations)
            # Normalized quality gain per second for each job.
            gains = np.zeros(n, dtype=np.float64)
            for i, obs in enumerate(observations):
                stats = self._sampler.sample(obs)
                if stats is None or stats.eval_value is None:
                    continue
                # SLAQ normalizes each metric by its total range so
                # heterogeneous losses are comparable.
                normalized = obs.container.job.evalfn.normalized(
                    stats.eval_value
                )
                hist = self._tracker.history(obs.cid)
                hist.observe(obs.time, normalized, stats.mean_usage)
                sample = hist.latest()
                gains[i] = sample.progress if sample is not None else 0.0
            if gains.sum() <= 0:
                shares = np.full(n, 1.0 / n)
            else:
                fresh = gains <= 0
                shares = gains / gains.sum()
                if fresh.any():
                    shares[fresh] = 1.0 / n
                    shares /= shares.sum()
            shares = np.maximum(shares, self.min_share)
            shares = np.minimum(shares / shares.max(), 1.0)
            worker.batch_update(
                {
                    obs.cid: float(s)
                    for obs, s in zip(observations, shares)
                }
            )
        self._schedule_epoch()

    def describe(self) -> str:
        return (
            f"SLAQ-like quality-driven scheduler "
            f"(epoch={self.epoch:g}s, min_share={self.min_share:g})"
        )
