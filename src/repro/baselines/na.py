"""NA — the default, configuration-free container platform.

§5.2: FlowCon is compared with "the original Docker system (denoted as
NA)".  Containers are started without limits and "compete for resources
freely just like processes in an operating system" (§4.1); the kernel's
fair-share scheduler gives concurrent compute-bound jobs approximately
equal slices (Fig. 8), with the jitter of uncontrolled competition at
larger scales (Fig. 16).

The policy is therefore a no-op: limits stay at their default 1.0 and the
worker's allocator produces equal max-min fair shares.  The jitter and
interference behaviour comes from the shared
:class:`~repro.cluster.contention.ContentionModel`, identically configured
for every policy in a comparison.
"""

from __future__ import annotations

from repro.cluster.worker import Worker
from repro.core.policy import SchedulingPolicy

__all__ = ["NAPolicy"]


class NAPolicy(SchedulingPolicy):
    """The paper's NA baseline: no resource configuration at all."""

    name = "NA"

    def attach(self, worker: Worker) -> None:
        """Nothing to install — default limits (1.0) mean free competition."""
        self.worker = worker

    def describe(self) -> str:
        return "NA (default platform, free competition)"
