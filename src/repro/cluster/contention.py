"""Interference between co-located containers.

On the paper's physical node, two effects shape the traces that a pure
work-conserving simulator would miss:

1. **Concurrency overhead** — context switching, cache and memory-bandwidth
   interference grow with the number of co-running training loops.  This is
   the mechanism behind the paper's makespan improvements: FlowCon shortens
   job *overlap* (§5.3: "reducing the overlap between jobs"), so less time
   is spent in the high-overhead regime.  Modelled as a multiplicative
   efficiency on delivered work, ``1 / (1 + overhead · (n − 1))``.

2. **Free-competition jitter** — §5.5.1/Fig. 16: under the default
   scheduler "whenever there is an idle slot, the system will allocate
   resources to the first job in the queue", producing visible jitter; the
   soft upper limits FlowCon applies leave less room for competition and
   smoother traces (Fig. 15).  Modelled as multiplicative demand noise
   whose amplitude shrinks as a container's limit tightens.

Both effects are configurable and can be disabled (set to zero) for the
idealized work-conserving analysis used in several unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["ContentionModel"]


@dataclass(frozen=True)
class ContentionModel:
    """Tunable interference model for one worker.

    Attributes
    ----------
    overhead:
        Per-extra-container relative efficiency cost.  ``0.02`` ⇒ three
        co-running jobs deliver ``1/1.04 ≈ 96 %`` of nominal work,
        matching the paper's 1–5 % makespan gap.
    jitter_free:
        Demand-noise amplitude for containers at (or near) limit 1.0 —
        free competition.
    jitter_limited:
        Demand-noise amplitude for tightly limited containers.
    limit_threshold:
        Limits above this count as "free competition" for jitter purposes.
    """

    overhead: float = 0.02
    jitter_free: float = 0.06
    jitter_limited: float = 0.015
    limit_threshold: float = 0.98
    #: Thrashing penalty per unit of memory overcommit (resident memory
    #: beyond worker RAM).  0 (default) disables memory pressure — the
    #: paper never overcommits its 16 GB node; the memory-pressure
    #: extension bench opts in.
    swap_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ConfigError("overhead must be non-negative")
        for name in ("jitter_free", "jitter_limited"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ConfigError(f"{name} must lie in [0, 1), got {v!r}")
        if not 0.0 < self.limit_threshold <= 1.0:
            raise ConfigError("limit_threshold must lie in (0, 1]")
        if self.swap_penalty < 0:
            raise ConfigError("swap_penalty must be non-negative")

    @classmethod
    def ideal(cls) -> "ContentionModel":
        """No interference at all — pure work-conserving sharing."""
        return cls(overhead=0.0, jitter_free=0.0, jitter_limited=0.0)

    def efficiency(self, n_active: int, mem_used: float = 0.0) -> float:
        """Fraction of allocated CPU converted to useful training work.

        Parameters
        ----------
        n_active:
            Number of co-running containers (context-switch/cache cost).
        mem_used:
            Total resident memory as a fraction of worker RAM; values
            above 1.0 incur the swap/thrashing penalty.
        """
        eff = 1.0
        if n_active > 1:
            eff /= 1.0 + self.overhead * (n_active - 1)
        overcommit = max(0.0, mem_used - 1.0)
        if overcommit > 0.0 and self.swap_penalty > 0.0:
            eff /= 1.0 + self.swap_penalty * overcommit
        return eff

    def demand_amplitude(self, limits: np.ndarray) -> np.ndarray | None:
        """Per-container demand-noise amplitudes for *limits*.

        Pure function of the limit vector, so callers that re-balance
        many times between limit changes may cache the result.  ``None``
        means "no jitter" (empty pool or all-zero amplitudes) — the
        noise methods then skip the RNG draw entirely, which is part of
        the replay contract (an ideal worker consumes no random numbers).
        """
        limits = np.asarray(limits, dtype=np.float64)
        if limits.shape[0] == 0:
            return None
        amplitude = np.where(
            limits >= self.limit_threshold, self.jitter_free, self.jitter_limited
        )
        if not amplitude.any():
            return None
        return amplitude

    def weight_amplitude(self, limits: np.ndarray) -> np.ndarray | None:
        """Per-container weight-noise amplitudes for *limits*.

        Per §5.5.1's explanation of Fig. 15 vs Fig. 16 — "FlowCon employs
        a soft, upper resource limit to the containers, and therefore the
        room for free competition is reduced" — the amplitude scales with
        the *fraction of containers competing freely*: a pool where many
        containers are pinned to tight limits churns less.  ``None``
        means no draw (see :meth:`demand_amplitude`).
        """
        limits = np.asarray(limits, dtype=np.float64)
        n = limits.shape[0]
        if n == 0:
            return None
        free = limits >= self.limit_threshold
        room = float(free.sum()) / n
        amplitude = np.where(
            free, self.jitter_free * room, self.jitter_limited
        )
        if not amplitude.any():
            return None
        return amplitude

    def demand_noise(
        self,
        rng: np.random.Generator,
        limits: np.ndarray,
        amplitude: np.ndarray | None = None,
    ) -> np.ndarray:
        """Multiplicative demand factors, one per container.

        Containers competing freely (limit above :attr:`limit_threshold`)
        receive the larger :attr:`jitter_free` amplitude.  Callers may
        pass a cached :meth:`demand_amplitude` result (the worker caches
        amplitudes per limit-table version) to skip recomputation.
        """
        if amplitude is None:
            amplitude = self.demand_amplitude(limits)
        n = np.asarray(limits).shape[0]
        if amplitude is None:
            return np.ones(n, dtype=np.float64)
        return 1.0 + rng.uniform(-1.0, 1.0, size=n) * amplitude

    def weight_noise(
        self,
        rng: np.random.Generator,
        limits: np.ndarray,
        amplitude: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fair-share weight perturbations for the allocator's phase 1.

        Models the kernel scheduler's imperfect instantaneous fairness;
        see :meth:`weight_amplitude`, whose cached result callers may
        pass in.
        """
        if amplitude is None:
            amplitude = self.weight_amplitude(limits)
        n = np.asarray(limits).shape[0]
        if amplitude is None:
            return np.ones(n, dtype=np.float64)
        return 1.0 + rng.uniform(-1.0, 1.0, size=n) * amplitude
