"""Shared progress-signal observation for cluster policies.

Both the ``progress`` placement policy and the progress-aware rebalancer
read the same SLAQ-style signal — normalized quality improvement per
second (Eq. 1 over the job's normalized evaluation function).  Each
policy owns one :class:`ProgressObserver`, whose sampling *windows*
(a :class:`~repro.cluster.obsbus.BusSampler`) are private — observation
windows are per-observer state and must not be shared across policies —
while the underlying settle, ``E(t)`` evaluation and integral snapshots
come from each worker's shared
:class:`~repro.cluster.obsbus.ObservationBus` pass, so a policy
observing a worker at the same instant as the metrics recorder or
FlowCon's monitor adds no cgroup queries of its own.

The sampler is keyed by container id, not by worker: a migrated
container keeps its observation window across the move, exactly as with
the historical per-policy :class:`~repro.containers.stats.StatsSampler`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.obsbus import BusSampler
from repro.core.efficiency import GrowthTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.worker import Worker

__all__ = ["ProgressObserver"]


class ProgressObserver:
    """Tracks per-container normalized progress rates for one policy."""

    def __init__(self) -> None:
        self._sampler = BusSampler()
        self._tracker = GrowthTracker()
        self._buses: list = []

    def reset(self) -> None:
        """Drop all observation state (bind to a new run)."""
        self._sampler = BusSampler()
        self._tracker = GrowthTracker()
        self._buses = []

    def release(self) -> None:
        """Unsubscribe from every visited bus (the observer went quiescent).

        Registered-but-idle subscribers pin each bus's checkpoint-prune
        floor at their last sampling windows; a policy that knows it will
        not observe for a while releases here so the bounded-memory
        guarantee extends to the rest of the run.  Sampling windows are
        dropped along with the subscription — once unregistered, pruning
        may advance past them, so a later :meth:`observe` must restart
        each container's window from the pruned history floor (the same
        contract as a subscriber that registers late) rather than query
        below it.
        """
        for bus in self._buses:
            bus.unregister(self._sampler)
        self._buses = []
        self._sampler = BusSampler()

    def observe(self, worker: "Worker", now: float) -> dict[int, float]:
        """Fold one observation of *worker*'s containers; return rates.

        Settles the worker first (via the bus pass), so job state and
        cgroup counters reflect *now* rather than its last event
        (settlement is exact and idempotent).  Jobs without a
        normalizable metric fall back to the raw |ΔE|.  Containers
        observed fewer than twice have no rate yet and are absent from
        the result.
        """
        bus = worker.obsbus
        bus.register(self._sampler)
        if bus not in self._buses:
            self._buses.append(bus)
        rates: dict[int, float] = {}
        for obs in bus.observe():
            stats = self._sampler.sample(obs)
            if stats is not None and stats.eval_value is not None:
                evalfn = getattr(obs.container.job, "evalfn", None)
                value = (
                    evalfn.normalized(stats.eval_value)
                    if evalfn is not None
                    else stats.eval_value
                )
                self._tracker.observe(
                    obs.cid, now, value, stats.mean_usage
                )
            sample = self._tracker.history(obs.cid).latest()
            if sample is not None:
                rates[obs.cid] = sample.progress
        return rates
