"""Shared progress-signal observation for cluster policies.

Both the ``progress`` placement policy and the progress-aware rebalancer
read the same SLAQ-style signal — normalized quality improvement per
second (Eq. 1 over the job's normalized evaluation function) — through a
*private* :class:`~repro.containers.stats.StatsSampler` +
:class:`~repro.core.efficiency.GrowthTracker`, so no other monitor's
sampling windows are disturbed.  :class:`ProgressObserver` is that
shared observer; policies own one instance each (observation windows are
per-observer state and must not be shared across policies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.containers.stats import StatsSampler
from repro.core.efficiency import GrowthTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.worker import Worker

__all__ = ["ProgressObserver"]


class ProgressObserver:
    """Tracks per-container normalized progress rates for one policy."""

    def __init__(self) -> None:
        self._sampler = StatsSampler()
        self._tracker = GrowthTracker()

    def reset(self) -> None:
        """Drop all observation state (bind to a new run)."""
        self._sampler = StatsSampler()
        self._tracker = GrowthTracker()

    def observe(self, worker: "Worker", now: float) -> dict[int, float]:
        """Fold one observation of *worker*'s containers; return rates.

        Settles the worker first, so job state and cgroup counters
        reflect *now* rather than its last event (settlement is exact
        and idempotent).  Jobs without a normalizable metric fall back
        to the raw |ΔE|.  Containers observed fewer than twice have no
        rate yet and are absent from the result.
        """
        worker.settle()
        rates: dict[int, float] = {}
        for container in worker.running_containers():
            stats = self._sampler.sample(container, now)
            if stats is not None and stats.eval_value is not None:
                evalfn = getattr(container.job, "evalfn", None)
                value = (
                    evalfn.normalized(stats.eval_value)
                    if evalfn is not None
                    else stats.eval_value
                )
                self._tracker.observe(
                    container.cid, now, value, stats.mean_usage
                )
            sample = self._tracker.history(container.cid).latest()
            if sample is not None:
                rates[container.cid] = sample.progress
        return rates
