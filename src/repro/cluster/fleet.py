"""Fused fleet-tick engine: one vectorized pass across all workers.

The paper's elastic resource-configuration loop runs per worker, and the
reproduction mirrors that shape: every sampling tick each worker settles,
reallocates and observes independently, paying numpy's small-array call
overhead N times per instant.  On a fleet the sampling grid is *shared* —
all recorders start together and tick at the same cadence — so nearly all
METRIC_SAMPLE events land on the same instants.  The
:class:`FleetTicker` exploits that: it registers an engine-level batcher
(:meth:`repro.simcore.engine.Simulator.register_batcher`) for
``METRIC_SAMPLE`` and, whenever several workers sample at one instant,
runs the shared pre-work as one fused pass over a packed
``(worker, container)`` arena before letting each recorder's own event
fire.

The fused pass has three phases, mirroring exactly what each serial
``Worker.poke()`` would have done first:

* **Settle** — pack every stale worker's active-container arrays (the
  runtime-version-keyed footprint caches from the observation-bus PR)
  into contiguous arrays with per-worker segment offsets, compute work
  and cgroup-contribution rows for the whole fleet in one numpy pass,
  and apply them per container.
* **Reallocate** — run each worker's ``_realloc_begin`` (version bump +
  per-worker jitter draws, preserving every RNG stream's draw order),
  hand all allocator inputs to
  :meth:`repro.containers.allocator.CpuAllocator.allocate_segmented`
  grouped by allocation mode, and finish with ``_realloc_finish``.
* **Sample** — replace each batched recorder's ``sample_now()`` with one
  packed window-mean computation over every ``(recorder, container)``
  pair, bypassing the :class:`ObservationBus` pass entirely.  The
  bypassed ``observe()``'s bookkeeping is replicated per worker first —
  advance the ``(now, version)`` cache key, clear the per-instant cache,
  increment the pass counter, and run the amortized checkpoint prune on
  the exact serial cadence (every 16th pass) *before* any window is
  read; pass-count fidelity matters because the post-migration window
  clamp below reads ``history_floor``, whose value depends on when
  pruning last ran.  Then: window-end integrals are the accounts' live
  counters (the fleet settle just advanced them to *now*), window-start
  integrals come from a fleet-side per-container snapshot cache seeded
  by the previous tick (with :meth:`CgroupAccount._integral_at` as the
  exact fallback for first samples, migrations and pruned floors),
  window starts are clamped up to ``history_floor`` exactly as
  :meth:`BusSampler.sample <repro.cluster.obsbus.BusSampler.sample>`
  clamps them (a held-over window goes stale when a container migrates
  away, the other node's bus prunes past it, and the container migrates
  back), and the division is one broadcast over the packed ``(N, 4)``
  stack — the same per-element IEEE ops
  :meth:`CgroupAccount.window_mean_cached` performs per container.
  Sampler windows, step series and growth histories are then advanced
  per container with inlined replicas of
  :meth:`StepSeries.append <repro.metrics.timeseries.StepSeries.append>`
  and :meth:`EfficiencyHistory.observe
  <repro.core.efficiency.EfficiencyHistory.observe>` (same guards, same
  arithmetic, shared constants), and each recorder schedules its next
  sample exactly as ``_on_sample`` would have.

Batched events whose recorder was handled by the fused sampling pass do
**not** fire — the pass *is* their firing (``events_processed`` still
counts them; the engine counted each pop).  Any other batched event — a
stopped recorder's, or an unrecognized payload's — fires normally, in
pop order.

Bit-identity invariants
-----------------------
* Sampling events carry the highest priority number (fire last at any
  instant), and workers are state-independent at sampling instants with
  per-worker RNG streams, so reordering the *cross-worker* interleaving
  of settle/reallocate/sample cannot change any per-worker state.
* Every fused stage either runs the same code objects as the serial path
  on identical inputs (``_realloc_begin``/``_realloc_finish``, the
  per-segment water-fill) or performs the same element-wise IEEE
  operations in the same per-element order (packed settlement, packed
  allocation ceilings) — equal inputs ⇒ equal bits.
* Workers already settled or poked at this instant are skipped exactly
  as their own ``settle()``/``poke()`` would no-op; recorders that were
  stopped (their event still fires and returns early) contribute no
  worker to the pre-pass.
* ``events_processed`` counts every batched event, so serial and fleet
  runs agree on event counts, digests and summaries exactly — pinned by
  the golden fixtures and the cluster invariant harness.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.worker import Worker
from repro.containers.cgroup import CgroupAccount
from repro.core.efficiency import _USAGE_EPS, EfficiencySample
from repro.metrics.recorder import MetricsRecorder
from repro.workloads.job import TrainingJob
from repro.simcore.engine import Simulator
from repro.simcore.events import (
    PRIORITY_EXIT,
    PRIORITY_SAMPLE,
    Event,
    EventKind,
)

__all__ = [
    "FleetTicker",
    "alloc_kernel",
    "fleet_reallocate",
    "fleet_sample",
    "fleet_sample_streaming",
    "fleet_settle",
    "settle_kernel",
]


def _settle_collect(
    workers: list[Worker],
) -> tuple[float, list[tuple[Worker, list, tuple, float, float]]]:
    """Gather the settle-eligible segments, running serial fallbacks.

    Returns ``(now, segments)`` where each segment is ``(worker, active
    containers, footprint arrays, resident memory, dt)``.  Workers that
    need no settlement are stamped in place; dynamic-footprint workers
    settle serially here (identical to serial by definition) and do not
    appear in the result.
    """
    now = workers[0].sim.now
    segments: list[tuple[Worker, list, tuple, float, float]] = []
    for w in workers:
        dt = now - w._last_settle
        if dt <= 0:
            continue
        active = w._active
        if not active:
            w._last_settle = now
            continue
        arrays, mem = w._footprint_state()
        if arrays is None:
            # Dynamic (non-ResourceSpec) footprints: the scalar fallback
            # re-reads each footprint — identical to serial by definition.
            w.settle()
            continue
        if mem is None:  # pragma: no cover - arrays imply cached memory
            mem = float(sum(c.job.footprint.memory for c in active))
        segments.append((w, active, arrays, mem, dt))
    return now, segments


def _settle_payload(
    segments: list[tuple[Worker, list, tuple, float, float]],
) -> tuple[np.ndarray, ...]:
    """Pack the segments' numeric inputs into plain arrays.

    The result contains only ``float64`` ndarrays — picklable, free of
    object references — so a sharded executor can ship it to a worker
    process and run :func:`settle_kernel` there.
    """
    lens = [len(active) for _, active, _, _, _ in segments]
    allocs_p = np.concatenate([w._allocs for w, _, _, _, _ in segments])
    demands_p = np.concatenate([a[0] for _, _, a, _, _ in segments])
    mems_p = np.concatenate([a[1] for _, _, a, _, _ in segments])
    blkios_p = np.concatenate([a[2] for _, _, a, _, _ in segments])
    netios_p = np.concatenate([a[3] for _, _, a, _, _ in segments])
    effs_p = np.repeat(
        np.array(
            [
                w.contention.efficiency(len(active), mem)
                for w, active, _, mem, _ in segments
            ],
            dtype=np.float64,
        ),
        lens,
    )
    dts_p = np.repeat(
        np.array([dt for _, _, _, _, dt in segments], dtype=np.float64), lens
    )
    return allocs_p, demands_p, mems_p, blkios_p, netios_p, effs_p, dts_p


def settle_kernel(
    payload: tuple[np.ndarray, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Pure numeric half of the fleet settle: arrays in, arrays out.

    Same per-element IEEE ops, same order, as ``Worker.settle()``:
    ``work = (alloc * eff) * dt``; contribution rows likewise.  No
    simulation state is touched, so the kernel is process-safe — a
    forked pool worker computes bit-identical results (same numpy, same
    element-wise operations on the same inputs).
    """
    allocs_p, demands_p, mems_p, blkios_p, netios_p, effs_p, dts_p = payload
    work = allocs_p * effs_p * dts_p
    rates = np.minimum(allocs_p, demands_p)
    scales = rates / demands_p
    contrib = np.empty((allocs_p.shape[0], 4), dtype=np.float64)
    contrib[:, 0] = rates * dts_p
    contrib[:, 1] = mems_p * dts_p
    contrib[:, 2] = blkios_p * scales * dts_p
    contrib[:, 3] = netios_p * scales * dts_p
    return work, contrib


def fleet_settle(workers: list[Worker]) -> None:
    """Settle every worker up to now in one packed numpy pass.

    Equivalent to ``for w in workers: w.settle()`` bit for bit: the
    element-wise work/usage arithmetic is identical per element, only
    batched over a packed arena instead of per-worker arrays.  Workers
    whose footprints are not plain ``ResourceSpec`` objects (scalar
    fallback) or that are alone in needing settlement just use their own
    ``settle()``.
    """
    if not workers:
        return
    now, segments = _settle_collect(workers)
    if not segments:
        return
    if len(segments) == 1:
        segments[0][0].settle()
        return
    work, contrib = settle_kernel(_settle_payload(segments))
    _settle_apply(now, segments, work.tolist(), contrib)


def _settle_apply(
    now: float,
    segments: list[tuple[Worker, list, tuple, float, float]],
    work_list: list[float],
    contrib: np.ndarray,
) -> None:
    """Apply a settle kernel's rows per container, in segment order."""
    lens = [len(active) for _, active, _, _, _ in segments]
    off = 0
    for (w, active, _, _, dt), n in zip(segments, lens):
        end = off + n
        for container, delivered, row in zip(
            active, work_list[off:end], contrib[off:end]
        ):
            # Inlined Job.advance / CgroupAccount.settle_add hot paths
            # (same guards, same arithmetic); subclasses that override
            # either method keep their own implementation.
            job = container.job
            if type(job) is TrainingJob and delivered >= 0:
                job.work_done = min(job.total_work, job.work_done + delivered)
            else:
                job.advance(delivered)
            acct = container.cgroup
            if type(acct) is CgroupAccount:
                acct._integral += row
                acct.last_update += dt
                cp = acct._n
                if cp == acct._cp_t.shape[0]:
                    acct._grow()
                    cp = acct._n
                acct._cp_t[cp] = acct.last_update
                acct._cp_v[cp] = acct._integral
                acct._n = cp + 1
            else:
                acct.settle_add(dt, row)
        w._last_settle = now
        off = end


def _realloc_collect(
    workers: list[Worker],
) -> tuple[float, list[tuple[Worker, tuple]]]:
    """Run each worker's ``_realloc_begin``, collecting allocator inputs.

    Same-instant already-poked workers are skipped (poke coalescing);
    jitter draws stay on the per-worker streams in the per-worker order
    because ``_realloc_begin`` runs serially per worker here.
    """
    now = workers[0].sim.now
    pending: list[tuple[Worker, tuple]] = []
    for w in workers:
        if (now, w.version) == w._last_poke:
            continue
        inputs = w._realloc_begin()
        if inputs is None:
            w._last_poke = (now, w.version)
            continue
        pending.append((w, inputs))
    return now, pending


def _alloc_pending(pending: list[tuple[Worker, tuple]]) -> list:
    """Allocate every pending worker's pool, grouped by allocation mode.

    One :meth:`~repro.containers.allocator.CpuAllocator.allocate_segmented`
    call per mode (singleton groups use plain :meth:`allocate`); results
    come back in *pending* order.
    """
    by_mode: dict = {}
    for idx, (w, _) in enumerate(pending):
        by_mode.setdefault(w.allocator.mode, []).append(idx)
    allocs: list = [None] * len(pending)
    for idxs in by_mode.values():
        if len(idxs) == 1:
            i = idxs[0]
            w, (limits, demands, weights, _) = pending[i]
            allocs[i] = w.allocator.allocate(
                w.capacity, limits, demands, weights
            )
        else:
            entries = [pending[i] for i in idxs]
            segmented = entries[0][0].allocator.allocate_segmented(
                [w.capacity for w, _ in entries],
                [inp[0] for _, inp in entries],
                [inp[1] for _, inp in entries],
                [inp[2] for _, inp in entries],
            )
            for i, alloc in zip(idxs, segmented):
                allocs[i] = alloc
    return allocs


def _alloc_payload(pending: list[tuple[Worker, tuple]]):
    """Plain-data form of the pending allocator inputs, or ``None``.

    Only exact :class:`~repro.containers.allocator.CpuAllocator`
    instances are representable — a subclass may carry state the child
    process cannot see, so its presence forces the in-process path.
    The payload mirrors exactly what :func:`_alloc_pending` reads:
    ``(mode, capacity, limits, demands, weights)`` per pending worker.
    """
    from repro.containers.allocator import CpuAllocator

    rows = []
    for w, (limits, demands, weights, _) in pending:
        if type(w.allocator) is not CpuAllocator:
            return None
        rows.append((w.allocator.mode, w.capacity, limits, demands, weights))
    return rows


def alloc_kernel(payload: list) -> list:
    """Run the grouped allocation from a plain-data payload.

    The exact logic of :func:`_alloc_pending` — group by mode, one
    segmented call per group, singletons take ``allocate`` — against
    fresh :class:`CpuAllocator` instances, whose behaviour is a pure
    function of ``(mode, inputs)``.  Process-safe: equal inputs on a
    forked worker yield equal bits.
    """
    from repro.containers.allocator import CpuAllocator

    by_mode: dict = {}
    for idx, (mode, _, _, _, _) in enumerate(payload):
        by_mode.setdefault(mode, []).append(idx)
    allocs: list = [None] * len(payload)
    for mode, idxs in by_mode.items():
        allocator = CpuAllocator(mode)
        if len(idxs) == 1:
            i = idxs[0]
            _, capacity, limits, demands, weights = payload[i]
            allocs[i] = allocator.allocate(capacity, limits, demands, weights)
        else:
            entries = [payload[i] for i in idxs]
            segmented = allocator.allocate_segmented(
                [row[1] for row in entries],
                [row[2] for row in entries],
                [row[3] for row in entries],
                [row[4] for row in entries],
            )
            for i, alloc in zip(idxs, segmented):
                allocs[i] = alloc
    return allocs


def fleet_reallocate(workers: list[Worker]) -> None:
    """Reallocate every worker's pool via one segmented allocation.

    Equivalent to ``for w in workers: w.poke()``'s reallocation half:
    same-instant already-poked workers are skipped (poke coalescing),
    each participating worker runs its own ``_realloc_begin`` (so jitter
    draws stay on the per-worker streams in the per-worker order), the
    allocator inputs go through one
    :meth:`~repro.containers.allocator.CpuAllocator.allocate_segmented`
    call per allocation mode, and ``_realloc_finish`` applies shares and
    reschedules exits per worker.
    """
    if not workers:
        return
    now, pending = _realloc_collect(workers)
    if not pending:
        return
    _finish_packed(now, pending, _alloc_pending(pending))


def _finish_packed(now: float, pending: list, allocs: list) -> None:
    """Apply allocations and reschedule exits, packed across workers.

    Equivalent to ``for (w, inputs), alloc in zip(pending, allocs):
    w._realloc_finish(alloc, mem)`` — the per-container projection
    arithmetic of :meth:`Worker._reschedule_exits` (``rate = alloc ·
    eff`` then ``t_finish = now + remaining / rate``) is two element-wise
    IEEE ops, so it broadcasts over the packed fleet bit-identically;
    the per-container event bookkeeping (keep/cancel/push, in pending
    order, so queue sequence numbers — the heap tie-break — match the
    serial path exactly) stays Python.  Workers whose resident memory is
    unknown (dynamic footprints) take the serial finish in place, which
    recomputes memory itself.
    """
    pk: list[tuple[int, Worker, np.ndarray, float]] = [
        (i, w, alloc, mem)
        for i, ((w, (_, _, _, mem)), alloc) in enumerate(zip(pending, allocs))
        if mem is not None and alloc.shape[0] > 0
    ]
    offsets: dict[int, int] = {}
    if len(pk) > 1:
        lens = [alloc.shape[0] for _, _, alloc, _ in pk]
        allocs_p = np.concatenate([alloc for _, _, alloc, _ in pk])
        effs_p = np.repeat(
            np.array(
                [
                    w.contention.efficiency(n, mem)
                    for (_, w, _, mem), n in zip(pk, lens)
                ],
                dtype=np.float64,
            ),
            lens,
        )
        # Inlined Job.remaining_work (same expression); overriding
        # workload classes keep their own implementation.
        rem_p = np.array(
            [
                max(0.0, j.total_work - j.work_done)
                if type(j) is TrainingJob
                else j.remaining_work()
                for _, w, _, _ in pk
                for j in (c.job for c in w._active)
            ],
            dtype=np.float64,
        )
        # Same two ops per element as the serial projection: the product
        # first, then one division folded into the finish-time sum.
        rates_p = allocs_p * effs_p
        if rates_p.min() > 0.0:
            tfin_p = now + rem_p / rates_p
        else:
            div = np.zeros_like(rates_p)
            np.divide(rem_p, rates_p, out=div, where=rates_p > 0.0)
            tfin_p = now + div  # starved entries are skipped below
        rates_l = rates_p.tolist()
        tfin_l = tfin_p.tolist()
        allocs_l = allocs_p.tolist()
        off = 0
        for (i, _, _, _), n in zip(pk, lens):
            offsets[i] = off
            off += n
    for i, ((w, (_, _, _, mem)), alloc) in enumerate(zip(pending, allocs)):
        off = offsets.get(i)
        if off is None:
            w._realloc_finish(alloc, mem)
            w._last_poke = (now, w.version)
            continue
        end = off + alloc.shape[0]
        w._allocs = alloc
        handles = w._exit_handles
        tol = w.reschedule_tolerance
        push = w.sim.queue.push
        cancel = w.sim.cancel
        on_exit = w._on_exit_event
        seen: set[int] = set()
        for container, share, rate, t_finish in zip(
            w._active, allocs_l[off:end], rates_l[off:end], tfin_l[off:end]
        ):
            container.current_alloc = share
            cid = container.cid
            if rate <= 0:
                old = handles.pop(cid, None)
                if old is not None:
                    cancel(old)
                continue
            seen.add(cid)
            old = handles.get(cid)
            if old is not None and old.alive:
                delta = t_finish - old.event.time
                if delta == 0.0 or (tol > 0.0 and abs(delta) <= tol):
                    continue
                cancel(old)
            handles[cid] = push(
                Event(
                    t_finish,
                    EventKind.CONTAINER_EXIT,
                    on_exit,
                    PRIORITY_EXIT,
                    cid,
                )
            )
        if len(handles) > len(seen):
            for cid in [c for c in handles if c not in seen]:
                cancel(handles.pop(cid))
        w._last_poke = (now, w.version)


def _series_append(series, t: float, value: float) -> None:
    """Inlined :meth:`StepSeries.append` hot path (strictly later time).

    Tick times strictly increase per container, so the overwrite and
    non-monotonic branches are cold; anything not a plain append is
    delegated back to the method itself, keeping one source of truth for
    the tolerance semantics.
    """
    last = series._last_t
    if last is not None and t <= last + 1e-12:
        series.append(t, value)
        return
    series._times.append(t)
    series._values.append(float(value))
    series._last_t = t
    series._cache = None


def fleet_sample(
    recorders: list[MetricsRecorder],
    win_cache: dict[int, tuple[float, list[float]]],
    static_cache: dict | None = None,
) -> int:
    """One packed sampling pass replacing each recorder's ``sample_now``.

    Bit-identical to ``for r in recorders: r.sample_now();
    r._schedule_sample()`` run after the fleet settle/reallocate/observe
    pre-passes (under which each ``poke()`` is a no-op and each
    ``observe()`` a cache hit):

    * Window ends equal the live account counters — the serial path's
      ``_integral_at(now)`` takes its ``t >= last_update`` fast path and
      returns exactly ``_integral``.
    * Window starts reuse the previous fused tick's end snapshot when
      the subscriber window matches (*win_cache*, the fleet-level
      analogue of the account-level snapshot memo), and fall back to the
      same :meth:`CgroupAccount._integral_at` the serial memo miss runs
      — first samples, post-migration windows and pruned-floor clamps
      all take the fallback.
    * The packed mean ``(end − start) / Δt`` broadcasts over the stacked
      rows: per element the same subtract and divide as
      :meth:`CgroupAccount.window_mean_cached`.
    * Per-container state advances through inlined replicas of the
      serial code (``StepSeries.append`` via :func:`_series_append`,
      ``EfficiencyHistory.observe`` with the shared ``_USAGE_EPS`` and
      :class:`EfficiencySample`), under the same guards: zero-length
      windows skip the container entirely, the first evaluation reading
      only seeds the baseline, and growth points append only for
      complete two-point samples.

    The account-level snapshot memo is *not* populated — its entries are
    deterministically recomputable, so any other observer (e.g.
    FlowCon's monitor) recomputes identical values on its own schedule.
    Returns the number of window means computed (instrumentation).
    """
    if static_cache is None:
        static_cache = {}
    recs = []
    total = 0
    now = recorders[0].worker.sim.now
    for r in recorders:
        # The bus pass is bypassed: the fleet settle already settled the
        # worker (the bus's settle would no-op), samples fire last at any
        # instant so nothing reads the bus cache afterwards, and E(t) is
        # a pure function of job state — recomputing it below yields the
        # bits a same-instant bus cache hit would have returned.
        #
        # Per-(recorder, container) lookups — trace series, account,
        # growth history — are invariant between runtime-table versions,
        # so they ride a version-keyed cache; attach/detach/crash bumps
        # the version and rebuilds (creating traces for new containers
        # exactly where the serial observe loop would).
        rv = r.worker.runtime.version
        cached = static_cache.get(r)
        if cached is not None and cached[0] == rv:
            statics, containers, res_idx = cached[1], cached[2], cached[3]
        else:
            containers = r.worker.running_containers()
            traces = r.traces
            histories = r._tracker._histories
            res_idx = r._tracker.resource.index
            statics = []
            for container in containers:
                cid = container.cid
                trace = traces.get(cid)
                if trace is None:
                    trace = r._trace_for(container)
                statics.append(
                    [
                        trace.cpu_usage,
                        trace.cpu_limit,
                        trace.eval_value,
                        trace.growth,
                        container,
                        container.cgroup,
                        cid,
                        histories.get(cid),
                    ]
                )
            static_cache[r] = (rv, statics, containers, res_idx)
        # Replicate the bus bookkeeping the bypassed ``observe()`` call
        # would have done: advance the pass cache key and counter, and
        # run the amortized prune on the serial cadence — *before* the
        # windows below are read, exactly where ``observe()`` prunes.
        # Pass-count fidelity matters because a post-migration window
        # clamp reads ``history_floor``, whose value depends on when
        # pruning ran; any observer that fired earlier this instant
        # already advanced the key, in which case the serial recorder's
        # observe would have been a cache hit and done none of this.
        worker = r.worker
        bus = worker.obsbus
        key = (now, worker.version)
        if bus._cache_key != key:
            bus._cache_key = key
            # Samples fire last at any instant, so nothing reads the
            # cache before time moves and misses the key; cleared so a
            # stale same-instant eval can never be reused.
            bus._cache = []
            bus.passes += 1
            samplers = bus._samplers
            if bus.prune and samplers and bus.passes % 16 == 0:
                # Fused replica of ObservationBus._prune over the same
                # container set observe() would have built.
                for container in containers:
                    cid = container.cid
                    created = container.created_at
                    floor = now
                    for s in samplers:
                        prev = s._last_sample.get(cid, created)
                        if prev < floor:
                            floor = prev
                            if floor <= created:
                                break
                    if floor > created:
                        container.cgroup.prune_before(floor)
        last = r._sampler._last_sample
        entries = []
        for st in statics:
            t_prev = last.get(st[6])
            if t_prev is None or t_prev < st[5].history_floor:
                # The clamp BusSampler.sample applies: a first sample's
                # window starts at the account floor (creation, or the
                # pruned floor after a migration), and a *held-over*
                # window can fall below the floor when the container
                # migrated away, the other node's bus pruned past this
                # recorder's last window, and the container migrated
                # back.  On a same-bus sampler the floor never exceeds
                # the recorded window (it is the minimum over samplers'
                # last windows, including this one's), so the second
                # test only fires on post-migration staleness.
                t_prev = st[5].history_floor
            if now <= t_prev:
                continue  # zero-length window: duplicate poll, skip
            entries.append((st, t_prev))
        recs.append((r, last, containers, entries, res_idx))
        total += len(entries)
    if total:
        ends = np.empty((total, 4), dtype=np.float64)
        starts = np.empty((total, 4), dtype=np.float64)
        dts = np.empty((total, 1), dtype=np.float64)
        i = 0
        for _, _, _, entries, _ in recs:
            for st, t_prev in entries:
                acct = st[5]
                ends[i] = acct._integral
                cached = win_cache.get(st[6])
                if cached is not None and cached[0] == t_prev:
                    starts[i] = cached[1]
                else:
                    starts[i] = acct._integral_at(t_prev)
                dts[i, 0] = now - t_prev
                i += 1
        means_l = ((ends - starts) / dts).tolist()
        ends_l = ends.tolist()
        i = 0
        t = now
        for r, last, _, entries, res_idx in recs:
            tracker = r._tracker
            for st, t_prev in entries:
                row = means_l[i]
                end_row = ends_l[i]
                i += 1
                container = st[4]
                cid = st[6]
                last[cid] = t
                win_cache[cid] = (t, end_row)
                # The four series appends below are _series_append bodies
                # inlined (hottest loop in the engine): plain append when
                # strictly later, delegation to StepSeries.append for the
                # overwrite/tolerance cases.
                series = st[0]
                lt = series._last_t
                if lt is not None and t <= lt + 1e-12:
                    series.append(t, row[0])
                else:
                    series._times.append(t)
                    series._values.append(float(row[0]))
                    series._last_t = t
                    series._cache = None
                series = st[1]
                lt = series._last_t
                if lt is not None and t <= lt + 1e-12:
                    series.append(t, container.limits.cpu)
                else:
                    series._times.append(t)
                    series._values.append(float(container.limits.cpu))
                    series._last_t = t
                    series._cache = None
                try:
                    ev_val = container.job.eval_value()
                except Exception:  # job may not expose E(t)
                    ev_val = None
                if ev_val is None:
                    continue
                series = st[2]
                lt = series._last_t
                if lt is not None and t <= lt + 1e-12:
                    series.append(t, ev_val)
                else:
                    series._times.append(t)
                    series._values.append(float(ev_val))
                    series._last_t = t
                    series._cache = None
                hist = st[7]
                if hist is None:
                    hist = tracker.history(cid)
                    st[7] = hist
                # Mirror of EfficiencyHistory.observe (same guards and
                # arithmetic; shared _USAGE_EPS / EfficiencySample).
                last_time = hist._last_time
                if last_time is None:
                    hist._last_time = t
                    hist._last_eval = ev_val
                    continue
                if t <= last_time:
                    continue
                p = abs(ev_val - hist._last_eval) / (t - last_time)
                usage = row[res_idx]
                g = p / usage if usage >= _USAGE_EPS else 0.0
                hist.samples.append(EfficiencySample(t, ev_val, usage, p, g))
                if g > hist.peak_growth:
                    hist.peak_growth = g
                hist._last_time = t
                hist._last_eval = ev_val
                series = st[3]
                lt = series._last_t
                if lt is not None and t <= lt + 1e-12:
                    series.append(t, g)
                else:
                    series._times.append(t)
                    series._values.append(float(g))
                    series._last_t = t
                    series._cache = None
    # Exited containers leave stale snapshots behind; a deterministic
    # reset is safe (every snapshot is recomputable via _integral_at).
    if len(win_cache) > 4 * total + 1024:
        win_cache.clear()
    # Reschedule each recorder's next tick exactly as _schedule_sample
    # would: same absolute time (now + interval, interval > 0 so the
    # past-guard in Simulator.schedule can never fire), same kind,
    # priority and payload, pushed in recorder (event pop) order so
    # queue sequence numbers tie-break identically to the serial path.
    push = recorders[0].worker.sim.queue.push
    for r, _, _, _, _ in recs:
        r._handle = push(
            Event(
                now + r.sample_interval,
                EventKind.METRIC_SAMPLE,
                r._on_sample,
                PRIORITY_SAMPLE,
                r,
            )
        )
    return total


def fleet_sample_streaming(recorders: list[MetricsRecorder]) -> int:
    """Packed sampling pass for *streaming* recorders.

    A streaming ``sample_now`` keeps no series: its only state changes
    are the bus pass bookkeeping (cache key, pass counter, amortized
    prune) and the sampler's window advance (``_last_sample[cid] =
    now``).  This pass replicates exactly those, under the same guards
    as the dense fused pass — the history-floor clamp and the
    zero-length-window skip mirror :meth:`BusSampler.sample`, whose
    window *advance* happens precisely when the clamped window has
    positive length (the window mean itself is a pure read and is
    dropped, as the dense pass drops the account memo).  Pruning
    cadence therefore stays bit-identical to the serial streaming path.
    Returns the number of windows advanced (instrumentation).
    """
    if not recorders:
        return 0
    total = 0
    now = recorders[0].worker.sim.now
    for r in recorders:
        worker = r.worker
        bus = worker.obsbus
        containers = worker.running_containers()
        key = (now, worker.version)
        if bus._cache_key != key:
            bus._cache_key = key
            bus._cache = []
            bus.passes += 1
            samplers = bus._samplers
            if bus.prune and samplers and bus.passes % 16 == 0:
                for container in containers:
                    cid = container.cid
                    created = container.created_at
                    floor = now
                    for s in samplers:
                        prev = s._last_sample.get(cid, created)
                        if prev < floor:
                            floor = prev
                            if floor <= created:
                                break
                    if floor > created:
                        container.cgroup.prune_before(floor)
        last = r._sampler._last_sample
        for container in containers:
            cid = container.cid
            t_prev = last.get(cid)
            if t_prev is None or t_prev < container.cgroup.history_floor:
                t_prev = container.cgroup.history_floor
            if now <= t_prev:
                continue  # zero-length window: duplicate poll, skip
            last[cid] = now
            total += 1
    push = recorders[0].worker.sim.queue.push
    for r in recorders:
        r._handle = push(
            Event(
                now + r.sample_interval,
                EventKind.METRIC_SAMPLE,
                r._on_sample,
                PRIORITY_SAMPLE,
                r,
            )
        )
    return total


class FleetTicker:
    """Coalesces same-instant sampling ticks into one fused fleet pass.

    Created by the runner when ``SimulationConfig.fleet_mode`` is on.
    :meth:`arm` registers the engine batcher for ``METRIC_SAMPLE``
    events; nothing else needs wiring — the batch handler discovers the
    recorders (and through them the workers) from each event's payload,
    so provisioned, recovered and stopped recorders are handled without
    any lifecycle bookkeeping here.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: Fused pre-passes executed (observability/testing).
        self.fused_batches = 0
        #: Events that arrived through the batcher, fused or not.
        self.batched_events = 0
        #: Window means computed by the packed sampling pass.
        self.fused_samples = 0
        # Fleet-level window-start snapshot cache: cid → (time, integral
        # row at that time), seeded by each fused tick's window ends.
        self._win_cache: dict[int, tuple[float, list[float]]] = {}
        # Per-recorder static sampling entries (trace series, account,
        # history), keyed by recorder and runtime-table version.
        self._static_cache: dict = {}

    def arm(self) -> None:
        """Register the METRIC_SAMPLE batcher on the simulator."""
        self.sim.register_batcher(EventKind.METRIC_SAMPLE, self._on_batch)

    def disarm(self) -> None:
        """Unregister the batcher (events fire serially again)."""
        self.sim.unregister_batcher(EventKind.METRIC_SAMPLE)

    def _on_batch(self, events: list[Event]) -> None:
        # The engine only routes genuine same-instant batches (size ≥ 2)
        # here; lone ticks fire directly on the serial path.
        self.batched_events += len(events)
        fused: set[int] = set()
        recorders: list[MetricsRecorder] = []
        workers: list[Worker] = []
        seen: set[int] = set()
        for ev in events:
            recorder = ev.payload
            if isinstance(recorder, MetricsRecorder) and recorder._started:
                recorders.append(recorder)
                worker = recorder.worker
                if id(worker) not in seen:
                    seen.add(id(worker))
                    workers.append(worker)
        if len(workers) > 1:
            self.fused_batches += 1
            fleet_settle(workers)
            fleet_reallocate(workers)
            dense = [r for r in recorders if not r.streaming]
            streaming = [r for r in recorders if r.streaming]
            if dense:
                self.fused_samples += fleet_sample(
                    dense, self._win_cache, self._static_cache
                )
            if streaming:
                self.fused_samples += fleet_sample_streaming(streaming)
            fused = {id(r) for r in recorders}
        # Fire the remaining events in pop order.  Recorders handled by
        # the fused sampling pass are done — their sampling, tracking and
        # rescheduling already happened exactly as ``_on_sample`` would
        # have — so their events must not fire again.  Stopped recorders'
        # and foreign payloads' events fire normally.
        for ev in events:
            if fused and id(ev.payload) in fused:
                continue
            ev.fire()
