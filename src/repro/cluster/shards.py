"""Sharded single-run execution: worker shards between manager touchpoints.

The paper's §3.1 loop runs independently per worker, and by now every
piece of this reproduction reflects that: worker state is worker-local
(observation bus), the fleet tick is one fused pass over a packed
``(worker, container)`` arena (:mod:`repro.cluster.fleet`), and every
manager↔worker interaction is an enumerable typed message
(:mod:`repro.cluster.fabric`).  The :class:`ShardedExecutor` completes
ROADMAP open item 1's remaining half: it partitions the fleet into N
**shards** and advances each shard's worker-local events — settlement,
reallocation, exit projection, sampling — as an independent slice of the
fused arena, optionally farming the pure numeric kernels out to a
:class:`~concurrent.futures.ProcessPoolExecutor` so one simulation can
use more than one core.

Conservative lookahead window
-----------------------------
Classic conservative PDES: a shard may only run ahead while no event
from outside the shard can influence it.  Worker-local kinds
(``METRIC_SAMPLE``, ``SCHEDULER_TICK``, ``LISTENER_POLL``) touch exactly
one worker's state; everything else — the event forms of the fabric's
:data:`~repro.cluster.fabric.MSG_KINDS` (place → ``JOB_ARRIVAL`` /
``MESSAGE``, exit notification → ``CONTAINER_EXIT`` / ``MESSAGE``, the
detach/attach migration legs → ``CONTAINER_MIGRATION`` / ``MESSAGE``,
provision/retire → ``WORKER_PROVISION`` / ``MESSAGE``, fail/recover →
``WORKER_FAIL`` / ``WORKER_RECOVER`` / ``MESSAGE``) plus ``GENERIC``
(unknown, so assumed coupling) — is **manager-bound**: it can move
containers across shard boundaries.  The window boundary is therefore
``min(next queued manager-bound event, horizon)``, found by the engine's
:meth:`~repro.simcore.engine.Simulator.next_time_of` window hook.  The
executor re-derives the boundary at every fused batch and never commits
work past the current instant, so the window is purely a *dispatch*
signal (whether parallel offload can amortize) — correctness never
depends on its width.  Rescheduled ``CONTAINER_EXIT`` events are
themselves manager-bound, so a reallocation that pulls an exit earlier
always pulls the boundary with it.

Bit-identity
------------
The sharded pass must match the serial engine bit for bit — completion
times, digests, ``events_processed``.  Two properties make that hold:

* **Per-worker state independence at sampling instants** (the fleet
  module's invariant): settle/reallocate/sample touch only their own
  worker's state and RNG stream, so *which shard* computes a worker is
  unobservable.
* **Contiguous shards, applied in order.**  Shards are contiguous
  slices of the batch's worker list (event pop order), and every
  stateful apply — exit reschedules in ``_finish_packed``, next-tick
  pushes in ``fleet_sample`` — runs shard by shard in slice order, so
  the global sequence of event pushes (the heap tie-break) is exactly
  the fused pass's, which is itself pinned bit-identical to serial.
  Only the *pure* kernels (packed settlement arithmetic, grouped
  water-fill allocation) run out of process; a forked worker computes
  the same element-wise IEEE operations on the same arrays, so equal
  inputs yield equal bits.

Parallelism is profitable only when the arena is wide; below
``min_parallel_rows`` (or with ``shards=1``, or a zero-width window, or
a pool that cannot be spawned) the executor falls back to the serial
in-process path, which is the same code the plain
:class:`~repro.cluster.fleet.FleetTicker` runs per shard.
"""

from __future__ import annotations

import os
import resource
from concurrent.futures import ProcessPoolExecutor

from repro.cluster.fleet import (
    FleetTicker,
    _alloc_payload,
    _alloc_pending,
    _finish_packed,
    _realloc_collect,
    _settle_apply,
    _settle_collect,
    _settle_payload,
    alloc_kernel,
    fleet_reallocate,
    fleet_sample,
    fleet_sample_streaming,
    fleet_settle,
    settle_kernel,
)
from repro.cluster.worker import Worker
from repro.errors import ConfigError
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.simcore.events import Event, EventKind

__all__ = [
    "MANAGER_TOUCHPOINTS",
    "WORKER_LOCAL_KINDS",
    "ShardedExecutor",
]

#: Event kinds that touch exactly one worker's state — safe to advance
#: inside a shard without observing the rest of the fleet.
WORKER_LOCAL_KINDS = frozenset(
    {
        EventKind.METRIC_SAMPLE,
        EventKind.SCHEDULER_TICK,
        EventKind.LISTENER_POLL,
    }
)

#: Every event kind that can carry a manager touchpoint — the event
#: forms of the fabric's MSG_KINDS (place, exit, detach/attach,
#: provision/retire, fail/recover all ride these) plus GENERIC, which is
#: unknown and therefore conservatively assumed to couple shards.  The
#: complement of WORKER_LOCAL_KINDS by construction: a new event kind is
#: a shard boundary until proven worker-local.
MANAGER_TOUCHPOINTS = frozenset(EventKind) - WORKER_LOCAL_KINDS


def _shard_slices(n_items: int, shards: int) -> list[slice]:
    """Contiguous, balanced slices: first ``n % shards`` get the extra."""
    shards = min(shards, n_items)
    base, extra = divmod(n_items, shards)
    slices = []
    start = 0
    for i in range(shards):
        end = start + base + (1 if i < extra else 0)
        slices.append(slice(start, end))
        start = end
    return slices


def _shard_kernels(task: dict) -> dict:
    """Run one shard's pure kernels (executes in a pool worker).

    The task carries only plain data (float64 arrays, enum members,
    floats); the result likewise.  State application stays in the
    parent, in shard order.
    """
    out: dict = {}
    settle = task.get("settle")
    if settle is not None:
        out["settle"] = settle_kernel(settle)
    alloc = task.get("alloc")
    if alloc is not None:
        out["alloc"] = alloc_kernel(alloc)
    return out


class ShardedExecutor(FleetTicker):
    """Advance worker shards concurrently between manager touchpoints.

    A drop-in replacement for :class:`~repro.cluster.fleet.FleetTicker`
    armed by the runner when ``SimulationConfig(shards=N)`` with
    ``N > 1``: the same METRIC_SAMPLE batcher, but each fused batch is
    partitioned into up to *shards* contiguous worker slices whose
    settle/reallocate kernels can run on a process pool inside the
    conservative lookahead window.  Bit-identical to both the fused and
    the serial engines (see the module docstring for why).

    Parameters
    ----------
    sim:
        The simulator to arm against.
    shards:
        Target shard count (≥ 1; 1 degenerates to the plain ticker).
    min_parallel_rows:
        Arena width (total active containers in the batch) below which
        the pool is never engaged — IPC costs more than it saves on
        narrow fleets.  ``0`` forces the pool path (tests).
    min_window:
        Minimum conservative-window width (seconds) required to dispatch
        to the pool; a batch whose boundary is at the current instant
        runs in process.
    horizon:
        Optional simulation horizon, folded into the window boundary.
    max_procs:
        Pool size cap; defaults to ``min(shards, os.cpu_count())``.
    """

    def __init__(
        self,
        sim: Simulator,
        shards: int = 2,
        *,
        min_parallel_rows: int = 4096,
        min_window: float = 0.0,
        horizon: float | None = None,
        max_procs: int | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards!r}")
        super().__init__(sim)
        self.shards = int(shards)
        self.min_parallel_rows = int(min_parallel_rows)
        self.min_window = float(min_window)
        self.horizon = horizon
        self._max_procs = max_procs
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        #: Conservative windows derived (one per fused batch).
        self.windows = 0
        #: Sum of finite window widths (seconds).
        self.window_time = 0.0
        #: Widest finite window seen.
        self.max_window = 0.0
        #: Batches with no queued manager-bound event and no horizon.
        self.unbounded_windows = 0
        #: Fused batches that ran the multi-shard path.
        self.shard_passes = 0
        #: Pool round-trips actually dispatched.
        self.pool_dispatches = 0

    # -- lifecycle ---------------------------------------------------------

    def disarm(self) -> None:
        """Unregister the batcher and release the process pool."""
        super().disarm()
        self.close()

    def close(self) -> None:
        """Shut the process pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool_broken:
            return None
        if self._pool is None:
            procs = self._max_procs or min(
                self.shards, os.cpu_count() or 1
            )
            try:
                self._pool = ProcessPoolExecutor(max_workers=procs)
            except (OSError, ValueError):  # pragma: no cover - env-specific
                self._pool_broken = True
                return None
        return self._pool

    # -- window ------------------------------------------------------------

    def lookahead(self) -> float | None:
        """The conservative window boundary: next manager-bound event.

        ``min`` of the earliest queued manager-bound event and the
        horizon; ``None`` when neither exists (the run is draining
        worker-local events only).
        """
        boundary = self.sim.next_time_of(MANAGER_TOUCHPOINTS)
        horizon = self.horizon
        if horizon is not None and (boundary is None or horizon < boundary):
            boundary = horizon
        return boundary

    def _observe_window(self) -> float:
        """Derive this batch's window width, maintaining the stats."""
        self.windows += 1
        boundary = self.lookahead()
        if boundary is None:
            self.unbounded_windows += 1
            return float("inf")
        width = boundary - self.sim.now
        if width < 0.0:
            width = 0.0
        self.window_time += width
        if width > self.max_window:
            self.max_window = width
        return width

    # -- the batch ---------------------------------------------------------

    def _on_batch(self, events: list[Event]) -> None:
        self.batched_events += len(events)
        fused: set[int] = set()
        recorders: list[MetricsRecorder] = []
        workers: list[Worker] = []
        seen: set[int] = set()
        for ev in events:
            recorder = ev.payload
            if isinstance(recorder, MetricsRecorder) and recorder._started:
                recorders.append(recorder)
                worker = recorder.worker
                if id(worker) not in seen:
                    seen.add(id(worker))
                    workers.append(worker)
        if len(workers) > 1:
            self.fused_batches += 1
            width = self._observe_window()
            self._advance_shards(workers, recorders, width)
            fused = {id(r) for r in recorders}
        for ev in events:
            if fused and id(ev.payload) in fused:
                continue
            ev.fire()

    def _advance_shards(
        self,
        workers: list[Worker],
        recorders: list[MetricsRecorder],
        width: float,
    ) -> None:
        n = min(self.shards, len(workers))
        if n <= 1:
            fleet_settle(workers)
            fleet_reallocate(workers)
        else:
            self.shard_passes += 1
            shards_w = [workers[sl] for sl in _shard_slices(len(workers), n)]
            if not self._pooled_advance(shards_w, width):
                # Serial in-process path: the same fleet passes, one
                # contiguous slice at a time, applied in slice order —
                # settle pushes nothing and reallocation pushes exits
                # per worker, so the global push order matches the
                # one-big-pass fused ticker exactly.
                for ws in shards_w:
                    fleet_settle(ws)
                for ws in shards_w:
                    fleet_reallocate(ws)
        # Sampling fires last (and pushes each recorder's next tick), so
        # it stays in process: the window means are one subtract-divide
        # over rows already in cache, far below any IPC break-even.
        # Dense before streaming, shards in order — the fused ticker's
        # recorder order, hence the serial engine's push order.
        dense = [r for r in recorders if not r.streaming]
        streaming = [r for r in recorders if r.streaming]
        if dense:
            for sl in _shard_slices(len(dense), n):
                self.fused_samples += fleet_sample(
                    dense[sl], self._win_cache, self._static_cache
                )
        if streaming:
            for sl in _shard_slices(len(streaming), n):
                self.fused_samples += fleet_sample_streaming(streaming[sl])

    def _pooled_advance(
        self, shards_w: list[list[Worker]], width: float
    ) -> bool:
        """Run the shard kernels on the process pool; ``True`` on success.

        Dispatch requires a window wider than ``min_window`` (a
        manager-bound event at this very instant means the batch is
        about to be interrupted anyway) and an arena of at least
        ``min_parallel_rows`` active containers.  Collection (RNG
        draws, footprint reads) and application (state writes, event
        pushes) always run in the parent, shard by shard in order; only
        the pure kernels travel.
        """
        if not width > self.min_window:
            return False
        rows = sum(len(w._active) for ws in shards_w for w in ws)
        if rows < self.min_parallel_rows:
            return False
        pool = self._ensure_pool()
        if pool is None:
            return False
        # Collect both phases up front (settlement writes job progress
        # and cgroup integrals, which reallocation *collection* never
        # reads — only _finish_packed's remaining-work projection does,
        # and that applies after the settle rows land below).
        settles = [_settle_collect(ws) for ws in shards_w]
        reallocs = [_realloc_collect(ws) for ws in shards_w]
        tasks: list[dict] = []
        inline_allocs: list[bool] = []
        for (_, segments), (_, pending) in zip(settles, reallocs):
            task: dict = {}
            if len(segments) > 1:
                task["settle"] = _settle_payload(segments)
            payload = _alloc_payload(pending) if pending else None
            if payload is not None and len(pending) > 1:
                task["alloc"] = payload
            inline_allocs.append("alloc" not in task)
            tasks.append(task)
        try:
            results = list(pool.map(_shard_kernels, tasks))
            self.pool_dispatches += 1
        except Exception:  # pragma: no cover - spawn/IPC failure paths
            # BrokenProcessPool, fork failure in a restricted sandbox …
            # the kernels are pure, so recomputing inline is exact.
            self._pool_broken = True
            self.close()
            results = [_shard_kernels(task) for task in tasks]
        for (now, segments), res in zip(settles, results):
            if not segments:
                continue
            if len(segments) == 1:
                segments[0][0].settle()
                continue
            work, contrib = res["settle"]
            _settle_apply(now, segments, work.tolist(), contrib)
        for (now, pending), res, inline in zip(
            reallocs, results, inline_allocs
        ):
            if not pending:
                continue
            allocs = _alloc_pending(pending) if inline else res["alloc"]
            _finish_packed(now, pending, allocs)
        return True

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Executor counters for tests, benches and reports."""
        return {
            "shards": self.shards,
            "fused_batches": self.fused_batches,
            "batched_events": self.batched_events,
            "fused_samples": self.fused_samples,
            "windows": self.windows,
            "unbounded_windows": self.unbounded_windows,
            "mean_window": (
                self.window_time / (self.windows - self.unbounded_windows)
                if self.windows > self.unbounded_windows
                else 0.0
            ),
            "max_window": self.max_window,
            "shard_passes": self.shard_passes,
            "pool_dispatches": self.pool_dispatches,
        }

    @staticmethod
    def child_peak_rss_mib() -> float:
        """Peak RSS over reaped child processes (pool workers), in MiB.

        ``getrusage(RUSAGE_CHILDREN)`` is the only portable view of a
        pool worker's memory high-water mark; a parent-only
        ``RUSAGE_SELF`` reading silently misses everything a sharded
        run allocates out of process (see ``bench_perf_million.py``).
        """
        return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(shards={self.shards}, "
            f"batches={self.fused_batches}, passes={self.shard_passes}, "
            f"pool={self.pool_dispatches})"
        )
