"""Pluggable admission policies: who leaves the pending queue first.

The §3.1 manager admits work in two steps: an arrival that finds no
worker with admission headroom joins a *pending queue*, and every
capacity change (container exit, provisioned worker) triggers a drain
pass that places queued jobs until headroom runs out.  Historically the
queue was a hardcoded FIFO deque inside
:class:`~repro.cluster.manager.Manager`; this module makes the *drain
order* the third pluggable policy axis, completing the placement ×
rebalance × admission scheduling matrix.

An :class:`AdmissionPolicy` owns the pending submissions and decides
which one is released next.  Capacity filtering stays in the manager:
policies never see the workers and cannot over-subscribe a node — they
only order the backlog.

Five policies ship:

* :class:`FifoAdmission` (``"fifo"``, the default) — strict arrival
  order.  Structurally the historical deque (``append``/``popleft``),
  so runs are bit-identical to the pre-extraction manager (pinned by
  both golden fixtures).
* :class:`BackfillAdmission` (``"backfill"``) — FIFO with conservative
  backfill: when the head job's memory footprint would overcommit every
  eligible worker, later jobs that *do* fit cleanly may jump it (the
  manager supplies the fit probe, built from the same eligible-worker
  set placement chooses from).  An aging bound caps how many times the
  head can be jumped, so large jobs are delayed but never starved.
* :class:`PriorityAdmission` (``"priority"``) — strict priority classes
  (:attr:`~repro.cluster.submission.JobSubmission.priority`, higher
  first) with FIFO tie-break inside a class.
* :class:`WfqAdmission` (``"wfq"``) — weighted fair queueing across
  tenants, the SLAQ/YARN-style user-level fairness the single FIFO
  could not express.  Each queued job gets a *virtual finish time*
  ``start + 1/weight`` where ``start`` is the later of the system
  virtual time and its tenant's previous finish tag; the job with the
  smallest tag drains first.  Tenants therefore drain in proportion to
  their weights regardless of how many jobs each has backlogged, and
  any tenant with positive weight has a bounded wait: its head job's
  tag is fixed at enqueue while every competitor's tags keep growing.
* :class:`SjfAdmission` (``"sjf"``) — shortest expected remaining work
  first, read from the workload model
  (:meth:`~repro.workloads.job.TrainingJob.remaining_work`, the
  analytic stand-in for expected remaining epochs).  Minimizes mean
  queue delay at the cost of fairness to large jobs.

``wfq`` and ``sjf`` also honour the memory-fit probe: a head whose
footprint fits no eligible worker is jumped by the best-keyed later
job that does fit, under the same ``max_skips`` aging bound as
``backfill``, so key order composes with fit-aware release instead of
idling free memory behind an oversized head.

All policies are deterministic: ties break on a monotonic enqueue
sequence number, so replaying a run with the same seed reproduces every
drain decision bit-for-bit.  Policies hold per-run state, so build a
fresh instance per run — :func:`make_admission` resolves a registry name
(``"fifo"``, ``"backfill"``, ``"priority"``, ``"wfq"``, ``"sjf"``),
which is also what keeps batch tasks picklable: tasks carry the *name*,
each worker process materializes the policy (tenant weights ride the
submissions themselves).
"""

from __future__ import annotations

import abc
import heapq
from collections import deque
from typing import TYPE_CHECKING, Mapping

from repro.errors import ClusterError, ConfigError, UnknownPolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager ← worker)
    from repro.cluster.submission import JobSubmission
    from repro.simcore.engine import Simulator

__all__ = [
    "AdmissionPolicy",
    "FifoAdmission",
    "BackfillAdmission",
    "PriorityAdmission",
    "WfqAdmission",
    "SjfAdmission",
    "ADMISSIONS",
    "make_admission",
]

#: Tenant key used for submissions without an explicit tenant.
DEFAULT_TENANT = "default"


class AdmissionPolicy(abc.ABC):
    """Orders the manager's pending queue.

    The manager calls :meth:`push` for every arrival that finds no
    headroom and :meth:`pop` from its drain passes, one submission per
    free slot, until the queue is empty or headroom runs out.  A policy
    therefore fully owns *release order* but never placement.
    """

    #: Registry/display name ("fifo", "priority", "wfq", "sjf").
    name: str = "admission"

    def bind(self, sim: "Simulator") -> None:
        """Attach to a run's simulator (clock, tracing); optional."""

    @abc.abstractmethod
    def push(self, submission: "JobSubmission") -> None:
        """Enqueue one submission that found no admission headroom."""

    @abc.abstractmethod
    def pop(self) -> "JobSubmission":
        """Release the next submission to place (queue must be non-empty)."""

    def pop_fitting(self, fits) -> "JobSubmission | None":
        """Release the next submission, consulting a fit probe.

        The manager's drain pass calls this with ``fits(submission) ->
        bool``, true when some eligible worker can host the submission
        without memory overcommit.  The default ignores the probe and
        releases :meth:`pop`'s choice unconditionally — the historical
        behaviour, where release order is the policy's alone and
        overcommit is the contention model's problem.  Fit-aware
        policies (:class:`BackfillAdmission`) override this; returning
        ``None`` tells the manager nothing releasable fits and the
        drain pass must stop.
        """
        return self.pop()

    @abc.abstractmethod
    def queued(self) -> list["JobSubmission"]:
        """Pending submissions in current drain order (non-destructive)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pending submissions."""

    def queued_work(self) -> float:
        """Expected remaining CPU-seconds backlogged in the queue.

        The aggregate-progress signal autoscaling consumes: how much
        work the fleet has accepted but not yet started.
        """
        return float(sum(s.job.remaining_work() for s in self.queued()))

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


class FifoAdmission(AdmissionPolicy):
    """Strict arrival order — the historical manager behaviour.

    Exactly the old ``Manager._queue`` deque: ``push`` appends, ``pop``
    pops the left end.  The golden fixtures pin this policy bit-identical
    to the pre-extraction manager.
    """

    name = "fifo"

    def __init__(self) -> None:
        self._queue: deque["JobSubmission"] = deque()

    def push(self, submission: "JobSubmission") -> None:
        self._queue.append(submission)

    def pop(self) -> "JobSubmission":
        if not self._queue:
            raise ClusterError("admission queue is empty")
        return self._queue.popleft()

    def queued(self) -> list["JobSubmission"]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class BackfillAdmission(AdmissionPolicy):
    """FIFO with conservative memory backfill and an anti-starvation bound.

    Drains in arrival order like :class:`FifoAdmission` — until the head
    job fails the manager's fit probe (its memory footprint would
    overcommit every eligible worker).  Then the earliest *later* job
    that does fit cleanly is released instead, so small jobs flow around
    a large head instead of idling free memory behind it.

    Parameters
    ----------
    max_skips:
        How many times the queue head may be jumped before backfill
        suspends (default 16).  Once exhausted, nothing is released
        until the head itself fits: the head waits for at most
        ``max_skips`` backfills plus one clean slot, so no job is
        starved no matter how many small jobs keep arriving.

    The skip budget belongs to the *current head*: it resets whenever
    the head is released (fit or aged-out), never when new work arrives.
    ``backfills`` counts total out-of-order releases (observability).
    """

    name = "backfill"

    def __init__(self, *, max_skips: int = 16) -> None:
        if max_skips < 0:
            raise ConfigError(
                f"max_skips must be >= 0, got {max_skips!r}"
            )
        self._queue: deque["JobSubmission"] = deque()
        self.max_skips = max_skips
        self._head_skips = 0
        #: Out-of-order releases performed so far.
        self.backfills = 0

    def push(self, submission: "JobSubmission") -> None:
        self._queue.append(submission)

    def pop(self) -> "JobSubmission":
        if not self._queue:
            raise ClusterError("admission queue is empty")
        self._head_skips = 0
        return self._queue.popleft()

    def pop_fitting(self, fits) -> "JobSubmission | None":
        queue = self._queue
        if not queue:
            return None
        if fits(queue[0]):
            self._head_skips = 0
            return queue.popleft()
        if self._head_skips >= self.max_skips:
            # The head has been jumped max_skips times: backfill
            # suspends until the head itself fits, so capacity frees in
            # its direction instead of being re-captured by newcomers.
            return None
        for i in range(1, len(queue)):
            if fits(queue[i]):
                self._head_skips += 1
                self.backfills += 1
                submission = queue[i]
                del queue[i]
                return submission
        return None

    def queued(self) -> list["JobSubmission"]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def describe(self) -> str:
        return f"backfill (max_skips={self.max_skips})"


class _HeapAdmission(AdmissionPolicy):
    """Shared machinery for key-ordered policies (priority, wfq, sjf).

    Subclasses provide :meth:`_key`; ties always break on the enqueue
    sequence number, i.e. FIFO within a key class, which is also what
    makes every drain deterministic.

    Setting :attr:`fit_aware` composes the key order with
    :class:`BackfillAdmission`'s memory-fit probe: when the drain-order
    head fails the probe, the best-keyed *later* entry that fits cleanly
    releases instead, bounded by the same ``max_skips`` aging rule so a
    large head is delayed at most ``max_skips`` backfills before the
    drain suspends in its favour.  Key order is preserved among the
    jobs that fit; only non-fitting entries are jumped.
    """

    #: When true, :meth:`pop_fitting` backfills past a non-fitting head
    #: (aging-bounded); when false (default) the probe is ignored.
    fit_aware = False

    def __init__(self, *, max_skips: int = 16) -> None:
        if max_skips < 0:
            raise ConfigError(
                f"max_skips must be >= 0, got {max_skips!r}"
            )
        self._heap: list[tuple] = []
        self._seq = 0
        self.max_skips = max_skips
        self._head_skips = 0
        #: Out-of-order releases performed so far (observability).
        self.backfills = 0

    def _key(self, submission: "JobSubmission") -> tuple:
        raise NotImplementedError

    def push(self, submission: "JobSubmission") -> None:
        heapq.heappush(
            self._heap, (*self._key(submission), self._seq, submission)
        )
        self._seq += 1

    def pop(self) -> "JobSubmission":
        if not self._heap:
            raise ClusterError("admission queue is empty")
        self._head_skips = 0
        return heapq.heappop(self._heap)[-1]

    def _drop_entry(self, entry: tuple) -> "JobSubmission":
        """Remove one non-head entry (linear; backfill is the rare path)."""
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        return entry[-1]

    def pop_fitting(self, fits) -> "JobSubmission | None":
        if not self.fit_aware:
            return self.pop()
        if not self._heap:
            return None
        ordered = sorted(self._heap)
        if fits(ordered[0][-1]):
            # Popping via pop() keeps subclass bookkeeping (wfq's
            # virtual time) on the common path.
            return self.pop()
        if self._head_skips >= self.max_skips:
            # Aged out: nothing releases until the head itself fits,
            # exactly BackfillAdmission's anti-starvation rule.
            return None
        for entry in ordered[1:]:
            if fits(entry[-1]):
                self._head_skips += 1
                self.backfills += 1
                return self._drop_entry(entry)
        return None

    def queued(self) -> list["JobSubmission"]:
        return [entry[-1] for entry in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)


class PriorityAdmission(_HeapAdmission):
    """Strict priority classes, FIFO inside a class.

    Drains the highest :attr:`~repro.cluster.submission.JobSubmission
    .priority` first; equal priorities keep arrival order.  Priority 0
    everywhere (the default) is therefore plain FIFO.
    """

    name = "priority"

    def _key(self, submission: "JobSubmission") -> tuple:
        return (-submission.priority,)


class SjfAdmission(_HeapAdmission):
    """Shortest expected remaining work first.

    Orders by the workload model's expected remaining CPU-seconds at
    enqueue time (jobs in the queue have not started, so this is their
    full expected size).  Classic SJF: minimizes mean wait, may delay
    the largest jobs under sustained pressure.

    Fit-aware: when the shortest job's memory footprint fits no
    eligible worker, the next-shortest job that fits cleanly releases
    instead (aging-bounded — see :class:`_HeapAdmission`).
    """

    name = "sjf"
    fit_aware = True

    def _key(self, submission: "JobSubmission") -> tuple:
        return (submission.job.remaining_work(),)


class WfqAdmission(_HeapAdmission):
    """Weighted fair queueing across tenants (deterministic virtual time).

    Parameters
    ----------
    tenant_weights:
        Optional per-tenant weight overrides.  A tenant not listed uses
        the weight carried by its submissions
        (:attr:`~repro.cluster.submission.JobSubmission.weight`,
        default 1.0).  All weights must be positive.

    Each queued job costs one *virtual slot*; a tenant of weight ``w``
    accrues ``1/w`` of virtual time per queued job, so at any instant
    the tenants' drained-job counts are proportional to their weights.
    The system virtual time advances to each released job's finish tag,
    which prevents an idle tenant from banking credit while keeping the
    whole schedule a pure function of arrival order — deterministic
    under replay, no wall-clock involved.

    Fit-aware: when the smallest-tag job's memory footprint fits no
    eligible worker, the next-smallest tag that fits cleanly releases
    instead (aging-bounded — see :class:`_HeapAdmission`); the virtual
    time still advances to the released job's finish tag, so fairness
    accounting survives out-of-order releases.
    """

    name = "wfq"
    fit_aware = True

    def __init__(
        self, tenant_weights: Mapping[str, float] | None = None
    ) -> None:
        super().__init__()
        weights = dict(tenant_weights) if tenant_weights else {}
        for tenant, weight in weights.items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant weight must be positive, got {tenant}={weight!r}"
                )
        self.tenant_weights = weights
        self._vtime = 0.0
        self._last_finish: dict[str, float] = {}

    def _weight(self, submission: "JobSubmission") -> float:
        tenant = submission.tenant or DEFAULT_TENANT
        return float(self.tenant_weights.get(tenant, submission.weight))

    def _key(self, submission: "JobSubmission") -> tuple:
        tenant = submission.tenant or DEFAULT_TENANT
        start = max(self._vtime, self._last_finish.get(tenant, 0.0))
        finish = start + 1.0 / self._weight(submission)
        self._last_finish[tenant] = finish
        return (finish,)

    def pop(self) -> "JobSubmission":
        if not self._heap:
            raise ClusterError("admission queue is empty")
        self._head_skips = 0
        finish, _seq, submission = heapq.heappop(self._heap)
        if finish > self._vtime:
            self._vtime = finish
        return submission

    def _drop_entry(self, entry: tuple) -> "JobSubmission":
        # A backfilled release still advances the system virtual time
        # to its finish tag — the same rule as an in-order pop — so
        # idle tenants cannot bank credit across a backfill.
        finish = entry[0]
        if finish > self._vtime:
            self._vtime = finish
        return super()._drop_entry(entry)

    def describe(self) -> str:
        if not self.tenant_weights:
            return "wfq (weights from submissions)"
        weights = ", ".join(
            f"{t}={w:g}" for t, w in sorted(self.tenant_weights.items())
        )
        return f"wfq ({weights})"


#: Registry of admission policies by name, for CLI flags and batch tasks.
ADMISSIONS: dict[str, type[AdmissionPolicy]] = {
    "fifo": FifoAdmission,
    "backfill": BackfillAdmission,
    "priority": PriorityAdmission,
    "wfq": WfqAdmission,
    "sjf": SjfAdmission,
}


def make_admission(
    admission: str | AdmissionPolicy | None,
    *,
    tenant_weights: Mapping[str, float] | None = None,
) -> AdmissionPolicy:
    """Resolve a policy name (or pass through an instance) to a policy.

    ``None`` means the historical default, :class:`FifoAdmission`.
    ``tenant_weights`` applies to the ``"wfq"`` policy (it is an error
    to combine it with any other name or with a ready-made instance).
    """
    if isinstance(admission, AdmissionPolicy):
        if tenant_weights:
            raise ClusterError(
                "tenant_weights cannot be combined with a policy instance; "
                "construct WfqAdmission(tenant_weights=...) directly"
            )
        return admission
    if admission is None:
        admission = "fifo"
    try:
        cls = ADMISSIONS[admission]
    except (KeyError, TypeError):
        raise UnknownPolicyError(
            f"unknown admission {admission!r}; choose from {sorted(ADMISSIONS)}"
        ) from None
    if tenant_weights:
        if cls is not WfqAdmission:
            raise ClusterError(
                f"tenant_weights only applies to admission='wfq', "
                f"got {admission!r}"
            )
        return WfqAdmission(tenant_weights=tenant_weights)
    return cls()
