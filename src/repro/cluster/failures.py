"""Failure injection and durable recovery for the cluster layer.

The paper's manager/worker split (§3.1) assumes workers never die; real
fleets do not.  This module adds a fifth policy axis — *failures* — next to
admission, placement, rebalancing and autoscaling:

* A :class:`FailureInjector` turns a seeded RNG plus the initial fleet into
  a deterministic **fault plan**: a list of :class:`WorkerFault` records
  (fail-stop crash, crash-with-recovery after a restart delay, fail-slow
  capacity degradation) that the :class:`~repro.cluster.manager.Manager`
  schedules as ``WORKER_FAIL`` events.
* A :class:`DurabilityModel` decides how much of an orphaned container's
  work survives its worker's crash: ``lost`` restarts from zero,
  ``checkpoint`` resumes from the last periodic snapshot and pays a
  restore delay proportional to the job's memory footprint (the same
  footprint-cost model live migration uses).

Both are pluggable through string specs — ``"rolling"``,
``"rolling:checkpoint"``, ``"az_outage:checkpoint(60)"`` — so every entry
point (``SimulationConfig.failures``, ``run_cluster(failures=)``, batch
``RunTask``, CLI ``--failures``) shares one grammar.  ``"none"`` is
short-circuited by the manager exactly like the other axes, keeping the
no-failure path bit-identical to a build without this module.
"""

from __future__ import annotations

import abc
import math
import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError, UnknownPolicyError
from repro.cluster.rebalance import _footprint_delay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.manager import Manager
    from repro.containers.container import Container
    from repro.simcore.engine import Simulator

__all__ = [
    "WorkerFault",
    "DurabilityModel",
    "LostDurability",
    "CheckpointDurability",
    "DURABILITIES",
    "make_durability",
    "FailureInjector",
    "NoFailures",
    "ScriptedFailures",
    "RandomFailures",
    "RollingRestart",
    "AzOutage",
    "SlowNode",
    "FAILURES",
    "make_failures",
]

_FAULT_KINDS = ("crash", "slow")


@dataclass(frozen=True)
class WorkerFault:
    """One injected fault against one worker.

    Parameters
    ----------
    worker:
        Name of the victim node.  Faults against names no longer in the
        fleet when they fire (already crashed, autoscale-retired) are
        silently dropped — a chaos plan races real cluster dynamics.
    time:
        Absolute simulation time at which the fault fires.
    kind:
        ``"crash"`` (fail-stop: the node vanishes with everything on it)
        or ``"slow"`` (fail-slow: capacity degrades but containers live).
    recover_after:
        Seconds until the node rejoins at full health; ``None`` means the
        fault is permanent.
    capacity_factor:
        For ``"slow"`` faults, the fraction of capacity that remains.
    """

    worker: str
    time: float
    kind: str = "crash"
    recover_after: float | None = None
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.time < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.time!r}")
        if self.recover_after is not None and self.recover_after <= 0:
            raise ConfigError(
                f"recover_after must be positive, got {self.recover_after!r}"
            )
        if self.kind == "slow" and not 0.0 < self.capacity_factor < 1.0:
            raise ConfigError(
                "capacity_factor must lie in (0, 1) for slow faults, "
                f"got {self.capacity_factor!r}"
            )


# ---------------------------------------------------------------------------
# Durability models
# ---------------------------------------------------------------------------


class DurabilityModel(abc.ABC):
    """How much of an orphaned container's work survives a crash."""

    name = "durability"

    def bind(self, manager: "Manager") -> None:
        """Attach to *manager* before the simulation starts (optional)."""

    @abc.abstractmethod
    def on_crash(self, container: "Container") -> tuple[float, float]:
        """Resolve an orphan: return ``(resume_work, restore_delay)``.

        ``resume_work`` is the CPU-seconds of job progress that survive
        (the job is rolled back to it); ``restore_delay`` is how long the
        re-queued submission waits before re-arriving at admission.
        """

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


class LostDurability(DurabilityModel):
    """No durability: a crash restarts the job from zero, immediately."""

    name = "lost"

    def on_crash(self, container: "Container") -> tuple[float, float]:
        return (0.0, 0.0)


class CheckpointDurability(DurabilityModel):
    """Periodic checkpoints: resume from the last snapshot, pay a restore.

    Every ``interval`` seconds the model settles the fleet and snapshots
    ``work_done`` for every running (or migrating) container; snapshots of
    departed containers are pruned in the same pass so memory stays
    bounded by the live population.  On crash the orphan resumes from its
    last snapshot — losing at most one interval of progress — and pays the
    same memory-footprint restore delay that live migration charges
    (:data:`~repro.cluster.rebalance.FOOTPRINT_DELAY_SCALE` seconds per
    unit of RAM).

    The snapshot loop self-terminates: it stops rescheduling once nothing
    is pending, queued, in flight, or running.  That is safe because a
    crash can only orphan *running* containers — while any exist, the loop
    is still armed.
    """

    name = "checkpoint"

    def __init__(self, interval: float = 30.0) -> None:
        if interval <= 0:
            raise ConfigError(
                f"checkpoint interval must be positive, got {interval!r}"
            )
        self.interval = float(interval)
        self._checkpoints: dict[int, float] = {}
        self._manager: "Manager | None" = None

    def bind(self, manager: "Manager") -> None:
        self._checkpoints.clear()
        self._manager = manager
        manager.sim.schedule_in(self.interval, self._on_snapshot)

    def checkpointed_work(self, cid: int) -> float:
        """Last snapshotted ``work_done`` for *cid* (0.0 if never seen)."""
        return self._checkpoints.get(cid, 0.0)

    def _on_snapshot(self, _event) -> None:
        manager = self._manager
        assert manager is not None
        live: set[int] = set(manager.inflight_cids())
        for worker in manager.workers:
            worker.settle()
            for container in worker.running_containers():
                self._checkpoints[container.cid] = container.job.work_done
                live.add(container.cid)
        for cid in [c for c in self._checkpoints if c not in live]:
            del self._checkpoints[cid]
        if (
            live
            or manager.pending > 0
            or manager.queue_len > 0
            or manager.in_flight > 0
        ):
            manager.sim.schedule_in(self.interval, self._on_snapshot)

    def on_crash(self, container: "Container") -> tuple[float, float]:
        resume = self._checkpoints.get(container.cid, 0.0)
        return (resume, _footprint_delay(container))

    def describe(self) -> str:
        return f"checkpoint({self.interval:g}s)"


DURABILITIES: dict[str, type[DurabilityModel]] = {
    "lost": LostDurability,
    "checkpoint": CheckpointDurability,
}

_CALL_RE = re.compile(r"^(\w+)\((.*)\)$")


def make_durability(
    durability: DurabilityModel | str | None,
) -> DurabilityModel:
    """Resolve a durability spec: instance, ``None`` (⇒ lost), or a string
    like ``"lost"``, ``"checkpoint"``, ``"checkpoint(60)"``."""
    if durability is None:
        return LostDurability()
    if isinstance(durability, DurabilityModel):
        return durability
    if not isinstance(durability, str):
        raise UnknownPolicyError(
            f"unknown durability {durability!r}; "
            f"choose from {sorted(DURABILITIES)}"
        )
    name, arg = durability, None
    match = _CALL_RE.match(durability.strip())
    if match:
        name, arg = match.group(1), match.group(2)
    cls = DURABILITIES.get(name.strip())
    if cls is None:
        raise UnknownPolicyError(
            f"unknown durability {durability!r}; "
            f"choose from {sorted(DURABILITIES)}"
        )
    if arg is None:
        return cls()
    if cls is not CheckpointDurability:
        raise ConfigError(f"durability {name!r} takes no argument")
    try:
        interval = float(arg)
    except ValueError:
        raise ConfigError(
            f"checkpoint interval must be a number, got {arg!r}"
        ) from None
    return CheckpointDurability(interval=interval)


# ---------------------------------------------------------------------------
# Failure injectors
# ---------------------------------------------------------------------------


class FailureInjector(abc.ABC):
    """Turns the initial fleet plus a seeded RNG into a fault plan.

    Subclasses implement :meth:`plan`; :meth:`bind` (called once by the
    manager during construction) binds the durability model and schedules
    every planned fault as a ``WORKER_FAIL`` event.  Plans are derived
    from the simulator's dedicated ``"failures"`` RNG stream, so the same
    seed always injects the same chaos regardless of workload.
    """

    name = "failures"

    def __init__(
        self, *, durability: DurabilityModel | str | None = None
    ) -> None:
        self.durability = make_durability(durability)

    def bind(self, sim: "Simulator", manager: "Manager") -> None:
        """Bind durability and schedule the fault plan on *manager*."""
        self.durability.bind(manager)
        for fault in self.plan(sim, manager):
            manager.schedule_fault(fault)

    @abc.abstractmethod
    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        """Derive the deterministic fault plan for this run."""

    def describe(self) -> str:
        """Human-readable parameterization."""
        return f"{self.name}+{self.durability.describe()}"


class NoFailures(FailureInjector):
    """Fair weather: no faults at all (the short-circuited default)."""

    name = "none"

    def bind(self, sim: "Simulator", manager: "Manager") -> None:
        """Nothing to schedule; durability stays unbound."""

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        return []

    def describe(self) -> str:
        return "none"


class ScriptedFailures(FailureInjector):
    """An explicit, caller-supplied fault plan (tests, bespoke chaos)."""

    name = "scripted"

    def __init__(
        self,
        faults,
        *,
        durability: DurabilityModel | str | None = None,
    ) -> None:
        super().__init__(durability=durability)
        self.faults = list(faults)

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        return list(self.faults)


class RandomFailures(FailureInjector):
    """Seeded random chaos: each worker may crash once inside a window.

    Each initial worker crashes with probability ``p_crash`` at a uniform
    time in ``window``; a crashed worker recovers after ``restart_delay``
    with probability ``p_recover`` (otherwise the crash is permanent).
    If the draw would fail-stop the *entire* fleet permanently, the first
    victim is forced to recover — chaos must not wedge the queue forever
    on a fleet with no autoscaler.
    """

    name = "random"

    def __init__(
        self,
        *,
        p_crash: float = 0.4,
        window: tuple[float, float] = (10.0, 240.0),
        p_recover: float = 0.75,
        restart_delay: float = 40.0,
        durability: DurabilityModel | str | None = None,
    ) -> None:
        super().__init__(durability=durability)
        if not 0.0 <= p_crash <= 1.0 or not 0.0 <= p_recover <= 1.0:
            raise ConfigError("probabilities must lie in [0, 1]")
        if not 0 <= window[0] <= window[1]:
            raise ConfigError(f"bad fault window {window!r}")
        if restart_delay <= 0:
            raise ConfigError("restart_delay must be positive")
        self.p_crash = float(p_crash)
        self.window = (float(window[0]), float(window[1]))
        self.p_recover = float(p_recover)
        self.restart_delay = float(restart_delay)

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        rng = sim.rngs.stream("failures")
        names = [w.name for w in manager.workers]
        faults: list[WorkerFault] = []
        for name in names:
            if float(rng.random()) >= self.p_crash:
                continue
            at = float(rng.uniform(self.window[0], self.window[1]))
            recovers = float(rng.random()) < self.p_recover
            faults.append(
                WorkerFault(
                    worker=name,
                    time=at,
                    recover_after=self.restart_delay if recovers else None,
                )
            )
        permanent = [f for f in faults if f.recover_after is None]
        if permanent and len(permanent) == len(names):
            first = permanent[0]
            faults[faults.index(first)] = replace(
                first, recover_after=self.restart_delay
            )
        return faults


class RollingRestart(FailureInjector):
    """Ops-style rolling restart: every worker crashes once, in sequence.

    Worker *i* (fleet order) crashes at ``start + i * interval`` and
    rejoins after ``restart_delay`` — a kernel-upgrade sweep.  With
    ``interval > restart_delay`` at most one node is down at a time.
    """

    name = "rolling"

    def __init__(
        self,
        *,
        start: float = 60.0,
        interval: float = 90.0,
        restart_delay: float = 30.0,
        durability: DurabilityModel | str | None = None,
    ) -> None:
        super().__init__(durability=durability)
        if start < 0 or interval <= 0 or restart_delay <= 0:
            raise ConfigError(
                "rolling restart needs start >= 0, interval > 0, "
                "restart_delay > 0"
            )
        self.start = float(start)
        self.interval = float(interval)
        self.restart_delay = float(restart_delay)

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        return [
            WorkerFault(
                worker=worker.name,
                time=self.start + i * self.interval,
                recover_after=self.restart_delay,
            )
            for i, worker in enumerate(manager.workers)
        ]


class AzOutage(FailureInjector):
    """Correlated outage: a fraction of the fleet crashes simultaneously.

    The first ``ceil(fraction × n)`` workers (fleet order — one
    "availability zone") crash at ``at`` and all rejoin after ``outage``
    seconds.  Orphans re-queue through admission and wait out the outage
    on the surviving zone (or in the queue, if the whole fleet was hit).
    """

    name = "az_outage"

    def __init__(
        self,
        *,
        at: float = 120.0,
        fraction: float = 0.5,
        outage: float = 120.0,
        durability: DurabilityModel | str | None = None,
    ) -> None:
        super().__init__(durability=durability)
        if at < 0 or outage <= 0:
            raise ConfigError("az outage needs at >= 0 and outage > 0")
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must lie in (0, 1], got {fraction!r}")
        self.at = float(at)
        self.fraction = float(fraction)
        self.outage = float(outage)

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        n_victims = min(
            len(manager.workers),
            max(1, math.ceil(self.fraction * len(manager.workers))),
        )
        return [
            WorkerFault(
                worker=worker.name, time=self.at, recover_after=self.outage
            )
            for worker in manager.workers[:n_victims]
        ]


class SlowNode(FailureInjector):
    """Fail-slow: one random worker degrades to a fraction of capacity.

    The classic gray failure — the node keeps accepting work but delivers
    ``factor`` of its capacity from ``at`` until recovery (``None`` makes
    the degradation permanent).  Pairs naturally with progress-aware
    rebalancing, which should migrate the stragglers off.
    """

    name = "slow"

    def __init__(
        self,
        *,
        at: float = 60.0,
        factor: float = 0.25,
        recover_after: float | None = 240.0,
        durability: DurabilityModel | str | None = None,
    ) -> None:
        super().__init__(durability=durability)
        if at < 0:
            raise ConfigError(f"at must be >= 0, got {at!r}")
        if not 0.0 < factor < 1.0:
            raise ConfigError(f"factor must lie in (0, 1), got {factor!r}")
        if recover_after is not None and recover_after <= 0:
            raise ConfigError("recover_after must be positive or None")
        self.at = float(at)
        self.factor = float(factor)
        self.recover_after = recover_after

    def plan(self, sim: "Simulator", manager: "Manager") -> list[WorkerFault]:
        rng = sim.rngs.stream("failures")
        victim = manager.workers[int(rng.integers(0, len(manager.workers)))]
        return [
            WorkerFault(
                worker=victim.name,
                time=self.at,
                kind="slow",
                recover_after=self.recover_after,
                capacity_factor=self.factor,
            )
        ]


FAILURES: dict[str, type[FailureInjector]] = {
    "none": NoFailures,
    "random": RandomFailures,
    "rolling": RollingRestart,
    "az_outage": AzOutage,
    "slow": SlowNode,
}


def make_failures(
    failures: FailureInjector | str | None,
) -> FailureInjector:
    """Resolve a failures spec into an injector.

    Accepts an injector instance, ``None`` (⇒ no failures), or a string
    ``"<name>"`` / ``"<name>:<durability>"`` where ``<name>`` is a
    :data:`FAILURES` key and ``<durability>`` a :func:`make_durability`
    spec — e.g. ``"rolling"``, ``"az_outage:checkpoint"``,
    ``"rolling:checkpoint(60)"``.  Unknown names raise
    :class:`~repro.errors.UnknownPolicyError` listing the registry.
    """
    if failures is None:
        return NoFailures()
    if isinstance(failures, FailureInjector):
        return failures
    if not isinstance(failures, str):
        raise UnknownPolicyError(
            f"unknown failures {failures!r}; choose from {sorted(FAILURES)}"
        )
    name, _, durability = failures.partition(":")
    cls = FAILURES.get(name.strip())
    if cls is None:
        raise UnknownPolicyError(
            f"unknown failures {failures!r}; choose from {sorted(FAILURES)} "
            "(optionally ':<durability>', e.g. 'rolling:checkpoint(60)')"
        )
    if not durability:
        return cls()
    if cls is NoFailures:
        raise ConfigError("failures 'none' takes no durability spec")
    return cls(durability=make_durability(durability.strip()))
