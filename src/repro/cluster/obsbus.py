"""The per-worker observation bus: one settle/sample pass per tick.

The paper's §3.1 design runs exactly **one** container monitor per worker
and fans its readings out to every consumer.  Historically this
reproduction had three observers — the metrics recorder, FlowCon's
container monitor, and the ``progress`` placement/rebalance observer —
each running its own settle, cgroup window query and ``E(p)`` curve
evaluation against the same containers at the same timestamps.

:class:`ObservationBus` restores the paper's single-monitor shape.  Per
``(worker, timestamp)`` it performs one settle and builds one immutable
:class:`ContainerObservation` per running container (identity, state,
current limit/allocation, and the evaluation-function reading computed
**once**).  Subscribers read those records through a
:class:`BusSampler`, which keeps the per-subscriber sampling window —
each observer still sees *its own* interval since *its own* previous
sample, exactly like the private
:class:`~repro.containers.stats.StatsSampler` it replaces, so results
are bit-identical — while the underlying integral snapshots are shared
through :meth:`CgroupAccount.window_mean_cached`: N subscribers cost one
uncached window query per container per tick instead of N.

Checkpoint pruning
------------------
After each pass the bus prunes every observed container's checkpoint
history below the oldest window start any registered subscriber can
still ask for, bounding history by the longest live observation window
instead of the run length.  Pruning stays enabled under live migration:
a migrated container's new-node subscribers have their first windows
seeded at the attach instant (:meth:`ObservationBus.seed_windows`), so
nobody needs pre-migration history from the new bus, and a cross-worker
subscriber whose held-over window fell below an already-pruned floor is
clamped to that floor on its next sample.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.containers.cgroup import CgroupAccount
from repro.containers.container import Container, ContainerState
from repro.containers.spec import ResourceVector
from repro.containers.stats import ContainerStats

#: ``running_containers`` only yields RUNNING containers, so the state
#: string is a constant on the observation hot path.
_RUNNING = ContainerState.RUNNING.value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (worker ← obsbus)
    from repro.cluster.worker import Worker

__all__ = ["ContainerObservation", "BusSampler", "ObservationBus"]


class ContainerObservation:
    """One shared observation of one running container.

    Produced once per ``(worker, timestamp, state-version)`` and handed
    to every subscriber; window means are *not* here because they are
    per-subscriber state (each observer's window starts at its own
    previous sample).  A plain ``__slots__`` record, immutable by
    convention — one is built per container per pass on the hottest
    sampling path.

    ``eval_value`` is ``E(t)`` computed once for all subscribers
    (``None`` when the job exposes no evaluation function).
    """

    __slots__ = (
        "time",
        "cid",
        "name",
        "state",
        "created_at",
        "eval_value",
        "cpu_alloc",
        "cpu_limit",
        "container",
        "account",
    )

    def __init__(
        self,
        time: float,
        cid: int,
        name: str,
        state: str,
        created_at: float,
        eval_value: float | None,
        cpu_alloc: float,
        cpu_limit: float,
        container: Container,
        account: CgroupAccount,
    ) -> None:
        self.time = time
        self.cid = cid
        self.name = name
        self.state = state
        self.created_at = created_at
        self.eval_value = eval_value
        self.cpu_alloc = cpu_alloc
        self.cpu_limit = cpu_limit
        self.container = container
        self.account = account


class BusSampler:
    """One subscriber's sampling window over bus observations.

    Drop-in replacement for a private
    :class:`~repro.containers.stats.StatsSampler`: remembers each
    container's last sample time (defaulting to its creation time) and
    converts a shared :class:`ContainerObservation` into the subscriber's
    own :class:`~repro.containers.stats.ContainerStats`.  The window-mean
    arithmetic is the historical ``(∫end − ∫start) / Δt`` on the same
    integral values, so readings are bit-identical to the private-sampler
    path.
    """

    def __init__(self) -> None:
        self._last_sample: dict[int, float] = {}

    def sample(self, obs: ContainerObservation) -> ContainerStats | None:
        """Fold one shared observation into this subscriber's window.

        Returns ``None`` for a zero-length window (two samples at the
        same instant), mirroring how a real monitor skips a duplicate
        poll.
        """
        cid = obs.cid
        t_prev = self._last_sample.get(cid)
        if t_prev is None or t_prev < obs.account.history_floor:
            # First sample: window from creation — or from the pruned
            # floor for a subscriber that registered after pruning began.
            # A held-over window can also fall below the floor when a
            # cross-worker subscriber re-registers after the container
            # migrated and the new bus pruned first; clamping to the
            # floor is identical on unpruned accounts, where the floor
            # still sits at creation time.
            t_prev = obs.account.history_floor
        time = obs.time
        if time <= t_prev:
            return None
        mean_row = obs.account.window_mean_cached(t_prev, time)
        self._last_sample[cid] = time
        return ContainerStats(
            time,
            cid,
            obs.name,
            obs.state,
            ResourceVector.from_array(mean_row),
            obs.cpu_alloc,
            obs.cpu_limit,
            obs.eval_value,
        )

    def window_start(self, cid: int, default: float) -> float:
        """Where this subscriber's next window for *cid* would begin."""
        return self._last_sample.get(cid, default)

    def forget(self, cid: int) -> None:
        """Drop sampler state for an exited container."""
        self._last_sample.pop(cid, None)


class ObservationBus:
    """Shared observation fan-out for one worker.

    Subscribers obtain a :class:`BusSampler` via :meth:`sampler` (or
    :meth:`register` one they already hold — cross-worker observers like
    the progress signal reuse a single sampler on every bus they visit,
    preserving windows across migrations).  Each call to :meth:`observe`
    settles the worker and returns the cached observation list for the
    current ``(time, state-version)``, recomputing only when time moved
    or worker state changed.
    """

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker
        #: Whether post-pass checkpoint pruning is enabled.
        self.prune = True
        self._cache_key: tuple[float, int] | None = None
        self._cache: list[ContainerObservation] = []
        self._samplers: list[BusSampler] = []
        #: Shared passes actually computed (test/bench instrumentation).
        self.passes = 0

    # -- subscriptions -----------------------------------------------------

    def sampler(self) -> BusSampler:
        """Create and register a fresh subscriber sampler."""
        s = BusSampler()
        self._samplers.append(s)
        return s

    def register(self, sampler: BusSampler) -> None:
        """Register an externally owned sampler (idempotent)."""
        if sampler not in self._samplers:
            self._samplers.append(sampler)

    def unregister(self, sampler: BusSampler) -> None:
        """Remove a subscriber (idempotent)."""
        try:
            self._samplers.remove(sampler)
        except ValueError:
            pass

    def seed_windows(self, cid: int, time: float) -> None:
        """Start every subscriber's window for *cid* at *time*.

        Called when a migrated (or crash-restored) container attaches to
        this bus's worker: subscribers that have never seen the container
        open their first window at the attach instant rather than
        reaching back to its creation on another node — which is what
        lets checkpoint pruning stay enabled fleet-wide under
        rebalancing.  Subscribers that already hold a window (cross-worker
        observers following the container) are left untouched.
        """
        for sampler in self._samplers:
            sampler._last_sample.setdefault(cid, time)

    # -- the shared pass ---------------------------------------------------

    def observe(self) -> list[ContainerObservation]:
        """One settle + observation pass for the current instant.

        Settles the worker (exact and idempotent), then returns one
        observation per running container in cid order.  Consecutive
        calls at the same time with unchanged worker state hit the
        cache, so a tick with many subscribers costs one pass.
        """
        worker = self.worker
        worker.settle()
        key = (worker.sim.now, worker.version)
        cache_key = self._cache_key
        if key == cache_key:
            return self._cache
        now = key[0]
        # A running container's E(t) is a pure function of job state,
        # which only moves when time does — so when only the worker's
        # state-version changed (e.g. a reallocation between two
        # observers at one instant), the previous pass's evaluations are
        # still exact and the curve is not re-evaluated.
        same_instant = cache_key is not None and cache_key[0] == now
        prev_evals = (
            {o.cid: o.eval_value for o in self._cache} if same_instant else {}
        )
        observations: list[ContainerObservation] = []
        append = observations.append
        for container in worker.running_containers():
            cid = container.cid
            if same_instant and cid in prev_evals:
                eval_value = prev_evals[cid]
            else:
                try:
                    eval_value = container.job.eval_value()
                except Exception:  # job may not expose E(t)
                    eval_value = None
            append(
                ContainerObservation(
                    now,
                    cid,
                    container.name,
                    _RUNNING,
                    container.created_at,
                    eval_value,
                    container.current_alloc,
                    container.limits.cpu,
                    container,
                    container.cgroup,
                )
            )
        self._cache_key = key
        self._cache = observations
        self.passes += 1
        # Pruning is amortized: the memory bound only needs to keep up
        # with history growth, not run on every pass.
        if self.prune and self._samplers and self.passes % 16 == 0:
            self._prune(observations)
        return observations

    # -- memory bound ------------------------------------------------------

    def _prune(self, observations: list[ContainerObservation]) -> None:
        """Drop checkpoint history no subscriber window can reach.

        The floor for a container is the oldest window start across all
        registered subscribers; a subscriber that has never sampled the
        container pins the floor at its creation time, because its first
        window must still reach back there (FlowCon's monitor samples a
        new arrival's full first window up to one interval after launch
        — pruning earlier would clamp it and change readings).  The
        deliberate cost: a subscriber that stops sampling (e.g. a
        ``progress`` placement observer after the last arrival) freezes
        pruning at its last windows, degrading gracefully to the
        historical keep-everything behaviour (see ROADMAP open item).
        """
        samplers = self._samplers
        for obs in observations:
            cid, created = obs.cid, obs.created_at
            floor = obs.time
            for s in samplers:
                t = s._last_sample.get(cid, created)
                if t < floor:
                    floor = t
                    if floor <= created:
                        break
            if floor > created:
                obs.account.prune_before(floor)
