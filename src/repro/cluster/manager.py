"""The cluster manager.

§3.1: "Managers accept specifications from the user and are responsible
for reconciling the desired state with the actual cluster state"; they
interact only with workers' container pools.  Our manager therefore does
two things: turn submissions into :class:`~repro.simcore.events.Event`\\ s,
and pick a worker per arriving job (least-loaded placement — Swarm's
default spread strategy).  All elastic-resource logic stays worker-side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from repro.simcore.events import PRIORITY_ARRIVAL, Event, EventKind

__all__ = ["Placement", "Manager"]


@dataclass(frozen=True)
class Placement:
    """Record of one job's placement."""

    label: str
    worker_name: str
    cid: int
    submit_time: float


class Manager:
    """Accepts submissions and places containers on workers."""

    def __init__(self, sim: Simulator, workers: list[Worker]) -> None:
        if not workers:
            raise ClusterError("a manager needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate worker names: {names}")
        self.sim = sim
        self.workers = list(workers)
        self.placements: dict[str, Placement] = {}
        self._labels: set[str] = set()
        self._pending: int = 0

    # -- submission ---------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> None:
        """Queue *submission* for arrival at its submit time."""
        if submission.label in self._labels:
            raise ClusterError(f"duplicate job label {submission.label!r}")
        self._labels.add(submission.label)
        self._pending += 1
        self.sim.schedule(
            submission.submit_time,
            self._on_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=submission,
        )

    def submit_all(self, submissions: list[JobSubmission]) -> None:
        """Queue a whole schedule."""
        for sub in submissions:
            self.submit(sub)

    # -- placement -----------------------------------------------------------------

    def _select_worker(self) -> Worker:
        """Least-loaded (by running-container count, then load) spread."""
        return min(
            self.workers,
            key=lambda w: (len(w.running_containers()), w.load(), w.name),
        )

    def _on_arrival(self, event: Event) -> None:
        submission: JobSubmission = event.payload
        worker = self._select_worker()
        container = worker.launch(
            submission.job,
            name=submission.label,
            image=submission.image,
        )
        self.placements[submission.label] = Placement(
            label=submission.label,
            worker_name=worker.name,
            cid=container.cid,
            submit_time=submission.submit_time,
        )
        self._pending -= 1
        self.sim.trace(
            "manager.place",
            f"placed {submission.label} on {worker.name}",
            cid=container.cid,
        )

    # -- views ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submissions accepted but not yet arrived."""
        return self._pending

    def placement_of(self, label: str) -> Placement:
        """Placement record for a job label."""
        try:
            return self.placements[label]
        except KeyError:
            raise ClusterError(f"job {label!r} has not been placed yet") from None
