"""The cluster manager: placement, pluggable admission, elastic fleet.

§3.1: "Managers accept specifications from the user and are responsible
for reconciling the desired state with the actual cluster state"; they
interact only with workers' container pools.  Our manager therefore does
four things: turn submissions into
:class:`~repro.simcore.events.Event`\\ s, pick a worker per arriving job
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`
(default: Swarm's least-loaded spread), apply admission control through
a pluggable :class:`~repro.cluster.admission.AdmissionPolicy`, and —
when an :class:`~repro.cluster.autoscale.AutoscalePolicy` is armed —
grow and shrink the worker fleet from the queue's own signals.  All
elastic-resource logic stays worker-side.

Admission queue
---------------
Workers may advertise a bounded number of admission slots
(``Worker(max_containers=...)``).  An arrival that finds no worker with
headroom joins the pending queue owned by the admission policy; every
container exit (and every provisioned worker) triggers a drain pass that
places queued jobs in the *policy's* order — FIFO (the historical
default, bit-identical to the old hardcoded deque), strict priority
classes, weighted fair queueing across tenants, or shortest-job-first.
Per-job queueing delay (placement time minus submit time) is recorded on
the :class:`Placement` and surfaced through
:class:`~repro.metrics.summary.RunSummary`; :attr:`Manager.peak_queue_len`
tracks the worst backlog.  With unbounded workers (the default, and the
paper's single-node setup) the queue is never used and behaviour is
bit-identical to the historical pass-through manager.

Rebalancing
-----------
After each exit-hook queue drain the manager hands the cluster to a
pluggable :class:`~repro.cluster.rebalance.RebalancePolicy`, which may
migrate running containers between workers (live ``detach``/``attach``
with bit-exact remaining work).  Per-job migration counts and in-flight
delay land on the :class:`Placement` and in :attr:`Manager.migrations` /
:attr:`Manager.migration_delays`, surfaced through
:class:`~repro.metrics.summary.RunSummary`.  The default ``"none"``
policy is short-circuited entirely, preserving bit-identical behaviour
with the pre-rebalancing manager.

Autoscaling
-----------
The autoscale policy is consulted whenever the queue's signals move (an
arrival queues, an exit drains, a provisioned worker joins).  Scale-up
schedules a :attr:`~repro.simcore.events.EventKind.WORKER_PROVISION`
event ``provision_delay`` seconds out; when it fires, ``worker_factory``
builds the node, it joins the fleet, :attr:`provision_hooks` fire (the
runner attaches a recorder and a fresh scheduling policy), and the queue
drains into the new capacity.  Scale-down retires only *empty* workers —
a worker still hosting containers is marked *draining* (no placements,
no migration targets; composes with rebalancing, which may actively move
its containers off) and is retired at its first empty moment.  The
fleet-size timeline lands in :attr:`fleet_timeline` and rides
:class:`~repro.metrics.summary.RunSummary`.  The default ``"none"``
policy is short-circuited entirely: bit-identical to the fixed-fleet
manager.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.cluster.admission import (
    AdmissionPolicy,
    make_admission,
)
from repro.cluster.autoscale import (
    AutoscalePolicy,
    NoAutoscale,
    make_autoscale,
)
from repro.cluster.placement import PlacementPolicy, make_placement
from repro.cluster.rebalance import (
    Migration,
    NoRebalance,
    RebalancePolicy,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from repro.simcore.events import PRIORITY_ARRIVAL, Event, EventKind

__all__ = ["Placement", "Manager"]

#: Builds one fresh worker for the autoscaler, given its node name.
WorkerFactory = Callable[[str], Worker]


@dataclass(frozen=True)
class Placement:
    """Record of one job's placement.

    ``queue_delay`` is how long the job waited in the admission queue
    (``placed_time - submit_time``); 0.0 for jobs placed on arrival.
    ``worker_name`` is the job's *current* host: rebalancing updates it
    on every migration, bumping ``migrations`` and adding any in-flight
    checkpoint/restore time to ``migration_delay``.  ``tenant`` carries
    the submission's owning tenant (``None`` outside multi-tenant runs).
    """

    label: str
    worker_name: str
    cid: int
    submit_time: float
    placed_time: float = 0.0
    queue_delay: float = 0.0
    migrations: int = 0
    migration_delay: float = 0.0
    tenant: str | None = None


class Manager:
    """Accepts submissions, queues them under pressure, places containers.

    Parameters
    ----------
    sim:
        The simulation engine.
    workers:
        The cluster's initial workers (non-empty, unique names).
    placement:
        A :class:`~repro.cluster.placement.PlacementPolicy` instance or
        registry name (``"spread"``, ``"binpack"``, ``"random"``,
        ``"affinity"``, ``"progress"``); ``None`` means spread, the
        historical default.
    rebalance:
        A :class:`~repro.cluster.rebalance.RebalancePolicy` instance or
        registry name (``"none"``, ``"migrate"``, ``"progress"``);
        ``None`` means no rebalancing, the historical default.
    admission:
        An :class:`~repro.cluster.admission.AdmissionPolicy` instance or
        registry name (``"fifo"``, ``"priority"``, ``"wfq"``, ``"sjf"``);
        ``None`` means FIFO, the historical default (bit-identical to
        the pre-extraction hardcoded deque).
    autoscale:
        An :class:`~repro.cluster.autoscale.AutoscalePolicy` instance or
        registry name (``"none"``, ``"queue_depth"``, ``"progress"``);
        ``None`` means a fixed fleet, the historical default.
    worker_factory:
        ``name -> Worker`` builder for autoscale-provisioned nodes.
        ``None`` (default) clones the first initial worker's shape
        (capacity, contention, allocation mode, admission slots).
    """

    def __init__(
        self,
        sim: Simulator,
        workers: list[Worker],
        *,
        placement: PlacementPolicy | str | None = None,
        rebalance: RebalancePolicy | str | None = None,
        admission: AdmissionPolicy | str | None = None,
        autoscale: AutoscalePolicy | str | None = None,
        worker_factory: WorkerFactory | None = None,
    ) -> None:
        if not workers:
            raise ClusterError("a manager needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate worker names: {names}")
        self.sim = sim
        self.workers = list(workers)
        self.placement = make_placement(placement)
        self.placement.bind(sim)
        self.rebalance = make_rebalance(rebalance)
        self.rebalance.bind(sim)
        self.admission = make_admission(admission)
        self.admission.bind(sim)
        self.autoscale = make_autoscale(autoscale)
        self.autoscale.bind(sim, len(self.workers))
        self.worker_factory = worker_factory
        rebalance_armed = not isinstance(self.rebalance, NoRebalance)
        elastic = not isinstance(self.autoscale, NoAutoscale)
        if rebalance_armed and (len(self.workers) > 1 or elastic):
            # Live migration lets a container meet brand-new observers on
            # its target worker, whose first sampling window legitimately
            # reaches back to the container's creation time — checkpoint
            # history must therefore be kept whole.  Without rebalancing
            # (or with a single fixed worker, where no migration target
            # can ever exist) the observation bus prunes history down to
            # the oldest live observation window.
            for worker in self.workers:
                worker.obsbus.prune = False
        self._prune_disabled = rebalance_armed and (
            len(self.workers) > 1 or elastic
        )
        self.placements: dict[str, Placement] = {}
        #: label → queueing delay, for jobs that actually waited (>0 s).
        self.queue_delays: dict[str, float] = {}
        #: label → tenant, for submissions that declared one.
        self.tenants: dict[str, str] = {}
        #: label → migration count, for jobs that actually migrated.
        self.migrations: dict[str, int] = {}
        #: label → summed in-flight checkpoint/restore seconds.
        self.migration_delays: dict[str, float] = {}
        self.peak_queue_len: int = 0
        #: ``(time, fleet size)`` after every provision/retire (and the
        #: initial fleet at t=0); length 1 for fixed-fleet runs.
        self.fleet_timeline: list[tuple[float, int]] = [
            (sim.now, len(self.workers))
        ]
        #: Hooks invoked with each autoscale-provisioned worker after it
        #: joins the fleet: f(worker).  The runner attaches recorders
        #: and scheduling policies here.
        self.provision_hooks: list = []
        #: Hooks invoked with each retired worker after it leaves: f(worker).
        self.retire_hooks: list = []
        self._labels: set[str] = set()
        self._pending: int = 0
        self._in_flight: int = 0
        self._provisions_pending: int = 0
        self._next_worker_idx = len(self.workers)
        for worker in self.workers:
            worker.exit_hooks.append(self._on_worker_exit)

    # -- submission ---------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> None:
        """Queue *submission* for arrival at its submit time.

        The label/pending bookkeeping mutates only after the simulator
        accepts the event, so a scheduling failure (e.g. a submit time in
        the past) leaves the manager's state untouched and the label
        reusable.
        """
        if submission.label in self._labels:
            raise ClusterError(f"duplicate job label {submission.label!r}")
        self.sim.schedule(
            submission.submit_time,
            self._on_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=submission,
        )
        self._labels.add(submission.label)
        self._pending += 1

    def submit_all(self, submissions: list[JobSubmission]) -> None:
        """Queue a whole schedule."""
        for sub in submissions:
            self.submit(sub)

    # -- placement and admission ---------------------------------------------------

    def _eligible_workers(self) -> list[Worker]:
        return [w for w in self.workers if w.has_headroom()]

    def _place(self, submission: JobSubmission, eligible: list[Worker]) -> None:
        """Launch *submission* on a worker chosen by the placement policy."""
        worker = self.placement.select(eligible, submission)
        container = worker.launch(
            submission.job,
            name=submission.label,
            image=submission.image,
        )
        now = self.sim.now
        delay = now - submission.submit_time
        self.placements[submission.label] = Placement(
            label=submission.label,
            worker_name=worker.name,
            cid=container.cid,
            submit_time=submission.submit_time,
            placed_time=now,
            queue_delay=delay,
            tenant=submission.tenant,
        )
        if delay > 0:
            self.queue_delays[submission.label] = delay
        if submission.tenant is not None:
            self.tenants[submission.label] = submission.tenant
        self._pending -= 1
        if self._pending == 0:
            # No accepted submission is still waiting to be placed: the
            # progress placement observer (if any) goes quiescent and
            # releases its bus subscriptions, so checkpoint pruning is no
            # longer pinned at its last sampling windows.
            self.placement.quiesce()
        self.sim.trace(
            "manager.place",
            f"placed {submission.label} on {worker.name}"
            + (f" after {delay:.1f}s queued" if delay > 0 else ""),
            cid=container.cid,
        )

    def _rearm_draining(self) -> list[Worker]:
        """Un-drain one worker with free slots; return the new eligibles.

        An arrival that would queue while a draining worker still has
        admission slots is proof the fleet is too small to be
        shrinking: cancel that worker's retirement instead of making
        the job wait for a scale-up threshold.  One worker per arrival,
        in fleet order — deterministic, and enough for this job.
        """
        for worker in self.workers:
            if worker.draining and (
                worker.max_containers is None
                or len(worker.running_containers()) + worker.reserved
                < worker.max_containers
            ):
                worker.draining = False
                self.sim.trace(
                    "manager.scale",
                    f"re-armed draining {worker.name} for a queued arrival",
                )
                return self._eligible_workers()
        return []

    def _on_arrival(self, event: Event) -> None:
        submission: JobSubmission = event.payload
        eligible = self._eligible_workers()
        if not eligible and not isinstance(self.autoscale, NoAutoscale):
            eligible = self._rearm_draining()
        if not eligible:
            self.admission.push(submission)
            depth = len(self.admission)
            if depth > self.peak_queue_len:
                self.peak_queue_len = depth
            self.sim.trace(
                "manager.queue",
                f"queued {submission.label} "
                f"(cluster full, depth {depth})",
            )
            self._autoscale_pass()
            return
        self._place(submission, eligible)

    def _drain_queue(self) -> bool:
        """Place queued jobs while headroom lasts; True if fully drained.

        Queued submissions keep strict priority over migrations: the
        rebalancer only ever moves containers into slots the drain left
        free (a non-empty queue implies zero headroom anywhere, so no
        migration target exists).
        """
        while len(self.admission):
            eligible = self._eligible_workers()
            if not eligible:
                return False
            self._place(self.admission.pop(), eligible)
        return True

    def _on_worker_exit(self, _container) -> None:
        """Worker exit hook: drain the admission queue, then rebalance.

        The rebalance pass runs only when the queue fully drained (a
        backlog implies no free slot to migrate into); the autoscale
        pass always runs — the backlog is precisely its scale-up signal.
        """
        if self._drain_queue():
            self._rebalance_pass()
        self._autoscale_pass()

    # -- rebalancing ----------------------------------------------------------------

    def _rebalance_pass(self) -> None:
        """Plan and execute migrations for the current cluster state."""
        if isinstance(self.rebalance, NoRebalance):
            # Short-circuit: "none" runs must be bit-identical to the
            # pre-rebalancing manager — no sampling, no planning.
            return
        if len(self.workers) < 2:
            return
        # Settle everyone first: progress signals and remaining-work
        # projections must reflect *now*, not each worker's last event.
        for worker in self.workers:
            worker.settle()
        for move in self.rebalance.plan(self.workers):
            self._migrate(move)

    def _migrate(self, move: Migration) -> None:
        """Execute one planned migration (synchronous or in-flight)."""
        label = move.label
        delay = self.rebalance.delay_for(move.container)
        container = move.source.detach(move.container.cid)
        self.migrations[label] = self.migrations.get(label, 0) + 1
        if delay > 0:
            self.migration_delays[label] = (
                self.migration_delays.get(label, 0.0) + delay
            )
        record = self.placements.get(label)
        if record is not None:
            self.placements[label] = replace(
                record,
                worker_name=move.target.name,
                migrations=record.migrations + 1,
                migration_delay=record.migration_delay + delay,
            )
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.migrate",
                f"migrating {label} {move.source.name} → {move.target.name}"
                + (f" ({delay:.1f}s in flight)" if delay > 0 else ""),
                cid=container.cid,
            )
        if delay <= 0:
            move.target.attach(container)
            return
        move.target.reserve_slot()
        self._in_flight += 1
        self.sim.schedule(
            self.sim.now + delay,
            self._on_migration_arrival,
            kind=EventKind.CONTAINER_MIGRATION,
            priority=PRIORITY_ARRIVAL,
            payload=(container, move.target),
        )

    def _on_migration_arrival(self, event: Event) -> None:
        """An in-flight container reaches its target worker."""
        container, target = event.payload
        target.release_reservation()
        self._in_flight -= 1
        target.attach(container)

    # -- autoscaling -----------------------------------------------------------------

    def _autoscale_pass(self) -> None:
        """Consult the autoscale policy and apply its fleet delta."""
        if isinstance(self.autoscale, NoAutoscale):
            # Short-circuit: "none" runs must be bit-identical to the
            # fixed-fleet manager — no planning, no timeline churn.
            return
        self._retire_drained()
        delta = self.autoscale.plan(self)
        if delta > 0:
            for _ in range(delta):
                if not self._scale_up():
                    break
        elif delta < 0:
            for _ in range(-delta):
                if not self._scale_down():
                    break

    def _scale_up(self) -> bool:
        """Re-arm a draining worker, or schedule one provision event."""
        ceiling = self.autoscale.max_workers
        if (
            ceiling is not None
            and len(self.workers) + self._provisions_pending >= ceiling
        ):
            return False
        for worker in self.workers:
            if worker.draining:
                # Cheaper than a boot: the node never actually left.
                worker.draining = False
                self.sim.trace(
                    "manager.scale", f"re-armed draining {worker.name}"
                )
                self._drain_queue()
                return True
        self._provisions_pending += 1
        self.sim.schedule(
            self.sim.now + self.autoscale.provision_delay,
            self._on_provision,
            kind=EventKind.WORKER_PROVISION,
            priority=PRIORITY_ARRIVAL,
        )
        self.sim.trace(
            "manager.scale",
            f"provisioning worker ({self.autoscale.provision_delay:.0f}s "
            f"boot, fleet {len(self.workers)}"
            f"+{self._provisions_pending} pending)",
        )
        return True

    def _on_provision(self, _event: Event) -> None:
        """A provisioned worker finishes booting and joins the fleet."""
        self._provisions_pending -= 1
        name = f"worker-{self._next_worker_idx}"
        self._next_worker_idx += 1
        factory = self.worker_factory or self._default_worker_factory
        worker = factory(name)
        if self._prune_disabled:
            worker.obsbus.prune = False
        worker.exit_hooks.append(self._on_worker_exit)
        self.workers.append(worker)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        self.sim.trace(
            "manager.scale",
            f"{name} joined the fleet (size {len(self.workers)})",
        )
        for hook in self.provision_hooks:
            hook(worker)
        if self._drain_queue():
            self._rebalance_pass()
        self._autoscale_pass()

    def _default_worker_factory(self, name: str) -> Worker:
        """Clone the initial fleet's shape for a provisioned node."""
        template = self.workers[0]
        return Worker(
            self.sim,
            name=name,
            capacity=template.capacity,
            contention=template.contention,
            allocation_mode=template.allocator.mode,
            reschedule_tolerance=template.reschedule_tolerance,
            max_containers=template.max_containers,
        )

    def _retirable(self) -> list[Worker]:
        """Workers the autoscaler may remove, never below its floor."""
        floor = self.autoscale.min_workers or 1
        headroom = len(self.workers) - max(floor, 1)
        if headroom <= 0:
            return []
        # Newest nodes leave first (LIFO): the initial fleet is sticky.
        return list(reversed(self.workers))[:headroom]

    def _retire_drained(self) -> None:
        """Retire any draining worker that has become empty."""
        for worker in [w for w in self.workers if w.draining]:
            if worker.is_empty():
                self._retire(worker)

    def _scale_down(self) -> bool:
        """Retire one empty worker, or start draining one."""
        candidates = self._retirable()
        if not candidates:
            return False
        for worker in candidates:
            if not worker.draining and worker.is_empty():
                self._retire(worker)
                return True
        for worker in candidates:
            # Only nodes with no in-flight arrivals can drain: a
            # reservation means a migrated container is about to attach.
            if not worker.draining and worker.reserved == 0:
                worker.draining = True
                self.sim.trace(
                    "manager.scale",
                    f"draining {worker.name} "
                    f"({len(worker.running_containers())} containers left)",
                )
                return True
        return False

    def _retire(self, worker: Worker) -> None:
        """Remove one empty worker from the fleet."""
        if not worker.is_empty():  # pragma: no cover - defensive
            raise ClusterError(
                f"cannot retire non-empty worker {worker.name}"
            )
        worker.draining = False
        worker.exit_hooks.remove(self._on_worker_exit)
        self.workers.remove(worker)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        self.sim.trace(
            "manager.scale",
            f"retired {worker.name} (fleet size {len(self.workers)})",
        )
        for hook in self.retire_hooks:
            hook(worker)

    # -- views ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submissions accepted but not yet placed (queued ones included)."""
        return self._pending

    @property
    def queue_len(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self.admission)

    @property
    def in_flight(self) -> int:
        """Containers currently migrating between workers."""
        return self._in_flight

    @property
    def provisions_pending(self) -> int:
        """Autoscale-provisioned workers still booting."""
        return self._provisions_pending

    @property
    def fleet_size(self) -> int:
        """Workers currently in the fleet (draining ones included)."""
        return len(self.workers)

    def migration_count(self, label: str) -> int:
        """How many times a job has been migrated (0 if never)."""
        return self.migrations.get(label, 0)

    @property
    def total_migrations(self) -> int:
        """Migrations executed so far, cluster-wide."""
        return sum(self.migrations.values())

    def queued_labels(self) -> list[str]:
        """Labels waiting in the admission queue, in drain order."""
        return [sub.label for sub in self.admission.queued()]

    def placement_of(self, label: str) -> Placement:
        """Placement record for a job label."""
        try:
            return self.placements[label]
        except KeyError:
            raise ClusterError(f"job {label!r} has not been placed yet") from None
