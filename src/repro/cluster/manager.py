"""The cluster manager: placement and capacity-aware admission.

§3.1: "Managers accept specifications from the user and are responsible
for reconciling the desired state with the actual cluster state"; they
interact only with workers' container pools.  Our manager therefore does
three things: turn submissions into
:class:`~repro.simcore.events.Event`\\ s, pick a worker per arriving job
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`
(default: Swarm's least-loaded spread), and apply admission control.
All elastic-resource logic stays worker-side.

Admission queue
---------------
Workers may advertise a bounded number of admission slots
(``Worker(max_containers=...)``).  An arrival that finds no worker with
headroom joins a FIFO pending queue instead of over-subscribing a node;
every container exit triggers a drain pass that places queued jobs
strictly in FIFO order — the head of the queue never yields its slot to
a younger submission.  Per-job queueing delay (placement time minus
submit time) is recorded on the :class:`Placement` and surfaced through
:class:`~repro.metrics.summary.RunSummary`; :attr:`Manager.peak_queue_len`
tracks the worst backlog of the run.  With unbounded workers (the
default, and the paper's single-node setup) the queue is never used and
behaviour is bit-identical to the historical pass-through manager.

Rebalancing
-----------
After each exit-hook queue drain the manager hands the cluster to a
pluggable :class:`~repro.cluster.rebalance.RebalancePolicy`, which may
migrate running containers between workers (live ``detach``/``attach``
with bit-exact remaining work).  Per-job migration counts and in-flight
delay land on the :class:`Placement` and in :attr:`Manager.migrations` /
:attr:`Manager.migration_delays`, surfaced through
:class:`~repro.metrics.summary.RunSummary`.  The default ``"none"``
policy is short-circuited entirely, preserving bit-identical behaviour
with the pre-rebalancing manager.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.cluster.placement import PlacementPolicy, make_placement
from repro.cluster.rebalance import (
    Migration,
    NoRebalance,
    RebalancePolicy,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from repro.simcore.events import PRIORITY_ARRIVAL, Event, EventKind

__all__ = ["Placement", "Manager"]


@dataclass(frozen=True)
class Placement:
    """Record of one job's placement.

    ``queue_delay`` is how long the job waited in the admission queue
    (``placed_time - submit_time``); 0.0 for jobs placed on arrival.
    ``worker_name`` is the job's *current* host: rebalancing updates it
    on every migration, bumping ``migrations`` and adding any in-flight
    checkpoint/restore time to ``migration_delay``.
    """

    label: str
    worker_name: str
    cid: int
    submit_time: float
    placed_time: float = 0.0
    queue_delay: float = 0.0
    migrations: int = 0
    migration_delay: float = 0.0


class Manager:
    """Accepts submissions, queues them under pressure, places containers.

    Parameters
    ----------
    sim:
        The simulation engine.
    workers:
        The cluster's workers (non-empty, unique names).
    placement:
        A :class:`~repro.cluster.placement.PlacementPolicy` instance or
        registry name (``"spread"``, ``"binpack"``, ``"random"``,
        ``"affinity"``, ``"progress"``); ``None`` means spread, the
        historical default.
    rebalance:
        A :class:`~repro.cluster.rebalance.RebalancePolicy` instance or
        registry name (``"none"``, ``"migrate"``, ``"progress"``);
        ``None`` means no rebalancing, the historical default.
    """

    def __init__(
        self,
        sim: Simulator,
        workers: list[Worker],
        *,
        placement: PlacementPolicy | str | None = None,
        rebalance: RebalancePolicy | str | None = None,
    ) -> None:
        if not workers:
            raise ClusterError("a manager needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate worker names: {names}")
        self.sim = sim
        self.workers = list(workers)
        self.placement = make_placement(placement)
        self.placement.bind(sim)
        self.rebalance = make_rebalance(rebalance)
        self.rebalance.bind(sim)
        if not isinstance(self.rebalance, NoRebalance):
            # Live migration lets a container meet brand-new observers on
            # its target worker, whose first sampling window legitimately
            # reaches back to the container's creation time — checkpoint
            # history must therefore be kept whole.  Without rebalancing
            # the observation bus prunes history down to the oldest live
            # observation window.
            for worker in self.workers:
                worker.obsbus.prune = False
        self.placements: dict[str, Placement] = {}
        #: label → queueing delay, for jobs that actually waited (>0 s).
        self.queue_delays: dict[str, float] = {}
        #: label → migration count, for jobs that actually migrated.
        self.migrations: dict[str, int] = {}
        #: label → summed in-flight checkpoint/restore seconds.
        self.migration_delays: dict[str, float] = {}
        self.peak_queue_len: int = 0
        self._queue: deque[JobSubmission] = deque()
        self._labels: set[str] = set()
        self._pending: int = 0
        self._in_flight: int = 0
        for worker in self.workers:
            worker.exit_hooks.append(self._on_worker_exit)

    # -- submission ---------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> None:
        """Queue *submission* for arrival at its submit time.

        The label/pending bookkeeping mutates only after the simulator
        accepts the event, so a scheduling failure (e.g. a submit time in
        the past) leaves the manager's state untouched and the label
        reusable.
        """
        if submission.label in self._labels:
            raise ClusterError(f"duplicate job label {submission.label!r}")
        self.sim.schedule(
            submission.submit_time,
            self._on_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=submission,
        )
        self._labels.add(submission.label)
        self._pending += 1

    def submit_all(self, submissions: list[JobSubmission]) -> None:
        """Queue a whole schedule."""
        for sub in submissions:
            self.submit(sub)

    # -- placement and admission ---------------------------------------------------

    def _eligible_workers(self) -> list[Worker]:
        return [w for w in self.workers if w.has_headroom()]

    def _place(self, submission: JobSubmission, eligible: list[Worker]) -> None:
        """Launch *submission* on a worker chosen by the placement policy."""
        worker = self.placement.select(eligible, submission)
        container = worker.launch(
            submission.job,
            name=submission.label,
            image=submission.image,
        )
        now = self.sim.now
        delay = now - submission.submit_time
        self.placements[submission.label] = Placement(
            label=submission.label,
            worker_name=worker.name,
            cid=container.cid,
            submit_time=submission.submit_time,
            placed_time=now,
            queue_delay=delay,
        )
        if delay > 0:
            self.queue_delays[submission.label] = delay
        self._pending -= 1
        self.sim.trace(
            "manager.place",
            f"placed {submission.label} on {worker.name}"
            + (f" after {delay:.1f}s queued" if delay > 0 else ""),
            cid=container.cid,
        )

    def _on_arrival(self, event: Event) -> None:
        submission: JobSubmission = event.payload
        eligible = self._eligible_workers()
        if not eligible:
            self._queue.append(submission)
            if len(self._queue) > self.peak_queue_len:
                self.peak_queue_len = len(self._queue)
            self.sim.trace(
                "manager.queue",
                f"queued {submission.label} "
                f"(cluster full, depth {len(self._queue)})",
            )
            return
        self._place(submission, eligible)

    def _on_worker_exit(self, _container) -> None:
        """Worker exit hook: drain the admission queue, then rebalance.

        Queued submissions keep strict priority over migrations: the
        rebalancer only ever moves containers into slots the FIFO drain
        left free (a non-empty queue implies zero headroom anywhere, so
        no migration target exists).
        """
        while self._queue:
            eligible = self._eligible_workers()
            if not eligible:
                return
            self._place(self._queue.popleft(), eligible)
        self._rebalance_pass()

    # -- rebalancing ----------------------------------------------------------------

    def _rebalance_pass(self) -> None:
        """Plan and execute migrations for the current cluster state."""
        if isinstance(self.rebalance, NoRebalance):
            # Short-circuit: "none" runs must be bit-identical to the
            # pre-rebalancing manager — no sampling, no planning.
            return
        if len(self.workers) < 2:
            return
        # Settle everyone first: progress signals and remaining-work
        # projections must reflect *now*, not each worker's last event.
        for worker in self.workers:
            worker.settle()
        for move in self.rebalance.plan(self.workers):
            self._migrate(move)

    def _migrate(self, move: Migration) -> None:
        """Execute one planned migration (synchronous or in-flight)."""
        label = move.label
        delay = self.rebalance.migration_delay
        container = move.source.detach(move.container.cid)
        self.migrations[label] = self.migrations.get(label, 0) + 1
        if delay > 0:
            self.migration_delays[label] = (
                self.migration_delays.get(label, 0.0) + delay
            )
        record = self.placements.get(label)
        if record is not None:
            self.placements[label] = replace(
                record,
                worker_name=move.target.name,
                migrations=record.migrations + 1,
                migration_delay=record.migration_delay + delay,
            )
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.migrate",
                f"migrating {label} {move.source.name} → {move.target.name}"
                + (f" ({delay:.1f}s in flight)" if delay > 0 else ""),
                cid=container.cid,
            )
        if delay <= 0:
            move.target.attach(container)
            return
        move.target.reserve_slot()
        self._in_flight += 1
        self.sim.schedule(
            self.sim.now + delay,
            self._on_migration_arrival,
            kind=EventKind.CONTAINER_MIGRATION,
            priority=PRIORITY_ARRIVAL,
            payload=(container, move.target),
        )

    def _on_migration_arrival(self, event: Event) -> None:
        """An in-flight container reaches its target worker."""
        container, target = event.payload
        target.release_reservation()
        self._in_flight -= 1
        target.attach(container)

    # -- views ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submissions accepted but not yet placed (queued ones included)."""
        return self._pending

    @property
    def queue_len(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Containers currently migrating between workers."""
        return self._in_flight

    def migration_count(self, label: str) -> int:
        """How many times a job has been migrated (0 if never)."""
        return self.migrations.get(label, 0)

    @property
    def total_migrations(self) -> int:
        """Migrations executed so far, cluster-wide."""
        return sum(self.migrations.values())

    def queued_labels(self) -> list[str]:
        """Labels waiting in the admission queue, FIFO order."""
        return [sub.label for sub in self._queue]

    def placement_of(self, label: str) -> Placement:
        """Placement record for a job label."""
        try:
            return self.placements[label]
        except KeyError:
            raise ClusterError(f"job {label!r} has not been placed yet") from None
