"""The cluster manager: placement, pluggable admission, elastic fleet.

§3.1: "Managers accept specifications from the user and are responsible
for reconciling the desired state with the actual cluster state"; they
interact only with workers' container pools.  Our manager therefore does
four things: turn submissions into
:class:`~repro.simcore.events.Event`\\ s, pick a worker per arriving job
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`
(default: Swarm's least-loaded spread), apply admission control through
a pluggable :class:`~repro.cluster.admission.AdmissionPolicy`, and —
when an :class:`~repro.cluster.autoscale.AutoscalePolicy` is armed —
grow and shrink the worker fleet from the queue's own signals.  All
elastic-resource logic stays worker-side.

Admission queue
---------------
Workers may advertise a bounded number of admission slots
(``Worker(max_containers=...)``).  An arrival that finds no worker with
headroom joins the pending queue owned by the admission policy; every
container exit (and every provisioned worker) triggers a drain pass that
places queued jobs in the *policy's* order — FIFO (the historical
default, bit-identical to the old hardcoded deque), strict priority
classes, weighted fair queueing across tenants, or shortest-job-first.
Per-job queueing delay (placement time minus submit time) is recorded on
the :class:`Placement` and surfaced through
:class:`~repro.metrics.summary.RunSummary`; :attr:`Manager.peak_queue_len`
tracks the worst backlog.  With unbounded workers (the default, and the
paper's single-node setup) the queue is never used and behaviour is
bit-identical to the historical pass-through manager.

Rebalancing
-----------
After each exit-hook queue drain the manager hands the cluster to a
pluggable :class:`~repro.cluster.rebalance.RebalancePolicy`, which may
migrate running containers between workers (live ``detach``/``attach``
with bit-exact remaining work).  Per-job migration counts and in-flight
delay land on the :class:`Placement` and in :attr:`Manager.migrations` /
:attr:`Manager.migration_delays`, surfaced through
:class:`~repro.metrics.summary.RunSummary`.  The default ``"none"``
policy is short-circuited entirely, preserving bit-identical behaviour
with the pre-rebalancing manager.

Autoscaling
-----------
The autoscale policy is consulted whenever the queue's signals move (an
arrival queues, an exit drains, a provisioned worker joins).  Scale-up
schedules a :attr:`~repro.simcore.events.EventKind.WORKER_PROVISION`
event ``provision_delay`` seconds out; when it fires, ``worker_factory``
builds the node, it joins the fleet, :attr:`provision_hooks` fire (the
runner attaches a recorder and a fresh scheduling policy), and the queue
drains into the new capacity.  Scale-down retires only *empty* workers —
a worker still hosting containers is marked *draining* (no placements,
no migration targets; composes with rebalancing, which may actively move
its containers off) and is retired at its first empty moment.  The
fleet-size timeline lands in :attr:`fleet_timeline` and rides
:class:`~repro.metrics.summary.RunSummary`.  The default ``"none"``
policy is short-circuited entirely: bit-identical to the fixed-fleet
manager.

Failure injection
-----------------
A pluggable :class:`~repro.cluster.failures.FailureInjector` (fifth
axis) schedules ``WORKER_FAIL`` events against the fleet.  A fail-stop
crash detaches the worker — placement, migration, and autoscaling all
stop seeing it — cancels any migration still in flight *towards* it, and
resolves every resident container through the injector's
:class:`~repro.cluster.failures.DurabilityModel`: the job is rolled back
to whatever work survived, and the orphan re-queues through the existing
admission policy with its original tenant/weight/priority, consuming one
unit of the submission's ``retry_budget``.  Exhausted jobs land in
:attr:`Manager.failed` with their retry counts and lost work, keeping
accounting exactly-once even though execution is at-least-once.
Fail-slow faults degrade the victim's capacity in place.  Recovery
(``WORKER_RECOVER``) re-arms the node like an autoscale provision: it
rejoins empty, :attr:`recover_hooks` fire (the runner restarts the
recorder and attaches a fresh scheduling policy), and the queue drains
into the recovered capacity.  The default ``"none"`` injector is
short-circuited entirely: bit-identical to the failure-free manager.

Message fabric
--------------
Every manager↔worker interaction — place orders, exit notifications,
the detach/attach migration legs, provision/retire orders, and
fault/recovery detection — is dispatched through a pluggable
:class:`~repro.cluster.fabric.FabricPolicy` (sixth axis) as a typed
message with a ``deliver`` effect and an optional ``on_fail``
reconciliation handler.  The default :class:`~repro.cluster.fabric.
IdealFabric` delivers inline (no events, no RNG, no traces), keeping
behaviour bit-identical to the direct-call manager; a
:class:`~repro.cluster.fabric.FaultyFabric` may delay, drop, duplicate
or partition messages, with manager-side retry/backoff and
reconciliation keeping accounting exactly-once: a place order that can
never be delivered consumes the submission's ``retry_budget`` and
ultimately lands the job in :attr:`Manager.failed`; lost exit/fault/
recovery notifications are discovered late by reconciliation; in-flight
slot reservations are stamped with the target's crash epoch so no
reservation ever leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.cluster.admission import (
    AdmissionPolicy,
    make_admission,
)
from repro.cluster.autoscale import (
    AutoscalePolicy,
    NoAutoscale,
    make_autoscale,
)
from repro.cluster.fabric import (
    MANAGER,
    FabricPolicy,
    IdealFabric,
    make_fabric,
)
from repro.cluster.failures import (
    FailureInjector,
    NoFailures,
    WorkerFault,
    make_failures,
)
from repro.cluster.placement import PlacementPolicy, make_placement
from repro.cluster.rebalance import (
    Migration,
    NoRebalance,
    RebalancePolicy,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from repro.simcore.equeue import EventHandle
from repro.simcore.events import PRIORITY_ARRIVAL, Event, EventKind

__all__ = ["Placement", "Manager"]

#: Builds one fresh worker for the autoscaler, given its node name.
WorkerFactory = Callable[[str], Worker]


@dataclass(frozen=True)
class Placement:
    """Record of one job's placement.

    ``queue_delay`` is how long the job waited in the admission queue
    (``placed_time - submit_time``); 0.0 for jobs placed on arrival.
    ``worker_name`` is the job's *current* host: rebalancing updates it
    on every migration, bumping ``migrations`` and adding any in-flight
    checkpoint/restore time to ``migration_delay``.  ``tenant`` carries
    the submission's owning tenant (``None`` outside multi-tenant runs).
    """

    label: str
    worker_name: str
    cid: int
    submit_time: float
    placed_time: float = 0.0
    queue_delay: float = 0.0
    migrations: int = 0
    migration_delay: float = 0.0
    tenant: str | None = None


class Manager:
    """Accepts submissions, queues them under pressure, places containers.

    Parameters
    ----------
    sim:
        The simulation engine.
    workers:
        The cluster's initial workers (non-empty, unique names).
    placement:
        A :class:`~repro.cluster.placement.PlacementPolicy` instance or
        registry name (``"spread"``, ``"binpack"``, ``"random"``,
        ``"affinity"``, ``"progress"``); ``None`` means spread, the
        historical default.
    rebalance:
        A :class:`~repro.cluster.rebalance.RebalancePolicy` instance or
        registry name (``"none"``, ``"migrate"``, ``"progress"``);
        ``None`` means no rebalancing, the historical default.
    admission:
        An :class:`~repro.cluster.admission.AdmissionPolicy` instance or
        registry name (``"fifo"``, ``"backfill"``, ``"priority"``,
        ``"wfq"``, ``"sjf"``); ``None`` means FIFO, the historical
        default (bit-identical to the pre-extraction hardcoded deque).
    autoscale:
        An :class:`~repro.cluster.autoscale.AutoscalePolicy` instance or
        registry name (``"none"``, ``"queue_depth"``, ``"progress"``);
        ``None`` means a fixed fleet, the historical default.
    failures:
        A :class:`~repro.cluster.failures.FailureInjector` instance or
        spec string (``"none"``, ``"random"``, ``"rolling"``,
        ``"az_outage"``, ``"slow"``, optionally with a durability suffix
        like ``"rolling:checkpoint(60)"``); ``None`` means fair weather,
        the historical default.
    fabric:
        A :class:`~repro.cluster.fabric.FabricPolicy` instance or spec
        string (``"ideal"``, or a fault plan like
        ``"partition(25..55):retry(max=8,base=0.5)"``); ``None`` means
        the ideal fabric, bit-identical to the direct-call manager.
    worker_factory:
        ``name -> Worker`` builder for autoscale-provisioned nodes.
        ``None`` (default) clones the first initial worker's shape
        (capacity, contention, allocation mode, admission slots).
    stream_sink:
        Optional :class:`~repro.metrics.sketch.StreamMetrics`.  When
        given, the manager runs in bounded memory: per-label delay and
        tenant maps are skipped (delays fold into the sink at placement
        time), placement records are dropped as containers exit, and
        duplicate-label detection is waived (a million-label set is
        exactly the memory this mode exists to avoid — streams are
        generator-built with unique labels by construction).
    """

    def __init__(
        self,
        sim: Simulator,
        workers: list[Worker],
        *,
        placement: PlacementPolicy | str | None = None,
        rebalance: RebalancePolicy | str | None = None,
        admission: AdmissionPolicy | str | None = None,
        autoscale: AutoscalePolicy | str | None = None,
        failures: FailureInjector | str | None = None,
        fabric: FabricPolicy | str | None = None,
        worker_factory: WorkerFactory | None = None,
        stream_sink=None,
    ) -> None:
        if not workers:
            raise ClusterError("a manager needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate worker names: {names}")
        self.sim = sim
        self.workers = list(workers)
        self.placement = make_placement(placement)
        self.placement.bind(sim)
        self.rebalance = make_rebalance(rebalance)
        self.rebalance.bind(sim)
        self.admission = make_admission(admission)
        self.admission.bind(sim)
        self.autoscale = make_autoscale(autoscale)
        self.autoscale.bind(sim, len(self.workers))
        self.failures = make_failures(failures)
        self.fabric = make_fabric(fabric)
        self.worker_factory = worker_factory
        # Checkpoint pruning stays enabled even with rebalancing armed:
        # a migrated container's new-node observers are window-seeded at
        # the attach instant (Worker.attach), so nobody opens a window
        # below the pruned floor.
        self.placements: dict[str, Placement] = {}
        #: label → queueing delay, for jobs that actually waited (>0 s).
        self.queue_delays: dict[str, float] = {}
        #: label → tenant, for submissions that declared one.
        self.tenants: dict[str, str] = {}
        #: label → migration count, for jobs that actually migrated.
        self.migrations: dict[str, int] = {}
        #: label → summed in-flight checkpoint/restore seconds.
        self.migration_delays: dict[str, float] = {}
        self.peak_queue_len: int = 0
        #: ``(time, fleet size)`` after every provision/retire (and the
        #: initial fleet at t=0); length 1 for fixed-fleet runs.
        self.fleet_timeline: list[tuple[float, int]] = [
            (sim.now, len(self.workers))
        ]
        #: Hooks invoked with each autoscale-provisioned worker after it
        #: joins the fleet: f(worker).  The runner attaches recorders
        #: and scheduling policies here.
        self.provision_hooks: list = []
        #: Hooks invoked with each retired worker after it leaves: f(worker).
        self.retire_hooks: list = []
        #: Hooks invoked with each crashed worker after it leaves: f(worker).
        self.fail_hooks: list = []
        #: Hooks invoked with each recovered worker after it rejoins: f(worker).
        self.recover_hooks: list = []
        #: label → crash-restart count, for jobs restarted at least once.
        self.retries: dict[str, int] = {}
        #: label → (retries used, CPU-seconds lost) for retry-exhausted jobs.
        self.failed: dict[str, tuple[int, float]] = {}
        #: label → total CPU-seconds of progress lost to crashes.
        self.lost_work: dict[str, float] = {}
        #: Names of workers that have crashed at least once (never removed;
        #: a stale placement record may still point at one of these).
        self.crashed_workers: set[str] = set()
        self.stream_sink = stream_sink
        self._streaming = stream_sink is not None
        #: Iterator of not-yet-scheduled submissions during a lazy
        #: ``submit_stream``; at most one of its arrivals is in the
        #: event queue at a time.
        self._stream_iter = None
        self._labels: set[str] = set()
        self._pending: int = 0
        self._in_flight: int = 0
        self._provisions_pending: int = 0
        self._next_worker_idx = len(self.workers)
        #: label → original submission for every *resident* job, so a
        #: crash can re-queue orphans with their original tenant, weight,
        #: priority and retry budget (tracked only when failures are armed).
        self._active_submissions: dict[str, JobSubmission] = {}
        #: cid → (arrival event, container, target) for migrations still
        #: in flight — a crash of the target must cancel the arrival.
        self._inflight_migrations: dict[
            int, tuple[EventHandle, object, Worker]
        ] = {}
        #: Template for the default worker factory, captured up front so
        #: provisioning survives even a whole-fleet outage.
        self._worker_template = self.workers[0]
        for worker in self.workers:
            worker.exit_hooks.append(self._on_worker_exit)
            worker.reap_exited = self._streaming
        self._failures_armed = not isinstance(self.failures, NoFailures)
        self._fabric_ideal = isinstance(self.fabric, IdealFabric)
        #: Original submissions are tracked whenever anything can orphan
        #: a placed job — worker crashes *or* undeliverable messages.
        self._track_submissions = (
            self._failures_armed or not self._fabric_ideal
        )
        # The fabric binds before the failure plan (partition groups are
        # resolved from the initial fleet); failures still bind last.
        self.fabric.bind(sim, self)
        if self._failures_armed:
            # Bind last: fault plans may inspect the fully wired fleet.
            self.failures.bind(sim, self)

    # -- submission ---------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> None:
        """Queue *submission* for arrival at its submit time.

        The label/pending bookkeeping mutates only after the simulator
        accepts the event, so a scheduling failure (e.g. a submit time in
        the past) leaves the manager's state untouched and the label
        reusable.
        """
        if not self._streaming and submission.label in self._labels:
            raise ClusterError(f"duplicate job label {submission.label!r}")
        self.sim.schedule(
            submission.submit_time,
            self._on_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=submission,
        )
        if not self._streaming:
            self._labels.add(submission.label)
        self._pending += 1

    def submit_all(self, submissions: list[JobSubmission]) -> None:
        """Queue a whole schedule."""
        for sub in submissions:
            self.submit(sub)

    def submit_stream(self, submissions) -> None:
        """Consume an iterable of submissions lazily, one arrival at a time.

        Exactly one stream arrival sits in the event queue at any
        moment: when it fires, the next submission is pulled from the
        iterator and scheduled.  The iterable must yield non-decreasing
        ``submit_time``\\ s (every generator family does); with
        continuous arrival distributions the resulting run is
        bit-identical to eagerly ``submit_all``-ing the materialized
        list — exact cross-kind event-time ties are the measure-zero
        exception, since a lazily scheduled arrival sequences after
        same-instant events that an eager submit would have preceded.
        """
        if self._stream_iter is not None:
            raise ClusterError("a submission stream is already being consumed")
        self._stream_iter = iter(submissions)
        self._advance_stream()

    def _advance_stream(self) -> None:
        """Schedule the stream's next arrival (if any)."""
        it = self._stream_iter
        if it is None:
            return
        nxt = next(it, None)
        if nxt is None:
            self._stream_iter = None
            return
        if not self._streaming and nxt.label in self._labels:
            raise ClusterError(f"duplicate job label {nxt.label!r}")
        self.sim.schedule(
            nxt.submit_time,
            self._on_stream_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=nxt,
        )
        if not self._streaming:
            self._labels.add(nxt.label)
        self._pending += 1

    def _on_stream_arrival(self, event: Event) -> None:
        # Pull the successor *before* handling this arrival, so a full
        # cluster (queueing, autoscale passes) never stalls the stream.
        self._advance_stream()
        self._on_arrival(event)

    # -- placement and admission ---------------------------------------------------

    def _eligible_workers(self) -> list[Worker]:
        return [w for w in self.workers if w.has_headroom()]

    def _place(self, submission: JobSubmission, eligible: list[Worker]) -> None:
        """Send a place order for *submission* to a chosen worker.

        The admission slot is reserved *before* the order is sent and
        released by the delivery handler, so a slow fabric can never
        over-subscribe a worker; through the ideal fabric the
        reserve/deliver/release sequence runs inline and is invisible.
        """
        worker = self.placement.select(eligible, submission)
        worker.reserve_slot()
        epoch = worker.epoch
        self.fabric.send(
            "place",
            MANAGER,
            worker.name,
            lambda: self._deliver_place(submission, worker, epoch),
            lambda: self._place_undeliverable(submission, worker, epoch),
        )

    def _deliver_place(
        self, submission: JobSubmission, worker: Worker, epoch: int
    ) -> None:
        """A place order arrives at its worker: launch the container."""
        if worker.epoch != epoch or worker not in self.workers:
            # The target crashed while the order was in flight (its
            # reservation vanished with the crash): admit the job again.
            self._admit(submission)
            return
        worker.release_reservation()
        container = worker.launch(
            submission.job,
            name=submission.label,
            image=submission.image,
        )
        now = self.sim.now
        delay = now - submission.submit_time
        self.placements[submission.label] = Placement(
            label=submission.label,
            worker_name=worker.name,
            cid=container.cid,
            submit_time=submission.submit_time,
            placed_time=now,
            queue_delay=delay,
            tenant=submission.tenant,
        )
        if self._streaming:
            # Bounded memory: the delay folds into the shared sketch sink
            # right now (zeros included — matching the dense per-tenant
            # views, which backfill 0.0 for jobs that never queued).
            self.stream_sink.observe_placement(
                submission.label, submission.tenant, delay
            )
        else:
            if delay > 0:
                self.queue_delays[submission.label] = delay
            if submission.tenant is not None:
                self.tenants[submission.label] = submission.tenant
        if self._track_submissions:
            self._active_submissions[submission.label] = submission
        self._pending -= 1
        if self._pending == 0:
            # No accepted submission is still waiting to be placed: the
            # progress placement observer (if any) goes quiescent and
            # releases its bus subscriptions, so checkpoint pruning is no
            # longer pinned at its last sampling windows.
            self.placement.quiesce()
        self.sim.trace(
            "manager.place",
            f"placed {submission.label} on {worker.name}"
            + (f" after {delay:.1f}s queued" if delay > 0 else ""),
            cid=container.cid,
        )

    def _place_undeliverable(
        self, submission: JobSubmission, worker: Worker, epoch: int
    ) -> None:
        """A place order exhausted its retries: reconcile the job.

        The reservation is released (unless the worker's crash already
        zeroed it), one unit of the submission's ``retry_budget`` is
        consumed — an undeliverable order is operationally a lost
        execution attempt — and the job re-enters admission, or lands in
        :attr:`failed` with its budget exhausted.  Accounting stays
        exactly-once: the job was never launched, so nothing ran twice.
        """
        if worker.epoch == epoch and worker in self.workers:
            worker.release_reservation()
        label = submission.label
        used = self.retries.get(label, 0)
        if used >= submission.retry_budget:
            self.failed[label] = (used, self.lost_work.get(label, 0.0))
            self._pending -= 1
            if self.sim.trace_enabled:
                self.sim.trace(
                    "manager.fault",
                    f"{label} failed permanently: place order "
                    f"undeliverable after {used} retries",
                )
            if self._pending == 0:
                self.placement.quiesce()
            return
        self.retries[label] = used + 1
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.fault",
                f"re-admitting {label} after undeliverable place order "
                f"(retry {self.retries[label]}/{submission.retry_budget})",
            )
        self._admit(submission)

    def _rearm_draining(self) -> list[Worker]:
        """Un-drain one worker with free slots; return the new eligibles.

        An arrival that would queue while a draining worker still has
        admission slots is proof the fleet is too small to be
        shrinking: cancel that worker's retirement instead of making
        the job wait for a scale-up threshold.  One worker per arrival,
        in fleet order — deterministic, and enough for this job.
        """
        for worker in self.workers:
            if worker.draining and (
                worker.max_containers is None
                or len(worker.running_containers()) + worker.reserved
                < worker.max_containers
            ):
                worker.draining = False
                self.sim.trace(
                    "manager.scale",
                    f"re-armed draining {worker.name} for a queued arrival",
                )
                return self._eligible_workers()
        return []

    def _on_arrival(self, event: Event) -> None:
        self._admit(event.payload)

    def _admit(self, submission: JobSubmission) -> None:
        """Place an accepted submission now, or queue it under pressure."""
        eligible = self._eligible_workers()
        if not eligible and not isinstance(self.autoscale, NoAutoscale):
            eligible = self._rearm_draining()
        if not eligible:
            self.admission.push(submission)
            depth = len(self.admission)
            if depth > self.peak_queue_len:
                self.peak_queue_len = depth
            self.sim.trace(
                "manager.queue",
                f"queued {submission.label} "
                f"(cluster full, depth {depth})",
            )
            self._autoscale_pass()
            return
        self._place(submission, eligible)

    def _fitting_workers(
        self, submission: JobSubmission, eligible: list[Worker]
    ) -> list[Worker]:
        """Eligible workers that can host *submission* without memory
        overcommit.

        An empty worker always fits: a job whose footprint alone
        exceeds node RAM runs (thrashing-penalized) on a dedicated node
        exactly as it always has, so a fit-aware admission policy can
        never deadlock behind it.
        """
        mem = submission.job.footprint.memory
        return [
            w
            for w in eligible
            if w.is_empty() or w.memory_used() + mem <= 1.0 + 1e-12
        ]

    def _drain_queue(self) -> bool:
        """Place queued jobs while headroom lasts; True if fully drained.

        Queued submissions keep strict priority over migrations: the
        rebalancer only ever moves containers into slots the drain left
        free (a non-empty queue implies zero headroom anywhere, so no
        migration target exists).

        Each release goes through the admission policy's
        :meth:`~repro.cluster.admission.AdmissionPolicy.pop_fitting`
        with a fit probe over the current eligible workers.  The default
        policies ignore the probe (bit-identical to the historical
        unconditional ``pop``, and placement still sees every eligible
        worker); fit-aware policies (``"backfill"``) use it to release
        out of order, and their releases are placed on the workers the
        probe accepted.
        """
        while len(self.admission):
            eligible = self._eligible_workers()
            if not eligible:
                return False
            fit_cache: dict[int, list[Worker]] = {}

            def fits(sub: JobSubmission) -> bool:
                workers = self._fitting_workers(sub, eligible)
                fit_cache[id(sub)] = workers
                return bool(workers)

            submission = self.admission.pop_fitting(fits)
            if submission is None:
                return False
            self._place(submission, fit_cache.get(id(submission), eligible))
        return True

    def _on_worker_exit(self, container) -> None:
        """Worker exit hook: notify the manager through the fabric.

        A lost exit notification is discovered late by reconciliation
        (the ``on_fail`` handler simply delivers it), so the queue
        always drains eventually — a partitioned worker cannot wedge
        admission forever.
        """
        record = self.placements.get(container.name)
        src = record.worker_name if record is not None else MANAGER
        deliver = lambda: self._deliver_exit(container)  # noqa: E731
        self.fabric.send("exit", src, MANAGER, deliver, deliver)

    def _deliver_exit(self, container) -> None:
        """An exit notification arrives: drain the queue, then rebalance.

        The rebalance pass runs only when the queue fully drained (a
        backlog implies no free slot to migrate into); the autoscale
        pass always runs — the backlog is precisely its scale-up signal.
        """
        if self._track_submissions:
            # The job completed: no crash can orphan it anymore.
            self._active_submissions.pop(container.name, None)
        if self._streaming:
            # Exited jobs leave no placement record behind — with the
            # recorder's sampler/tracker forgets, this is the manager's
            # half of the bounded-memory guarantee.  (The retry/failure
            # maps stay: they hold only crash-affected labels.)
            self.placements.pop(container.name, None)
        if self._drain_queue():
            self._rebalance_pass()
        self._autoscale_pass()

    # -- rebalancing ----------------------------------------------------------------

    def _rebalance_pass(self) -> None:
        """Plan and execute migrations for the current cluster state."""
        if isinstance(self.rebalance, NoRebalance):
            # Short-circuit: "none" runs must be bit-identical to the
            # pre-rebalancing manager — no sampling, no planning.
            return
        if len(self.workers) < 2:
            return
        # Settle everyone first: progress signals and remaining-work
        # projections must reflect *now*, not each worker's last event.
        for worker in self.workers:
            worker.settle()
        for move in self.rebalance.plan(self.workers):
            self._migrate(move)

    def _migrate(self, move: Migration) -> None:
        """Execute one planned migration through the fabric.

        The detach order travels to the source worker; a lost order
        simply cancels the move (nothing has happened yet, so there is
        nothing to undo — the rebalancer will re-plan from live state).
        """
        delay = self.rebalance.delay_for(move.container)
        self.fabric.send(
            "detach",
            MANAGER,
            move.source.name,
            lambda: self._deliver_detach(move, delay),
        )

    def _deliver_detach(self, move: Migration, delay: float) -> None:
        """A detach order arrives: checkpoint the container off its node."""
        label = move.label
        cid = move.container.cid
        if move.source not in self.workers or not any(
            c.cid == cid for c in move.source.running_containers()
        ):
            return  # the order raced an exit or a crash and lost
        if move.target not in self.workers or not move.target.has_headroom():
            return  # the target filled or vanished while the order flew
        container = move.source.detach(cid)
        self.migrations[label] = self.migrations.get(label, 0) + 1
        if delay > 0:
            self.migration_delays[label] = (
                self.migration_delays.get(label, 0.0) + delay
            )
        record = self.placements.get(label)
        if record is not None:
            self.placements[label] = replace(
                record,
                worker_name=move.target.name,
                migrations=record.migrations + 1,
                migration_delay=record.migration_delay + delay,
            )
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.migrate",
                f"migrating {label} {move.source.name} → {move.target.name}"
                + (f" ({delay:.1f}s in flight)" if delay > 0 else ""),
                cid=container.cid,
            )
        if delay <= 0:
            self._send_attach(container, move.target)
            return
        move.target.reserve_slot()
        self._in_flight += 1
        handle = self.sim.schedule(
            self.sim.now + delay,
            self._on_migration_arrival,
            kind=EventKind.CONTAINER_MIGRATION,
            priority=PRIORITY_ARRIVAL,
            payload=(container, move.target),
        )
        # Remember the arrival so a crash of the target can cancel it
        # (the travelling container then becomes an orphan of the crash).
        self._inflight_migrations[container.cid] = (
            handle, container, move.target
        )

    def _on_migration_arrival(self, event: Event) -> None:
        """An in-flight container reaches its target: send the attach leg."""
        container, target = event.payload
        self._inflight_migrations.pop(container.cid, None)
        target.release_reservation()
        self._in_flight -= 1
        self._send_attach(container, target)

    def _send_attach(self, container, target: Worker) -> None:
        """Send the attach leg, holding a slot until it resolves."""
        target.reserve_slot()
        epoch = target.epoch
        self.fabric.send(
            "attach",
            MANAGER,
            target.name,
            lambda: self._deliver_attach(container, target, epoch),
            lambda: self._attach_undeliverable(container, target, epoch),
        )

    def _deliver_attach(self, container, target: Worker, epoch: int) -> None:
        """An attach order arrives: the target adopts the container."""
        if target.epoch != epoch or target not in self.workers:
            # The target crashed under the in-flight container: it is an
            # orphan now, exactly as if it had been resident at the crash.
            self._resolve_orphan(container)
            return
        target.release_reservation()
        target.attach(container)

    def _attach_undeliverable(
        self, container, target: Worker, epoch: int
    ) -> None:
        """An attach order exhausted its retries: orphan the container."""
        if target.epoch == epoch and target in self.workers:
            target.release_reservation()
        self._resolve_orphan(container)

    # -- autoscaling -----------------------------------------------------------------

    def _autoscale_pass(self) -> None:
        """Consult the autoscale policy and apply its fleet delta."""
        if isinstance(self.autoscale, NoAutoscale):
            # Short-circuit: "none" runs must be bit-identical to the
            # fixed-fleet manager — no planning, no timeline churn.
            return
        self._retire_drained()
        delta = self.autoscale.plan(self)
        if delta > 0:
            for _ in range(delta):
                if not self._scale_up():
                    break
        elif delta < 0:
            for _ in range(-delta):
                if not self._scale_down():
                    break

    def _scale_up(self) -> bool:
        """Re-arm a draining worker, or schedule one provision event."""
        ceiling = self.autoscale.max_workers
        if (
            ceiling is not None
            and len(self.workers) + self._provisions_pending >= ceiling
        ):
            return False
        for worker in self.workers:
            if worker.draining:
                # Cheaper than a boot: the node never actually left.
                worker.draining = False
                self.sim.trace(
                    "manager.scale", f"re-armed draining {worker.name}"
                )
                self._drain_queue()
                return True
        self._provisions_pending += 1
        self.fabric.send(
            "provision",
            MANAGER,
            "cloud",
            self._deliver_provision,
            self._provision_undeliverable,
        )
        self.sim.trace(
            "manager.scale",
            f"provisioning worker ({self.autoscale.provision_delay:.0f}s "
            f"boot, fleet {len(self.workers)}"
            f"+{self._provisions_pending} pending)",
        )
        return True

    def _deliver_provision(self) -> None:
        """A provision order reaches the cloud: the boot clock starts."""
        self.sim.schedule(
            self.sim.now + self.autoscale.provision_delay,
            self._on_provision,
            kind=EventKind.WORKER_PROVISION,
            priority=PRIORITY_ARRIVAL,
        )

    def _provision_undeliverable(self) -> None:
        """A provision order was lost: give the signal back to the planner."""
        self._provisions_pending -= 1
        self.sim.trace(
            "manager.scale", "provision order lost in the fabric; replanning"
        )
        self._autoscale_pass()

    def _on_provision(self, _event: Event) -> None:
        """A provisioned worker finishes booting and joins the fleet."""
        self._provisions_pending -= 1
        name = f"worker-{self._next_worker_idx}"
        self._next_worker_idx += 1
        factory = self.worker_factory or self._default_worker_factory
        worker = factory(name)
        worker.exit_hooks.append(self._on_worker_exit)
        worker.reap_exited = self._streaming
        self.workers.append(worker)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        self.sim.trace(
            "manager.scale",
            f"{name} joined the fleet (size {len(self.workers)})",
        )
        for hook in self.provision_hooks:
            hook(worker)
        if self._drain_queue():
            self._rebalance_pass()
        self._autoscale_pass()

    def _default_worker_factory(self, name: str) -> Worker:
        """Clone the initial fleet's shape for a provisioned node."""
        template = self._worker_template
        return Worker(
            self.sim,
            name=name,
            capacity=template.capacity,
            contention=template.contention,
            allocation_mode=template.allocator.mode,
            reschedule_tolerance=template.reschedule_tolerance,
            max_containers=template.max_containers,
        )

    def _retirable(self) -> list[Worker]:
        """Workers the autoscaler may remove, never below its floor."""
        floor = self.autoscale.min_workers or 1
        headroom = len(self.workers) - max(floor, 1)
        if headroom <= 0:
            return []
        # Newest nodes leave first (LIFO): the initial fleet is sticky.
        return list(reversed(self.workers))[:headroom]

    def _retire_drained(self) -> None:
        """Retire any draining worker that has become empty."""
        for worker in [w for w in self.workers if w.draining]:
            if worker.is_empty():
                self._retire(worker)

    def _scale_down(self) -> bool:
        """Retire one empty worker, or start draining one."""
        candidates = self._retirable()
        if not candidates:
            return False
        for worker in candidates:
            if not worker.draining and worker.is_empty():
                self._retire(worker)
                return True
        for worker in candidates:
            # Only nodes with no in-flight arrivals can drain: a
            # reservation means a migrated container is about to attach.
            if not worker.draining and worker.reserved == 0:
                worker.draining = True
                self.sim.trace(
                    "manager.scale",
                    f"draining {worker.name} "
                    f"({len(worker.running_containers())} containers left)",
                )
                return True
        return False

    def _retire(self, worker: Worker) -> None:
        """Send a retire order for one empty worker."""
        self.fabric.send(
            "retire",
            MANAGER,
            worker.name,
            lambda: self._deliver_retire(worker),
        )

    def _deliver_retire(self, worker: Worker) -> None:
        """A retire order arrives: the worker leaves the fleet if still idle."""
        if worker not in self.workers or not worker.is_empty():
            # The order raced real fleet dynamics (a placement landed, a
            # crash removed the node first) and lost; the next autoscale
            # pass re-plans from live state.
            return
        worker.draining = False
        worker.exit_hooks.remove(self._on_worker_exit)
        self.workers.remove(worker)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        self.sim.trace(
            "manager.scale",
            f"retired {worker.name} (fleet size {len(self.workers)})",
        )
        for hook in self.retire_hooks:
            hook(worker)

    # -- failure injection -------------------------------------------------------------

    def schedule_fault(self, fault: WorkerFault) -> None:
        """Schedule one injected fault as a ``WORKER_FAIL`` event.

        Public so that injectors (at bind time) and tests/examples (at
        any time ≥ now) can drive the same code path.
        """
        self.sim.schedule(
            fault.time,
            self._on_fault,
            kind=EventKind.WORKER_FAIL,
            priority=PRIORITY_ARRIVAL,
            payload=fault,
        )

    def _on_fault(self, event: Event) -> None:
        """An injected fault fires: the failure detector reports it.

        The report travels through the fabric — under a partition the
        manager may learn of a crash late (or only when reconciliation
        audits the fleet), during which the node's work continues to be
        treated as live, exactly like a real missed-heartbeat window.
        """
        fault: WorkerFault = event.payload
        deliver = lambda: self._deliver_fault(fault)  # noqa: E731
        self.fabric.send("fail", fault.worker, MANAGER, deliver, deliver)

    def _deliver_fault(self, fault: WorkerFault) -> None:
        """A fault report reaches the manager: act on it."""
        worker = next(
            (w for w in self.workers if w.name == fault.worker), None
        )
        if worker is None:
            # Already crashed or autoscale-retired: the fault races real
            # fleet dynamics and loses.
            return
        if fault.kind == "slow":
            self._degrade_worker(worker, fault)
        else:
            self._crash_worker(worker, fault)

    def _degrade_worker(self, worker: Worker, fault: WorkerFault) -> None:
        """Fail-slow: capacity degrades in place; containers keep running."""
        original = worker.capacity
        worker.set_capacity(original * fault.capacity_factor)
        self.sim.trace(
            "manager.fault",
            f"{worker.name} degraded to {worker.capacity:g} CPU "
            f"(×{fault.capacity_factor:g} fail-slow)",
        )
        if fault.recover_after is not None:
            self.sim.schedule_in(
                fault.recover_after,
                self._on_slow_recover,
                kind=EventKind.WORKER_RECOVER,
                priority=PRIORITY_ARRIVAL,
                payload=(worker, original),
            )

    def _on_slow_recover(self, event: Event) -> None:
        """A degraded worker reports recovery (through the fabric)."""
        worker, capacity = event.payload
        deliver = lambda: self._deliver_slow_recover(worker, capacity)  # noqa: E731
        self.fabric.send("recover", worker.name, MANAGER, deliver, deliver)

    def _deliver_slow_recover(self, worker: Worker, capacity: float) -> None:
        """A degraded worker's capacity is restored.

        Restored even if the node crashed or was retired in the interim
        (both leave it empty, so the reallocation is a no-op): a node
        that later rejoins must come back at full health.
        """
        worker.set_capacity(capacity)
        self.sim.trace(
            "manager.fault",
            f"{worker.name} recovered to {capacity:g} CPU",
        )

    def _crash_worker(self, worker: Worker, fault: WorkerFault) -> None:
        """Fail-stop: detach the worker and resolve its orphans."""
        # Migrations still in flight *towards* the dead node can never
        # arrive: cancel them and fold their containers into the orphan
        # set.  (Migrations *from* it already left and are unaffected.)
        stranded = []
        for cid, (handle, container, target) in list(
            self._inflight_migrations.items()
        ):
            if target is worker:
                self.sim.cancel(handle)
                del self._inflight_migrations[cid]
                self._in_flight -= 1
                stranded.append(container)
        orphans = worker.crash() + stranded
        worker.exit_hooks.remove(self._on_worker_exit)
        self.workers.remove(worker)
        self.crashed_workers.add(worker.name)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.fault",
                f"{worker.name} crashed "
                f"({len(orphans)} containers orphaned, "
                f"fleet size {len(self.workers)})",
            )
        for hook in tuple(self.fail_hooks):
            hook(worker)
        for container in orphans:
            self._resolve_orphan(container)
        if fault.recover_after is not None:
            self.sim.schedule_in(
                fault.recover_after,
                self._on_worker_recover,
                kind=EventKind.WORKER_RECOVER,
                priority=PRIORITY_ARRIVAL,
                payload=worker,
            )
        self._autoscale_pass()

    def _resolve_orphan(self, container) -> None:
        """Re-queue or fail one container orphaned by a crash.

        The durability model decides how much work survives; the job is
        rolled back to it and the *original* submission re-enters through
        the normal arrival path (admission order, tenant, weight and
        priority all preserved) after the model's restore delay — unless
        the retry budget is exhausted, in which case the job lands in
        :attr:`failed` and is never executed again.
        """
        label = container.name
        submission = self._active_submissions.get(label)
        resume_work, restore_delay = self.failures.durability.on_crash(
            container
        )
        lost = max(0.0, container.job.work_done - resume_work)
        self.lost_work[label] = self.lost_work.get(label, 0.0) + lost
        used = self.retries.get(label, 0)
        if submission is None or used >= submission.retry_budget:
            self.failed[label] = (used, self.lost_work[label])
            self._active_submissions.pop(label, None)
            if self.sim.trace_enabled:
                self.sim.trace(
                    "manager.fault",
                    f"{label} failed permanently after {used} retries "
                    f"({self.lost_work[label]:.1f} CPU-s lost)",
                )
            return
        self.retries[label] = used + 1
        container.job.work_done = resume_work
        self._pending += 1
        self.sim.schedule(
            self.sim.now + restore_delay,
            self._on_arrival,
            kind=EventKind.JOB_ARRIVAL,
            priority=PRIORITY_ARRIVAL,
            payload=submission,
        )
        if self.sim.trace_enabled:
            self.sim.trace(
                "manager.fault",
                f"re-queued {label} (retry {self.retries[label]}"
                f"/{submission.retry_budget}, resume from "
                f"{resume_work:.1f} CPU-s"
                + (
                    f", {restore_delay:.1f}s restore" if restore_delay > 0
                    else ""
                )
                + ")",
            )

    def _on_worker_recover(self, event: Event) -> None:
        """A crashed worker reports itself back (through the fabric)."""
        worker: Worker = event.payload
        deliver = lambda: self._deliver_recover(worker)  # noqa: E731
        self.fabric.send("recover", worker.name, MANAGER, deliver, deliver)

    def _deliver_recover(self, worker: Worker) -> None:
        """A crashed worker rejoins the fleet, empty and at full health."""
        if any(w.name == worker.name for w in self.workers):
            return  # pragma: no cover - defensive (double recovery)
        worker.exit_hooks.append(self._on_worker_exit)
        worker.reap_exited = self._streaming
        self.workers.append(worker)
        self.fleet_timeline.append((self.sim.now, len(self.workers)))
        self.sim.trace(
            "manager.fault",
            f"{worker.name} recovered and rejoined "
            f"(fleet size {len(self.workers)})",
        )
        for hook in tuple(self.recover_hooks):
            hook(worker)
        if self._drain_queue():
            self._rebalance_pass()
        self._autoscale_pass()

    # -- views ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submissions accepted but not yet placed (queued ones included)."""
        return self._pending

    @property
    def queue_len(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self.admission)

    @property
    def in_flight(self) -> int:
        """Containers currently migrating between workers."""
        return self._in_flight

    @property
    def provisions_pending(self) -> int:
        """Autoscale-provisioned workers still booting."""
        return self._provisions_pending

    @property
    def fleet_size(self) -> int:
        """Workers currently in the fleet (draining ones included)."""
        return len(self.workers)

    def migration_count(self, label: str) -> int:
        """How many times a job has been migrated (0 if never)."""
        return self.migrations.get(label, 0)

    @property
    def total_migrations(self) -> int:
        """Migrations executed so far, cluster-wide."""
        return sum(self.migrations.values())

    def queued_labels(self) -> list[str]:
        """Labels waiting in the admission queue, in drain order."""
        return [sub.label for sub in self.admission.queued()]

    def inflight_cids(self) -> list[int]:
        """Container ids currently migrating between workers."""
        return list(self._inflight_migrations)

    def placement_of(self, label: str) -> Placement:
        """Placement record for a job label."""
        try:
            return self.placements[label]
        except KeyError:
            raise ClusterError(f"job {label!r} has not been placed yet") from None
