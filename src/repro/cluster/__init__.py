"""Cluster substrate: manager, workers, container pools.

Mirrors the paper's §3.1 topology: a manager accepts job submissions and
dispatches them to workers; each worker hosts a container pool where jobs
compete for CPU.  All FlowCon machinery runs worker-side
(:mod:`repro.core`), exactly as the paper argues ("FlowCon runs on the
worker side to prevent overwhelming the manager").

Key classes
-----------
:class:`~repro.cluster.worker.Worker`
    Owns the container runtime, integrates job progress analytically over
    intervals of constant allocation, schedules exit events.
:class:`~repro.cluster.manager.Manager`
    Schedules submissions as simulation events, applies capacity-aware
    admission through a pluggable
    :class:`~repro.cluster.admission.AdmissionPolicy`, places containers
    through a pluggable
    :class:`~repro.cluster.placement.PlacementPolicy`, and scales the
    fleet through a pluggable
    :class:`~repro.cluster.autoscale.AutoscalePolicy`.
:mod:`~repro.cluster.admission`
    Admission policies ordering the pending queue: fifo (default),
    strict priority classes, weighted fair queueing across tenants,
    and shortest-job-first.
:mod:`~repro.cluster.placement`
    Placement policies: spread (default), binpack, seeded random,
    framework/model affinity and SLAQ-signal progress placement.
:mod:`~repro.cluster.rebalance`
    Rebalance policies revisiting placements on exit events: none
    (default), count-balancing migrate-on-exit, and progress-aware
    straggler migration via live ``Worker.detach``/``attach``.
:mod:`~repro.cluster.autoscale`
    Autoscale policies growing/shrinking the fleet from the queue's
    depth and expected-work backlog: none (default), queue_depth, and
    progress.
:class:`~repro.cluster.pool.ContainerPool`
    Arrival/finish journal the worker-monitor listeners poll.
:class:`~repro.cluster.contention.ContentionModel`
    Interference model: per-concurrent-container efficiency loss and
    demand jitter under free competition.
"""

from repro.cluster.admission import (
    ADMISSIONS,
    AdmissionPolicy,
    FifoAdmission,
    PriorityAdmission,
    SjfAdmission,
    WfqAdmission,
    make_admission,
)
from repro.cluster.autoscale import (
    AUTOSCALERS,
    AutoscalePolicy,
    NoAutoscale,
    ProgressAutoscale,
    QueueDepthAutoscale,
    make_autoscale,
)
from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager, Placement
from repro.cluster.placement import (
    PLACEMENTS,
    AffinityPlacement,
    BinPackPlacement,
    PlacementPolicy,
    ProgressPlacement,
    RandomPlacement,
    SpreadPlacement,
    make_placement,
)
from repro.cluster.pool import ContainerPool, PoolDelta
from repro.cluster.rebalance import (
    REBALANCERS,
    MigrateOnExit,
    Migration,
    NoRebalance,
    ProgressAwareRebalance,
    RebalancePolicy,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker

__all__ = [
    "ADMISSIONS",
    "AUTOSCALERS",
    "AdmissionPolicy",
    "AffinityPlacement",
    "AutoscalePolicy",
    "BinPackPlacement",
    "ContainerPool",
    "ContentionModel",
    "FifoAdmission",
    "JobSubmission",
    "Manager",
    "MigrateOnExit",
    "Migration",
    "NoAutoscale",
    "NoRebalance",
    "PLACEMENTS",
    "Placement",
    "PlacementPolicy",
    "PoolDelta",
    "PriorityAdmission",
    "ProgressAutoscale",
    "ProgressAwareRebalance",
    "ProgressPlacement",
    "QueueDepthAutoscale",
    "REBALANCERS",
    "RandomPlacement",
    "RebalancePolicy",
    "SjfAdmission",
    "SpreadPlacement",
    "WfqAdmission",
    "Worker",
    "make_admission",
    "make_autoscale",
    "make_placement",
    "make_rebalance",
]
