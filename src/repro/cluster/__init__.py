"""Cluster substrate: manager, workers, container pools.

Mirrors the paper's §3.1 topology: a manager accepts job submissions and
dispatches them to workers; each worker hosts a container pool where jobs
compete for CPU.  All FlowCon machinery runs worker-side
(:mod:`repro.core`), exactly as the paper argues ("FlowCon runs on the
worker side to prevent overwhelming the manager").

Key classes
-----------
:class:`~repro.cluster.worker.Worker`
    Owns the container runtime, integrates job progress analytically over
    intervals of constant allocation, schedules exit events.
:class:`~repro.cluster.manager.Manager`
    Schedules submissions as simulation events, applies capacity-aware
    admission (FIFO queue under pressure) and places containers through
    a pluggable :class:`~repro.cluster.placement.PlacementPolicy`.
:mod:`~repro.cluster.placement`
    Placement policies: spread (default), binpack, seeded random,
    framework/model affinity and SLAQ-signal progress placement.
:mod:`~repro.cluster.rebalance`
    Rebalance policies revisiting placements on exit events: none
    (default), count-balancing migrate-on-exit, and progress-aware
    straggler migration via live ``Worker.detach``/``attach``.
:class:`~repro.cluster.pool.ContainerPool`
    Arrival/finish journal the worker-monitor listeners poll.
:class:`~repro.cluster.contention.ContentionModel`
    Interference model: per-concurrent-container efficiency loss and
    demand jitter under free competition.
"""

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager, Placement
from repro.cluster.placement import (
    PLACEMENTS,
    AffinityPlacement,
    BinPackPlacement,
    PlacementPolicy,
    ProgressPlacement,
    RandomPlacement,
    SpreadPlacement,
    make_placement,
)
from repro.cluster.pool import ContainerPool, PoolDelta
from repro.cluster.rebalance import (
    REBALANCERS,
    MigrateOnExit,
    Migration,
    NoRebalance,
    ProgressAwareRebalance,
    RebalancePolicy,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker

__all__ = [
    "AffinityPlacement",
    "BinPackPlacement",
    "ContainerPool",
    "ContentionModel",
    "JobSubmission",
    "Manager",
    "MigrateOnExit",
    "Migration",
    "NoRebalance",
    "PLACEMENTS",
    "Placement",
    "PlacementPolicy",
    "PoolDelta",
    "ProgressAwareRebalance",
    "ProgressPlacement",
    "REBALANCERS",
    "RandomPlacement",
    "RebalancePolicy",
    "SpreadPlacement",
    "Worker",
    "make_placement",
    "make_rebalance",
]
