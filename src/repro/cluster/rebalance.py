"""Rebalancing policies: preemptive container migration on exit events.

The cluster layer places a job once; without rebalancing a bad early
placement persists for the job's whole lifetime.  A
:class:`RebalancePolicy` revisits those decisions from the manager's
worker-exit hook — the natural SLAQ/Gandiva-style decision point, because
an exit is exactly when capacity frees up somewhere — and proposes
*migrations*: live moves of a running container from one worker to
another via :meth:`~repro.cluster.worker.Worker.detach` /
:meth:`~repro.cluster.worker.Worker.attach`.  A migrated container
carries its job state and cgroup counters with it, so its remaining work
is bit-exact; only node-local monitor history (stats windows, FlowCon's
growth samples) starts fresh on the target, as it would after a real
checkpoint/restore.

Three policies ship:

* :class:`NoRebalance` (``"none"``, the default) — never migrates.  The
  manager short-circuits it entirely, so runs are bit-identical to the
  pre-rebalancing manager (pinned by the golden-fixture tests).
* :class:`MigrateOnExit` (``"migrate"``) — Gandiva-flavoured count
  balancing: whenever the busiest worker holds at least ``gap`` more
  containers than the emptiest eligible worker, move its youngest
  container over.  Uses no progress signal; it is the simple baseline
  the progress-aware policy is measured against.
* :class:`ProgressAwareRebalance` (``"progress"``) — reads the same
  normalized quality-improvement-per-second signal
  :class:`~repro.baselines.slaq.SlaqLikePolicy` allocates by (Eq. 1
  progress over the job's normalized evaluation function, read through
  a private :class:`~repro.cluster.signals.ProgressObserver` so no
  other monitor's sampling windows are disturbed).  A worker whose
  containers progress
  slower than the cluster average is a straggler; its slowest container
  migrates to the worker where the expected post-move CPU share is at
  least ``min_gain`` times its current share.  The hysteresis makes the
  plan oscillation-free: once a move's reverse gain falls below 1 the
  container stays put.

All policies are deterministic under a fixed simulation seed: plans
derive only from simulator state and break ties lexicographically by
worker name and numerically by cid.  Policies hold per-run state, so
build a fresh instance per run — :func:`make_rebalance` resolves a
registry name (``"none"``, ``"migrate"``, ``"progress"``), which is also
what keeps batch tasks picklable: tasks carry the *name*, each worker
process materializes the policy.

``migration_delay`` models checkpoint/restore cost: with a positive
delay the container is detached immediately, the target admission slot
is *reserved*, and the attach fires ``delay`` seconds later (the job
makes no progress in flight).  The default 0.0 migrates synchronously.
Beyond a constant, the delay can be *derived from the container being
moved*: ``migration_delay="footprint"`` charges checkpoint time
proportional to the container's resident memory (checkpoint size is
what CRIU-style dump/restore actually pays for), and any callable
``container -> seconds`` plugs in a custom cost model.  The
progress-aware policy weighs that per-container cost against the
expected CPU-share gain when choosing its migrant — a heavy container
whose checkpoint costs more than the move saves stops being the
preferred victim.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence, Union

from repro.cluster.signals import ProgressObserver
from repro.errors import ClusterError, ConfigError, UnknownPolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager ← worker)
    from repro.containers.container import Container
    from repro.cluster.worker import Worker
    from repro.simcore.engine import Simulator

__all__ = [
    "Migration",
    "RebalancePolicy",
    "NoRebalance",
    "MigrateOnExit",
    "ProgressAwareRebalance",
    "REBALANCERS",
    "make_rebalance",
]


@dataclass(frozen=True)
class Migration:
    """One planned container move (not yet executed)."""

    container: "Container"
    source: "Worker"
    target: "Worker"

    @property
    def label(self) -> str:
        """The migrating job's label (container name)."""
        return self.container.name


#: Checkpoint seconds charged per unit of resident memory under the
#: ``"footprint"`` cost model (memory is a fraction of node RAM, so the
#: zoo's 0.12–0.40 footprints cost ~5–16 s — the CRIU dump/restore
#: ballpark for jobs of that working-set scale).
FOOTPRINT_DELAY_SCALE = 40.0

#: Accepted ``migration_delay`` shapes: constant seconds, the
#: ``"footprint"`` model, or a custom ``container -> seconds`` callable.
MigrationDelay = Union[float, str, Callable[["Container"], float]]


def _footprint_delay(container: "Container") -> float:
    """Checkpoint/restore seconds derived from resident memory."""
    return FOOTPRINT_DELAY_SCALE * float(container.job.footprint.memory)


def _admitted(worker: "Worker") -> int:
    """Containers occupying admission slots: running plus in-flight."""
    return len(worker.running_containers()) + worker.reserved


def _has_headroom(worker: "Worker", admitted: int) -> bool:
    """Headroom check against a *planned* admitted count.

    Draining workers (being retired by the autoscaler) accept no
    migration targets — moving work onto a node on its way out would
    only strand it again.
    """
    if worker.draining:
        return False
    return worker.max_containers is None or admitted < worker.max_containers


class RebalancePolicy(abc.ABC):
    """Proposes container migrations after each worker exit.

    The manager calls :meth:`bind` once at construction and :meth:`plan`
    once per exit event, after the admission queue has drained.  The
    returned migrations are executed in order; a plan must therefore be
    internally consistent (no slot used twice — the helpers above track
    planned counts for exactly this).

    Parameters
    ----------
    migration_delay:
        Checkpoint/restore in-flight time per migration.  A float is a
        constant number of seconds (0.0, the default, migrates
        synchronously); the string ``"footprint"`` derives the delay
        from the migrating container's resident memory (checkpoint
        size, :data:`FOOTPRINT_DELAY_SCALE` seconds per unit of RAM);
        a callable ``container -> seconds`` plugs in a custom cost
        model.  Recorded per job in
        :class:`~repro.cluster.manager.Placement` and surfaced through
        :class:`~repro.metrics.summary.RunSummary`.
    """

    #: Registry/display name ("none", "migrate", "progress").
    name: str = "rebalance"

    def __init__(self, *, migration_delay: MigrationDelay = 0.0) -> None:
        if isinstance(migration_delay, str):
            if migration_delay != "footprint":
                raise ConfigError(
                    f"unknown migration_delay model {migration_delay!r}; "
                    f"use a float, 'footprint', or a callable"
                )
        elif not callable(migration_delay):
            if migration_delay < 0:
                raise ConfigError(
                    f"migration_delay must be >= 0, got {migration_delay!r}"
                )
            migration_delay = float(migration_delay)
        self.migration_delay = migration_delay

    def delay_for(self, container: "Container") -> float:
        """Checkpoint/restore seconds for migrating *container*."""
        spec = self.migration_delay
        if isinstance(spec, float):
            return spec
        if isinstance(spec, str):  # validated: only "footprint"
            return _footprint_delay(container)
        delay = float(spec(container))
        if delay < 0:
            raise ConfigError(
                f"migration_delay callable returned {delay!r} "
                f"for {container.name}; delays must be >= 0"
            )
        return delay

    def _delay_label(self) -> str:
        """``describe()`` fragment for the delay model."""
        spec = self.migration_delay
        if isinstance(spec, float):
            return f"{spec:g}s"
        if isinstance(spec, str):
            return f"footprint×{FOOTPRINT_DELAY_SCALE:g}s"
        return getattr(spec, "__name__", "callable")

    def bind(self, sim: "Simulator") -> None:
        """Attach to a run's simulator (clock, RNG streams, tracing)."""

    @abc.abstractmethod
    def plan(self, workers: Sequence["Worker"]) -> list[Migration]:
        """Propose migrations for the current cluster state."""

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


class NoRebalance(RebalancePolicy):
    """Never migrate — the historical manager behaviour.

    The manager special-cases this policy and skips the whole rebalance
    pass, so ``rebalance="none"`` runs touch no sampler, no tracker and
    no extra events: bit-identical to the pre-rebalancing cluster layer.
    """

    name = "none"

    def plan(self, workers: Sequence["Worker"]) -> list[Migration]:
        return []


class MigrateOnExit(RebalancePolicy):
    """Count-balancing migration, Gandiva's migrate-on-exit flavour.

    Parameters
    ----------
    gap:
        Minimum container-count difference between the busiest and the
        emptiest eligible worker before a move fires (default 2: moving
        across a gap of 1 only swaps the imbalance).
    max_moves:
        Cap on migrations per plan; ``None`` balances until the gap
        closes.
    """

    name = "migrate"

    def __init__(
        self,
        *,
        gap: int = 2,
        max_moves: int | None = None,
        migration_delay: MigrationDelay = 0.0,
    ) -> None:
        super().__init__(migration_delay=migration_delay)
        if gap < 2:
            raise ConfigError(f"gap must be >= 2, got {gap!r}")
        if max_moves is not None and max_moves < 1:
            raise ConfigError(
                f"max_moves must be >= 1 or None, got {max_moves!r}"
            )
        self.gap = int(gap)
        self.max_moves = max_moves

    def plan(self, workers: Sequence["Worker"]) -> list[Migration]:
        counts = {w.name: _admitted(w) for w in workers}
        victims = {
            w.name: sorted(w.running_containers(), key=lambda c: c.cid)
            for w in workers
        }
        moves: list[Migration] = []
        limit = self.max_moves if self.max_moves is not None else sum(
            counts.values()
        )
        while len(moves) < limit:
            donors = [w for w in workers if victims[w.name]]
            if not donors:
                break
            # Rank by the same admitted counts the gap test below uses
            # (in-flight reservations included), not by victim count.
            donor = max(donors, key=lambda w: (counts[w.name], w.name))
            eligible = [
                w
                for w in workers
                if w is not donor and _has_headroom(w, counts[w.name])
            ]
            if not eligible:
                break
            target = min(
                eligible, key=lambda w: (counts[w.name], w.load(), w.name)
            )
            if counts[donor.name] - counts[target.name] < self.gap:
                break
            victim = victims[donor.name].pop()  # youngest container
            counts[donor.name] -= 1
            counts[target.name] += 1
            moves.append(Migration(victim, donor, target))
        return moves

    def describe(self) -> str:
        return f"count-balancing migrate-on-exit (gap={self.gap})"


class ProgressAwareRebalance(RebalancePolicy):
    """SLAQ-signal-driven straggler migration.

    Parameters
    ----------
    min_gain:
        Hysteresis on the expected CPU-share gain
        ``(capacity_t / (n_t + 1)) / (capacity_d / n_d)``; a move fires
        only when the migrated container can expect at least this factor
        more CPU on the target (default 1.5).
    max_moves:
        Cap on migrations per plan (default: one per worker).

    With a per-container delay model (``"footprint"`` or a callable),
    the victim choice *weighs checkpoint cost against expected gain*:
    the candidate ranking stays slowest-progress-first, but a candidate
    is skipped when its in-flight delay exceeds the wall-clock time the
    share gain is expected to save it
    (``(1 − 1/gain) · remaining_work / share_now``) — so a heavy
    container whose checkpoint costs more than the move recovers stops
    being the preferred migrant.
    """

    name = "progress"

    def __init__(
        self,
        *,
        min_gain: float = 1.5,
        max_moves: int | None = None,
        migration_delay: MigrationDelay = 0.0,
    ) -> None:
        super().__init__(migration_delay=migration_delay)
        if min_gain <= 1.0:
            raise ConfigError(f"min_gain must exceed 1, got {min_gain!r}")
        if max_moves is not None and max_moves < 1:
            raise ConfigError(
                f"max_moves must be >= 1 or None, got {max_moves!r}"
            )
        self.min_gain = float(min_gain)
        self.max_moves = max_moves
        self._sim: "Simulator" | None = None
        self._observer = ProgressObserver()

    def bind(self, sim: "Simulator") -> None:
        self._sim = sim
        self._observer.reset()

    # -- signal -----------------------------------------------------------------

    def _observe(self, workers: Sequence["Worker"]) -> dict[int, float]:
        """Refresh progress histories; return cid → progress rate (1/s).

        The signal is SLAQ's: normalized evaluation-function change per
        second over the window since this policy's previous observation.
        Containers observed fewer than twice have no rate yet and are
        not migration candidates.
        """
        if self._sim is None:
            raise ClusterError(
                "ProgressAwareRebalance must be bound to a simulator"
            )
        now = self._sim.now
        rates: dict[int, float] = {}
        for worker in workers:
            rates.update(self._observer.observe(worker, now))
        return rates

    # -- planning ---------------------------------------------------------------

    def plan(self, workers: Sequence["Worker"]) -> list[Migration]:
        rates = self._observe(workers)
        if not rates:
            return []  # no two-point history anywhere yet
        counts = {w.name: _admitted(w) for w in workers}
        movable = {
            w.name: sorted(
                (c for c in w.running_containers() if c.cid in rates),
                # Slowest-progress container first (it benefits most and
                # its loss of node-local monitor state costs least).
                key=lambda c: (rates[c.cid], c.cid),
            )
            for w in workers
        }
        cluster_mean = sum(rates.values()) / len(rates)
        limit = (
            self.max_moves if self.max_moves is not None else len(workers)
        )
        moves: list[Migration] = []
        while len(moves) < limit:
            move = self._best_move(workers, counts, movable, rates, cluster_mean)
            if move is None:
                break
            counts[move.source.name] -= 1
            counts[move.target.name] += 1
            moves.append(move)
        return moves

    def _best_move(
        self,
        workers: Sequence["Worker"],
        counts: dict[str, int],
        movable: dict[str, list["Container"]],
        rates: dict[int, float],
        cluster_mean: float,
    ) -> Migration | None:
        """The single best migration for the current planned state."""
        donors = [w for w in workers if movable[w.name]]
        if not donors:
            return None
        # Straggler first: highest admitted-per-capacity pressure, and
        # only workers whose observed containers progress no faster than
        # the cluster mean (the signal that the placement went bad); the
        # share-gain hysteresis below is what keeps healthy balanced
        # clusters from churning.
        donors.sort(
            key=lambda w: (-counts[w.name] / w.capacity, w.name)
        )
        for donor in donors:
            sampled = [rates[c.cid] for c in movable[donor.name]]
            if sum(sampled) / len(sampled) > cluster_mean:
                continue
            eligible = [
                w
                for w in workers
                if w is not donor and _has_headroom(w, counts[w.name])
            ]
            if not eligible:
                return None
            target = min(
                eligible,
                key=lambda w: (
                    (counts[w.name] + 1) / w.capacity,
                    counts[w.name],
                    w.name,
                ),
            )
            share_now = donor.capacity / max(counts[donor.name], 1)
            share_then = target.capacity / (counts[target.name] + 1)
            gain = share_then / share_now
            if gain < self.min_gain:
                continue
            for i, victim in enumerate(movable[donor.name]):
                delay = self.delay_for(victim)
                if delay > 0:
                    # The move pays `delay` seconds of zero progress; it
                    # recovers (1 − 1/gain) of the victim's remaining
                    # wall-clock at its current share.  Skip candidates
                    # whose checkpoint costs more than the move saves.
                    saved = (
                        (1.0 - 1.0 / gain)
                        * victim.job.remaining_work()
                        / share_now
                    )
                    if delay >= saved:
                        continue
                movable[donor.name].pop(i)
                return Migration(victim, donor, target)
        return None

    def describe(self) -> str:
        return (
            f"progress-aware straggler migration "
            f"(min_gain={self.min_gain:g}, delay={self._delay_label()})"
        )


#: Registry of rebalance policies by name, for CLI flags and batch tasks.
REBALANCERS: dict[str, type[RebalancePolicy]] = {
    "none": NoRebalance,
    "migrate": MigrateOnExit,
    "progress": ProgressAwareRebalance,
}


def make_rebalance(
    rebalance: str | RebalancePolicy | None,
) -> RebalancePolicy:
    """Resolve a policy name (or pass through an instance) to a policy.

    ``None`` means the historical default, :class:`NoRebalance`.
    """
    if rebalance is None:
        return NoRebalance()
    if isinstance(rebalance, RebalancePolicy):
        return rebalance
    try:
        cls = REBALANCERS[rebalance]
    except (KeyError, TypeError):
        raise UnknownPolicyError(
            f"unknown rebalance {rebalance!r}; choose from {sorted(REBALANCERS)}"
        ) from None
    return cls()
