"""The control-plane message fabric: the sixth policy axis.

The paper's §3.1 manager/worker split is wired, in this reproduction, as
direct method calls.  This module makes that interaction an explicit
**message surface** (the refactor ROADMAP open item 1 names as the
prerequisite for sharded single-run parallelism) and then lets it fail:

* Every manager↔worker interaction — place, exit notification, the
  detach/attach migration legs, provision/retire orders, fault/recovery
  detection — is sent through a :class:`FabricPolicy` as a typed
  :class:`Envelope`.
* The default :class:`IdealFabric` delivers inline: no events, no RNG
  draws, no traces — **bit-identical** to the historical direct-call
  path (completion times, digests and ``events_processed`` included).
* :class:`FaultyFabric` applies a seeded-deterministic **fault plan** —
  :func:`delay`, :func:`drop`, :func:`duplicate`, :func:`partition`,
  :func:`gray_link` — to each link traversal, and a manager-side
  :class:`RetryPolicy` provides per-message timeouts, capped exponential
  backoff with seeded jitter, idempotent delivery dedup (message ids +
  a receiver-side dedup window) and reconciliation: a message that
  exhausts its retries triggers its ``on_fail`` handler only after a
  slow ``reconcile`` audit delay, and never while a delivery is still
  in flight.

Specs are strings on every surface (``SimulationConfig.fabric``,
``run_cluster(fabric=)``, batch ``RunTask``, CLI ``--fabric``) sharing
one grammar::

    "ideal"
    "<fault>[+<fault>...][:retry(k=v,...)|:noretry]"

e.g. ``"partition(25..55):retry(max=8,base=0.5)"``,
``"drop(0.05)+delay(exp,0.2)"``, ``"gray_link(worker-1,4):noretry"``.
Unknown names raise :class:`~repro.errors.UnknownPolicyError` listing
the registry, exactly like the other five axes.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError, UnknownPolicyError
from repro.simcore.events import PRIORITY_ARRIVAL, EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.manager import Manager
    from repro.simcore.engine import Simulator

__all__ = [
    "MSG_KINDS",
    "Envelope",
    "RetryPolicy",
    "NetworkFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "PartitionFault",
    "GrayLinkFault",
    "NETWORK_FAULTS",
    "FabricPolicy",
    "IdealFabric",
    "FaultyFabric",
    "FABRICS",
    "make_fabric",
]

#: Every message kind the manager sends through the fabric.
MSG_KINDS = (
    "place",      # manager → worker: launch this submission
    "exit",       # worker → manager: a container finished
    "detach",     # manager → worker: checkpoint a container off (migration)
    "attach",     # manager → worker: adopt an in-flight container
    "provision",  # manager → cloud: boot a new worker
    "retire",     # manager → worker: leave the fleet
    "fail",       # detector → manager: a fault fired against a worker
    "recover",    # detector → manager: a failed worker is back
)

#: Endpoint name for the manager side of every link.
MANAGER = "manager"


class Envelope:
    """One message in flight: id, route, and mutable delivery state.

    ``deliver`` runs the receiver-side effect exactly once (first
    delivery wins — duplicates are suppressed against the envelope and
    the fabric's dedup window).  ``on_fail`` (optional) is the
    sender-side reconciliation handler, invoked only after every retry
    has timed out *and* no delivery is still in flight.
    """

    __slots__ = (
        "msg_id", "kind", "src", "dst", "deliver", "on_fail",
        "delivered", "failed", "attempts", "last_arrival", "sent_at",
    )

    def __init__(
        self,
        msg_id: int,
        kind: str,
        src: str,
        dst: str,
        deliver: Callable[[], None],
        on_fail: Callable[[], None] | None,
    ) -> None:
        self.msg_id = msg_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.deliver = deliver
        self.on_fail = on_fail
        self.delivered = False
        self.failed = False
        self.attempts = 0
        self.last_arrival = 0.0
        self.sent_at = 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Manager-side reliability: timeouts, capped backoff, reconciliation.

    Attempt *n* (0-based) times out after
    ``min(cap, base * factor**n) * (1 + jitter * u)`` seconds, ``u`` a
    seeded uniform draw; a timed-out message is resent up to
    ``max_retries`` times.  After the final timeout the fabric waits for
    every scheduled delivery to land or miss, then waits ``reconcile``
    more seconds (the slow audit a real control plane runs against
    worker state) before declaring the message failed and invoking its
    ``on_fail`` handler.  ``max_retries=0`` is the fire-once
    ``"noretry"`` baseline.
    """

    max_retries: int = 5
    base: float = 0.5
    factor: float = 2.0
    cap: float = 8.0
    jitter: float = 0.1
    reconcile: float = 45.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.base <= 0 or self.factor < 1.0 or self.cap < self.base:
            raise ConfigError(
                "retry needs base > 0, factor >= 1, cap >= base; got "
                f"base={self.base!r} factor={self.factor!r} cap={self.cap!r}"
            )
        if self.jitter < 0 or self.reconcile < 0:
            raise ConfigError("jitter and reconcile must be >= 0")

    def timeout(self, attempt: int) -> float:
        """Deterministic (pre-jitter) timeout for 0-based *attempt*."""
        return min(self.cap, self.base * self.factor ** attempt)

    def describe(self) -> str:
        if self.max_retries == 0:
            return "noretry"
        return (
            f"retry(max={self.max_retries},base={self.base:g},"
            f"factor={self.factor:g},cap={self.cap:g},"
            f"jitter={self.jitter:g},reconcile={self.reconcile:g})"
        )


# ---------------------------------------------------------------------------
# Network faults
# ---------------------------------------------------------------------------


class NetworkFault(abc.ABC):
    """One per-link-traversal fault primitive.

    :meth:`apply` is called once per send attempt in plan order and
    mutates the attempt's ``(dropped, latency, duplicate)`` verdict.
    All randomness comes from the fabric's dedicated seeded stream, so
    the same plan and seed always produce the same transcript.
    """

    name = "fault"

    def bind(self, manager: "Manager") -> None:
        """Resolve fleet-dependent parameters (optional)."""

    @abc.abstractmethod
    def apply(self, fabric: "FaultyFabric", msg: Envelope,
              verdict: dict) -> None:
        """Mutate the attempt *verdict* for one traversal of *msg*."""

    def describe(self) -> str:
        return self.name


class DelayFault(NetworkFault):
    """Added propagation latency: constant, exponential, or uniform."""

    name = "delay"

    def __init__(self, dist: str = "const", *params: float) -> None:
        self.dist = dist
        self.params = tuple(float(p) for p in params)
        if dist == "const":
            if len(self.params) != 1 or self.params[0] < 0:
                raise ConfigError(
                    f"delay(<seconds>) needs one value >= 0, got {params!r}"
                )
        elif dist == "exp":
            if len(self.params) != 1 or self.params[0] <= 0:
                raise ConfigError(
                    f"delay(exp,<mean>) needs a positive mean, got {params!r}"
                )
        elif dist == "uniform":
            if len(self.params) != 2 or not 0 <= self.params[0] <= self.params[1]:
                raise ConfigError(
                    f"delay(uniform,<lo>,<hi>) needs 0 <= lo <= hi, "
                    f"got {params!r}"
                )
        else:
            raise ConfigError(
                f"unknown delay distribution {dist!r}; "
                "choose const, exp or uniform"
            )

    def apply(self, fabric, msg, verdict) -> None:
        if self.dist == "const":
            verdict["latency"] += self.params[0]
        elif self.dist == "exp":
            verdict["latency"] += float(
                fabric.rng.exponential(self.params[0])
            )
        else:
            verdict["latency"] += float(
                fabric.rng.uniform(self.params[0], self.params[1])
            )

    def describe(self) -> str:
        if self.dist == "const":
            return f"delay({self.params[0]:g})"
        return f"delay({self.dist},{','.join(f'{p:g}' for p in self.params)})"


class DropFault(NetworkFault):
    """Uniform loss: each traversal is dropped with probability *p*."""

    name = "drop"

    def __init__(self, p: float) -> None:
        if not 0.0 <= float(p) <= 1.0:
            raise ConfigError(f"drop probability must lie in [0, 1], got {p!r}")
        self.p = float(p)

    def apply(self, fabric, msg, verdict) -> None:
        if not verdict["dropped"] and float(fabric.rng.random()) < self.p:
            verdict["dropped"] = True

    def describe(self) -> str:
        return f"drop({self.p:g})"


class DuplicateFault(NetworkFault):
    """Each delivered traversal arrives twice with probability *p*."""

    name = "duplicate"

    def __init__(self, p: float) -> None:
        if not 0.0 <= float(p) <= 1.0:
            raise ConfigError(
                f"duplicate probability must lie in [0, 1], got {p!r}"
            )
        self.p = float(p)

    def apply(self, fabric, msg, verdict) -> None:
        if not verdict["dropped"] and float(fabric.rng.random()) < self.p:
            verdict["duplicate"] = True

    def describe(self) -> str:
        return f"duplicate({self.p:g})"


class PartitionFault(NetworkFault):
    """A clean split: manager ↔ dark-group messages drop inside a window.

    ``window`` is ``(lo, hi)`` in simulation seconds; ``workers`` names
    the dark group explicitly, or ``None`` to cut off the second half of
    the initial fleet (resolved at bind time).  Messages between the
    manager and a dark worker — in either direction — are dropped while
    ``lo <= now < hi``; the partition then heals and retried messages
    flow again.
    """

    name = "partition"

    def __init__(
        self,
        window: tuple[float, float],
        workers: tuple[str, ...] | None = None,
    ) -> None:
        lo, hi = float(window[0]), float(window[1])
        if not 0 <= lo < hi:
            raise ConfigError(
                f"partition window needs 0 <= lo < hi, got {window!r}"
            )
        self.window = (lo, hi)
        self.workers = tuple(workers) if workers is not None else None
        self._dark: frozenset[str] = frozenset(workers or ())

    def bind(self, manager: "Manager") -> None:
        if self.workers is None:
            names = [w.name for w in manager.workers]
            self._dark = frozenset(names[len(names) // 2:])
        else:
            self._dark = frozenset(self.workers)

    def apply(self, fabric, msg, verdict) -> None:
        if verdict["dropped"]:
            return
        now = fabric.sim.now
        if self.window[0] <= now < self.window[1] and (
            msg.dst in self._dark or msg.src in self._dark
        ):
            verdict["dropped"] = True
            fabric.partition_drops += 1

    def describe(self) -> str:
        suffix = "" if self.workers is None else (
            "," + "|".join(self.workers)
        )
        return f"partition({self.window[0]:g}..{self.window[1]:g}{suffix})"


class GrayLinkFault(NetworkFault):
    """A gray link: one worker's traffic is slow and lossy, not dead.

    A ``factor``-degraded link drops each traversal with probability
    ``1 - 1/factor`` and multiplies the latency of the survivors by
    ``factor`` — the messaging twin of the failure axis' fail-slow node.
    """

    name = "gray_link"

    def __init__(self, worker: str, factor: float) -> None:
        if float(factor) <= 1.0:
            raise ConfigError(
                f"gray_link factor must be > 1, got {factor!r}"
            )
        self.worker = str(worker)
        self.factor = float(factor)

    def apply(self, fabric, msg, verdict) -> None:
        if verdict["dropped"]:
            return
        if msg.dst == self.worker or msg.src == self.worker:
            if float(fabric.rng.random()) < 1.0 - 1.0 / self.factor:
                verdict["dropped"] = True
            else:
                verdict["latency"] *= self.factor

    def describe(self) -> str:
        return f"gray_link({self.worker},{self.factor:g})"


NETWORK_FAULTS: dict[str, type[NetworkFault]] = {
    "delay": DelayFault,
    "drop": DropFault,
    "duplicate": DuplicateFault,
    "partition": PartitionFault,
    "gray_link": GrayLinkFault,
}


# ---------------------------------------------------------------------------
# Fabric policies
# ---------------------------------------------------------------------------


class FabricPolicy(abc.ABC):
    """How manager↔worker messages traverse the control plane."""

    name = "fabric"

    def bind(self, sim: "Simulator", manager: "Manager") -> None:
        """Attach to the run before the simulation starts (optional)."""

    @abc.abstractmethod
    def send(
        self,
        kind: str,
        src: str,
        dst: str,
        deliver: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
    ) -> Envelope:
        """Dispatch one typed message and return its envelope."""

    def stats(self) -> dict[str, float]:
        """Per-message counters for :class:`~repro.metrics.summary.RunSummary`."""
        return {}

    def describe(self) -> str:
        return self.name


class IdealFabric(FabricPolicy):
    """The lossless default: every message delivers inline, immediately.

    No events are scheduled, no RNG streams are touched and nothing is
    traced, so a run through the ideal fabric is bit-identical to the
    historical direct-call manager — ``events_processed`` included —
    at full throughput.  Only the send/deliver counters move.
    """

    name = "ideal"

    def __init__(self) -> None:
        self.messages_sent = 0

    def send(self, kind, src, dst, deliver, on_fail=None) -> Envelope:
        self.messages_sent += 1
        msg = Envelope(self.messages_sent, kind, src, dst, deliver, on_fail)
        msg.delivered = True
        msg.attempts = 1
        deliver()
        return msg

    def stats(self) -> dict[str, float]:
        return {
            "messages_sent": float(self.messages_sent),
            "messages_delivered": float(self.messages_sent),
        }

    def describe(self) -> str:
        return "ideal"


class FaultyFabric(FabricPolicy):
    """A lossy, laggy control plane with a reliability layer on top.

    Each send attempt traverses the fault plan in order to decide
    ``(dropped, latency, duplicate)``; surviving traversals become
    ``MESSAGE`` events.  The :class:`RetryPolicy` arms a timeout per
    attempt and resends with capped exponential backoff and seeded
    jitter; first delivery wins (idempotent dedup against the envelope
    and a bounded receiver-side id window), and a message that exhausts
    its retries fails only after the reconciliation audit delay, with no
    delivery still in flight.  All draws come from the simulator's
    dedicated ``"fabric"`` stream, so the transcript is a pure function
    of the seed and the plan.
    """

    name = "faulty"

    def __init__(
        self,
        faults: list[NetworkFault] | None = None,
        retry: RetryPolicy | None = None,
        *,
        dedup_window: int = 4096,
    ) -> None:
        if dedup_window < 1:
            raise ConfigError(
                f"dedup_window must be >= 1, got {dedup_window!r}"
            )
        self.faults = list(faults or [])
        self.retry = retry if retry is not None else RetryPolicy()
        self.sim: "Simulator | None" = None
        self.rng = None
        self._next_id = 0
        #: Receiver-side dedup: recently delivered message ids.
        self._seen_ids: set[int] = set()
        self._seen_order: deque[int] = deque(maxlen=dedup_window)
        # -- counters -------------------------------------------------
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.message_retries = 0
        self.messages_failed = 0
        self.duplicates_suppressed = 0
        self.reconciliations = 0
        self.partition_drops = 0
        self.total_latency = 0.0

    def bind(self, sim: "Simulator", manager: "Manager") -> None:
        self.sim = sim
        self.rng = sim.rngs.stream("fabric")
        for fault in self.faults:
            fault.bind(manager)

    # -- sending ------------------------------------------------------

    def send(self, kind, src, dst, deliver, on_fail=None) -> Envelope:
        assert self.sim is not None, "fabric used before bind()"
        self._next_id += 1
        self.messages_sent += 1
        msg = Envelope(self._next_id, kind, src, dst, deliver, on_fail)
        msg.sent_at = self.sim.now
        self._attempt(msg, 0)
        return msg

    def _attempt(self, msg: Envelope, attempt: int) -> None:
        """Send attempt *attempt* of *msg* and arm its timeout."""
        sim = self.sim
        msg.attempts += 1
        verdict = {"dropped": False, "latency": 0.0, "duplicate": False}
        for fault in self.faults:
            fault.apply(self, msg, verdict)
        if verdict["dropped"]:
            self.messages_dropped += 1
            if sim.trace_enabled:
                sim.trace(
                    "fabric.drop",
                    f"{msg.kind} #{msg.msg_id} {msg.src}→{msg.dst} "
                    f"lost (attempt {attempt + 1})",
                )
        else:
            arrival = sim.now + verdict["latency"]
            if arrival > msg.last_arrival:
                msg.last_arrival = arrival
            sim.schedule(
                arrival,
                self._on_delivery,
                kind=EventKind.MESSAGE,
                priority=PRIORITY_ARRIVAL,
                payload=msg,
            )
            if verdict["duplicate"]:
                sim.schedule(
                    arrival,
                    self._on_delivery,
                    kind=EventKind.MESSAGE,
                    priority=PRIORITY_ARRIVAL,
                    payload=msg,
                )
        # Arm the timeout for this attempt (jittered backoff).
        timeout = self.retry.timeout(attempt)
        if self.retry.jitter > 0:
            timeout *= 1.0 + self.retry.jitter * float(self.rng.random())
        sim.schedule(
            sim.now + timeout,
            self._on_timeout,
            kind=EventKind.MESSAGE,
            priority=PRIORITY_ARRIVAL,
            payload=(msg, attempt),
        )

    # -- receiving ----------------------------------------------------

    def _on_delivery(self, event) -> None:
        msg: Envelope = event.payload
        if msg.delivered or msg.msg_id in self._seen_ids:
            self.duplicates_suppressed += 1
            return
        msg.delivered = True
        self._remember(msg.msg_id)
        self.messages_delivered += 1
        self.total_latency += self.sim.now - msg.sent_at
        msg.deliver()

    def _remember(self, msg_id: int) -> None:
        if len(self._seen_order) == self._seen_order.maxlen:
            self._seen_ids.discard(self._seen_order[0])
        self._seen_order.append(msg_id)
        self._seen_ids.add(msg_id)

    def _on_timeout(self, event) -> None:
        msg, attempt = event.payload
        if msg.delivered:
            return
        if attempt < self.retry.max_retries:
            self.message_retries += 1
            if self.sim.trace_enabled:
                self.sim.trace(
                    "fabric.retry",
                    f"{msg.kind} #{msg.msg_id} {msg.src}→{msg.dst} "
                    f"timed out; retry {attempt + 1}"
                    f"/{self.retry.max_retries}",
                )
            self._attempt(msg, attempt + 1)
            return
        # Out of retries: reconcile strictly after the last possible
        # arrival, so on_fail never races an in-flight delivery.
        at = max(self.sim.now, msg.last_arrival) + self.retry.reconcile
        self.sim.schedule(
            at,
            self._on_reconcile,
            kind=EventKind.MESSAGE,
            priority=PRIORITY_ARRIVAL,
            payload=msg,
        )

    def _on_reconcile(self, event) -> None:
        msg: Envelope = event.payload
        if msg.delivered:
            return
        msg.failed = True
        self.messages_failed += 1
        self.reconciliations += 1
        if self.sim.trace_enabled:
            self.sim.trace(
                "fabric.fail",
                f"{msg.kind} #{msg.msg_id} {msg.src}→{msg.dst} failed "
                f"after {msg.attempts} attempts; reconciling",
            )
        if msg.on_fail is not None:
            msg.on_fail()

    # -- reporting ----------------------------------------------------

    def stats(self) -> dict[str, float]:
        delivered = self.messages_delivered
        return {
            "messages_sent": float(self.messages_sent),
            "messages_delivered": float(delivered),
            "messages_dropped": float(self.messages_dropped),
            "message_retries": float(self.message_retries),
            "messages_failed": float(self.messages_failed),
            "duplicates_suppressed": float(self.duplicates_suppressed),
            "reconciliations": float(self.reconciliations),
            "partition_drops": float(self.partition_drops),
            "mean_message_latency": (
                self.total_latency / delivered if delivered else 0.0
            ),
        }

    def describe(self) -> str:
        plan = "+".join(f.describe() for f in self.faults) or "clean"
        return f"{plan}:{self.retry.describe()}"


FABRICS: dict[str, type[FabricPolicy]] = {
    "ideal": IdealFabric,
    "faulty": FaultyFabric,
}

_CALL_RE = re.compile(r"^([\w-]+)\((.*)\)$")
_WINDOW_RE = re.compile(r"^(-?[\d.]+)\.\.(-?[\d.]+)$")

_RETRY_FIELDS = {
    "max": "max_retries",
    "max_retries": "max_retries",
    "base": "base",
    "factor": "factor",
    "cap": "cap",
    "jitter": "jitter",
    "reconcile": "reconcile",
}


def _parse_retry(spec: str) -> RetryPolicy:
    """Parse ``retry(k=v,...)`` / ``noretry[(reconcile=...)]``."""
    text = spec.strip()
    name, args = text, None
    match = _CALL_RE.match(text)
    if match:
        name, args = match.group(1), match.group(2)
    if name not in ("retry", "noretry"):
        raise UnknownPolicyError(
            f"unknown fabric reliability {spec!r}; "
            "choose 'retry(...)' or 'noretry'"
        )
    kwargs: dict[str, float] = {}
    if args:
        for part in args.split(","):
            key, sep, value = part.partition("=")
            key = key.strip()
            field = _RETRY_FIELDS.get(key)
            if not sep or field is None:
                raise ConfigError(
                    f"bad retry parameter {part.strip()!r}; "
                    f"choose from {sorted(set(_RETRY_FIELDS))}"
                )
            try:
                kwargs[field] = float(value)
            except ValueError:
                raise ConfigError(
                    f"retry parameter {key}= needs a number, got {value!r}"
                ) from None
    if "max_retries" in kwargs:
        kwargs["max_retries"] = int(kwargs["max_retries"])
    if name == "noretry":
        if set(kwargs) - {"reconcile"}:
            raise ConfigError(
                "noretry accepts only a reconcile= parameter"
            )
        kwargs["max_retries"] = 0
    return RetryPolicy(**kwargs)


def _parse_fault(spec: str) -> NetworkFault:
    """Parse one ``name(args)`` fault term."""
    text = spec.strip()
    match = _CALL_RE.match(text)
    name, args = (match.group(1), match.group(2)) if match else (text, "")
    cls = NETWORK_FAULTS.get(name.strip())
    if cls is None:
        raise UnknownPolicyError(
            f"unknown fabric fault {text!r}; "
            f"choose from {sorted(NETWORK_FAULTS)} "
            f"(or a fabric name from {sorted(FABRICS)})"
        )
    parts = [p.strip() for p in args.split(",") if p.strip()]
    if cls is DelayFault:
        if not parts:
            raise ConfigError("delay() needs at least one parameter")
        if parts[0] in ("const", "exp", "uniform"):
            return DelayFault(parts[0], *[float(p) for p in parts[1:]])
        return DelayFault("const", *[float(p) for p in parts])
    if cls is DropFault or cls is DuplicateFault:
        if len(parts) != 1:
            raise ConfigError(f"{name}(p) needs exactly one probability")
        return cls(float(parts[0]))
    if cls is PartitionFault:
        if not parts:
            raise ConfigError(
                "partition(lo..hi[,w1|w2...]) needs a window"
            )
        window = _WINDOW_RE.match(parts[0])
        if window is None:
            raise ConfigError(
                f"partition window must look like 'lo..hi', got {parts[0]!r}"
            )
        workers = None
        if len(parts) > 1:
            workers = tuple(
                w.strip() for w in "|".join(parts[1:]).split("|") if w.strip()
            )
        return PartitionFault(
            (float(window.group(1)), float(window.group(2))), workers
        )
    # gray_link(worker, factor)
    if len(parts) != 2:
        raise ConfigError("gray_link(worker,factor) needs two parameters")
    return GrayLinkFault(parts[0], float(parts[1]))


def make_fabric(fabric: FabricPolicy | str | None) -> FabricPolicy:
    """Resolve a fabric spec into a policy.

    Accepts a policy instance, ``None`` (⇒ ideal), a registry name
    (``"ideal"``, ``"faulty"``), or a fault-plan string
    ``"<fault>[+<fault>...][:<retry>]"`` — e.g.
    ``"partition(25..55):retry(max=8,base=0.5)"``,
    ``"drop(0.05)+delay(exp,0.2)"``, ``"duplicate(0.2):noretry"``.
    Unknown names raise :class:`~repro.errors.UnknownPolicyError`
    listing the registry, like every other axis.
    """
    if fabric is None:
        return IdealFabric()
    if isinstance(fabric, FabricPolicy):
        return fabric
    if not isinstance(fabric, str):
        raise UnknownPolicyError(
            f"unknown fabric {fabric!r}; choose from {sorted(FABRICS)} "
            f"or a fault plan over {sorted(NETWORK_FAULTS)}"
        )
    text = fabric.strip()
    plan_text, sep, retry_text = text.partition(":")
    plan_text = plan_text.strip()
    cls = FABRICS.get(plan_text)
    if cls is IdealFabric:
        if sep:
            raise ConfigError("fabric 'ideal' takes no reliability spec")
        return IdealFabric()
    if cls is FaultyFabric:
        faults: list[NetworkFault] = []
    else:
        faults = [_parse_fault(term) for term in plan_text.split("+")]
    retry = _parse_retry(retry_text) if sep else None
    return FaultyFabric(faults, retry)
