"""The worker node: where containers actually run.

:class:`Worker` closes the loop between the substrates: it owns the
container runtime, asks the allocator for CPU shares, integrates job
progress *analytically* over intervals of constant allocation
(settlement), applies the contention model, and schedules/reschedules
projected container-exit events on the simulator.

Settlement invariant
--------------------
At any instant the worker's view is: "allocations ``A`` have been constant
since ``_last_settle``".  Every externally visible operation (launch,
limit update, exit, poke) first *settles* — delivers ``A · efficiency ·
(now − _last_settle)`` CPU-seconds of work to each running job and
advances the cgroup counters — then mutates state, then *reallocates* and
reschedules exits.  Because allocations are piecewise constant this is
exact, with no time-stepping error (see DESIGN.md §6).

Hot-path notes
--------------
Settlement is vectorized: per-container work and cgroup usage rows are
computed with numpy over the active-container arrays and applied in bulk.
The element-wise operations are exactly those of the scalar formulation
(same IEEE-754 ops in the same order per element), so results are
bit-identical to the historical per-container loop.  Exit rescheduling is
*incremental*: projections are keyed by cid and the scheduled event is
reused whenever the recomputed finish time is unchanged, instead of
tearing down every exit event on each reallocation.

Fleet mode (``SimulationConfig.fleet_mode``) runs settlement and the
allocator input/output halves of reallocation across *many* workers in one
packed pass (:mod:`repro.cluster.fleet`).  To keep that pass bit-identical,
reallocation is split into :meth:`Worker._realloc_begin` (version bump,
active set, jitter draws → allocator inputs) and
:meth:`Worker._realloc_finish` (apply shares, reschedule exits); the serial
:meth:`Worker._reallocate` is exactly ``begin → allocate → finish``, so both
modes execute the same code objects on the same per-worker state.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.contention import ContentionModel
from repro.cluster.obsbus import ObservationBus
from repro.cluster.pool import ContainerPool
from repro.containers.allocator import AllocationMode, CpuAllocator
from repro.containers.container import Container, Workload
from repro.containers.runtime import ContainerRuntime
from repro.containers.spec import ResourceSpec
from repro.errors import CapacityError, ContainerStateError
from repro.simcore.engine import Simulator
from repro.simcore.equeue import EventHandle
from repro.simcore.events import PRIORITY_EXIT, Event, EventKind

__all__ = ["Worker"]

#: Work residue below which a job counts as finished (float hygiene).
_FINISH_EPS = 1e-6


class Worker:
    """One compute node hosting a pool of containerized training jobs.

    Parameters
    ----------
    sim:
        The simulation engine this worker schedules on.
    name:
        Node name (also the RNG stream name for this worker's jitter).
    capacity:
        Normalized CPU capacity (1.0 = the whole node, as in the paper's
        normalized usage plots).
    contention:
        Interference model; defaults to the calibrated
        :class:`ContentionModel`.  Use ``ContentionModel.ideal()`` for
        pure work-conserving behaviour.
    allocation_mode:
        Soft (paper semantics) or hard limits.
    reschedule_tolerance:
        Absolute tolerance (seconds) under which a container's projected
        exit is considered unchanged and its scheduled event is kept.
        The default ``0.0`` keeps only bit-identical projections, which
        preserves exact replay parity; a small positive value (e.g.
        ``1e-6``) further reduces event-queue churn for reschedule-heavy
        workloads at the cost of up-to-tolerance completion-time drift.
    max_containers:
        Admission slots: the maximum number of concurrently running
        containers this worker accepts.  ``None`` (default, the
        historical behaviour) is unbounded.  :meth:`launch` enforces the
        bound; the manager consults :meth:`has_headroom` and queues
        arrivals instead of over-subscribing.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "worker-0",
        capacity: float = 1.0,
        contention: ContentionModel | None = None,
        allocation_mode: AllocationMode = AllocationMode.SOFT,
        reschedule_tolerance: float = 0.0,
        max_containers: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise CapacityError(f"capacity must be positive, got {capacity!r}")
        if reschedule_tolerance < 0:
            raise CapacityError(
                f"reschedule_tolerance must be >= 0, got {reschedule_tolerance!r}"
            )
        if max_containers is not None and max_containers < 1:
            raise CapacityError(
                f"max_containers must be >= 1 or None, got {max_containers!r}"
            )
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.contention = contention if contention is not None else ContentionModel()
        self.allocator = CpuAllocator(allocation_mode)
        self.runtime = ContainerRuntime(clock=lambda: sim.now)
        self.pool = ContainerPool()
        self.reschedule_tolerance = float(reschedule_tolerance)
        self.max_containers = max_containers
        self._rng = sim.rngs.stream(f"{name}.jitter")

        self._last_settle = sim.now
        self._reserved = 0
        #: Crash epoch, bumped by every :meth:`crash`.  A crash zeroes
        #: the reservation count, so the manager stamps each in-flight
        #: message with the epoch it reserved under and releases only if
        #: the epoch is unchanged when the message resolves.
        self.epoch = 0
        #: Draining workers accept no new placements or migration
        #: targets; the autoscaler retires them at the first moment they
        #: are empty (see :mod:`repro.cluster.autoscale`).
        self.draining = False
        self._active: list[Container] = []
        self._allocs = np.zeros(0, dtype=np.float64)
        self._exit_handles: dict[int, EventHandle] = {}
        self._in_batch = False
        #: Monotonic state-version, bumped by every reallocation (the
        #: terminal step of every externally visible mutation).  The
        #: observation bus keys its per-instant cache on it.
        self.version = 0
        self._last_poke: tuple[float, int] | None = None
        #: The shared observation fan-out for this worker's containers.
        self.obsbus = ObservationBus(self)
        #: Cached footprint state (objects, per-resource arrays, resident
        #: memory) for the active set, keyed on the runtime's table/limit
        #: version *and* re-verified by footprint object identity, so a
        #: workload swapping its footprint between settles is picked up
        #: exactly like the historical per-container reads.
        self._fp_cache: tuple | None = None
        self._limits_cache: tuple | None = None
        self._demand_clamp_cache: tuple | None = None
        #: Hooks invoked after a container exits: f(container).
        self.exit_hooks: list = []
        #: Hooks invoked after a container launches: f(container).
        self.launch_hooks: list = []
        #: Streaming-metrics mode (set by the manager): ``docker rm``
        #: every exited container once the exit hooks have consumed it,
        #: and compact the pool journals — resident state then tracks
        #: the *live* set, not the whole run's history.
        self.reap_exited = False

    # -- public operations -------------------------------------------------------

    def launch(
        self,
        job: Workload,
        *,
        name: str | None = None,
        image: str = "repro/dl-job",
    ) -> Container:
        """``docker run`` a job on this worker.

        The container name defaults to the job's own name, so traces and
        summaries line up with workload labels without extra plumbing.
        """
        if not self.has_headroom():
            raise CapacityError(
                f"{self.name} is at its admission limit "
                f"({self.max_containers} containers)"
            )
        self.settle()
        if name is None:
            name = getattr(job, "name", None)
        container = self.runtime.run(job, name=name, image=image)
        self.pool.add(container, self.sim.now)
        if self.sim.trace_enabled:
            self.sim.trace(
                "worker.launch",
                f"{self.name}: launched {container.name} ({image})",
                cid=container.cid,
            )
        self._reallocate()
        for hook in self.launch_hooks:
            hook(container)
        return container

    def update_limit(self, cid: int, cpus: float) -> bool:
        """``docker update --cpus`` one container and re-balance shares."""
        self.settle()
        changed = self.runtime.update(cid, cpus=cpus)
        if changed and not self._in_batch:
            self._reallocate()
        return changed

    def batch_update(self, updates: dict[int, float]) -> int:
        """Apply many limit updates with a single re-allocation pass.

        Returns the number of limits that actually changed.  This is what
        one Algorithm-1 execution uses: the paper's executor issues all
        ``docker update`` calls of an interval back-to-back.
        """
        self.settle()
        self._in_batch = True
        changed = 0
        try:
            for cid, cpus in updates.items():
                if self.runtime.update(cid, cpus=cpus):
                    changed += 1
        finally:
            self._in_batch = False
        if changed:
            self._reallocate()
        return changed

    def poke(self) -> None:
        """Settle and re-balance without any state change.

        Called by metric samplers; under non-zero jitter this is also the
        point where OS-scheduler noise is re-sampled (DESIGN.md §2).
        Same-instant pokes are **coalesced**: a second poke at the same
        timestamp with no intervening state change is a no-op, so stacked
        samplers re-balance (and re-draw jitter) once per instant, not
        once per sampler.
        """
        self.settle()
        key = (self.sim.now, self.version)
        if key == self._last_poke:
            return
        self._reallocate()
        self._last_poke = (self.sim.now, self.version)

    # -- migration ---------------------------------------------------------------

    def detach(self, cid: int) -> Container:
        """Checkpoint a running container off this node (migration source).

        Settles first, so every CPU-second delivered up to now is already
        in the job and its cgroup counters; the container leaves carrying
        both, which is what makes its remaining work bit-exact wherever
        it reattaches.  The projected exit event is cancelled, the pool
        journals the departure (the worker monitor sees it exactly like a
        finish — the container is gone from *this* node), and the
        remaining pool is reallocated.  No exit hooks fire: the job has
        not completed.
        """
        self.settle()
        container = self.runtime.get(cid)
        if not container.running:
            raise ContainerStateError(
                f"cannot detach non-running container {container.name}"
            )
        handle = self._exit_handles.pop(cid, None)
        if handle is not None:
            self.sim.cancel(handle)
        self.runtime.release(cid)
        self.pool.discard(cid, self.sim.now)
        if self.sim.trace_enabled:
            self.sim.trace(
                "worker.detach",
                f"{self.name}: detached {container.name} for migration",
                cid=cid,
            )
        self._reallocate()
        return container

    def attach(self, container: Container) -> Container:
        """Adopt a detached, still-running container (migration target).

        The inverse of :meth:`detach`: settle, adopt into the runtime and
        pool, reallocate (which projects and schedules the container's
        exit from its carried-over remaining work).  Launch hooks fire —
        to this node's policy and recorder the container is a new
        arrival, exactly as after a real checkpoint/restore.
        """
        if not container.running:
            raise ContainerStateError(
                f"cannot attach non-running container {container.name}"
            )
        if not self.has_headroom():
            raise CapacityError(
                f"{self.name} is at its admission limit "
                f"({self.max_containers} containers)"
            )
        self.settle()
        self.runtime.adopt(container)
        self.pool.add(container, self.sim.now)
        # This node's existing subscribers start their windows at the
        # attach instant rather than reaching back to the container's
        # creation on its old node — the bus can then keep pruning
        # checkpoint history even while migrations are armed.
        self.obsbus.seed_windows(container.cid, self.sim.now)
        if self.sim.trace_enabled:
            self.sim.trace(
                "worker.attach",
                f"{self.name}: attached migrated {container.name}",
                cid=container.cid,
            )
        self._reallocate()
        for hook in self.launch_hooks:
            hook(container)
        return container

    # -- failure injection -------------------------------------------------------

    def crash(self) -> list[Container]:
        """Fail-stop: drop every resident container, without exit hooks.

        Settles first so every CPU-second delivered up to the crash
        instant is in the jobs (what a durability model then loses is
        exactly the work since its last checkpoint), cancels all
        projected exits, releases every running container from the
        runtime and pool, and clears reservations and draining state.
        Returns the orphaned containers in cid order; no exit hooks fire
        — nothing completed.  The worker object itself stays reusable:
        recovery re-attaches the same (now empty) node to the fleet.
        """
        self.settle()
        self._cancel_all_exits()
        orphans = self.runtime.running()
        for container in orphans:
            self.runtime.release(container.cid)
            self.pool.discard(container.cid, self.sim.now)
        self._reserved = 0
        self.draining = False
        self.epoch += 1
        if self.sim.trace_enabled:
            self.sim.trace(
                "worker.crash",
                f"{self.name}: crashed with {len(orphans)} containers "
                "resident",
            )
        self._reallocate()
        return orphans

    def set_capacity(self, capacity: float) -> None:
        """Change node capacity in place (fail-slow injection/recovery).

        Settles at the old rate first, so the change takes effect exactly
        now, then reallocates — every resident container's share and
        projected exit move to the new rate.
        """
        if capacity <= 0:
            raise CapacityError(
                f"capacity must be positive, got {capacity!r}"
            )
        self.settle()
        self.capacity = float(capacity)
        if self.sim.trace_enabled:
            self.sim.trace(
                "worker.capacity",
                f"{self.name}: capacity set to {self.capacity:g} CPU",
            )
        self._reallocate()

    def reserve_slot(self) -> None:
        """Hold an admission slot for an in-flight migration."""
        if not self.has_headroom():
            raise CapacityError(
                f"{self.name} has no admission slot to reserve"
            )
        self._reserved += 1

    def release_reservation(self) -> None:
        """Give back a slot held by :meth:`reserve_slot`."""
        if self._reserved <= 0:
            raise CapacityError(f"{self.name} has no reservation to release")
        self._reserved -= 1

    @property
    def reserved(self) -> int:
        """Admission slots held for in-flight migrations."""
        return self._reserved

    # -- settlement -----------------------------------------------------------------

    def settle(self) -> None:
        """Integrate progress from ``_last_settle`` to now (vectorized)."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt <= 0:
            return
        active = self._active
        if active:
            arrays, mem = self._footprint_state()
            if mem is None:  # dynamic footprints: re-read every settle
                mem = float(
                    sum(c.job.footprint.memory for c in active)
                )
            eff = self.contention.efficiency(len(active), mem)
            if arrays is not None:
                demands, mems, blkios, netios = arrays
                allocs = self._allocs
                # Same per-element IEEE ops as the scalar formulation:
                # work   = (alloc * eff) * dt
                # usage  = (min(alloc, demand), mem, blkio·scale, netio·scale)
                # contrib = usage * dt
                work = self._allocs * eff * dt
                rates = np.minimum(allocs, demands)
                scales = rates / demands
                contrib = np.empty((len(active), 4), dtype=np.float64)
                contrib[:, 0] = rates * dt
                contrib[:, 1] = mems * dt
                contrib[:, 2] = blkios * scales * dt
                contrib[:, 3] = netios * scales * dt
                for container, w, row in zip(active, work.tolist(), contrib):
                    container.job.advance(w)
                    container.cgroup.settle_add(dt, row)
            else:
                # Fallback for exotic Workload implementations whose
                # footprint is not a plain ResourceSpec (it may override
                # usage_at); identical arithmetic, container at a time.
                for container, alloc in zip(active, self._allocs):
                    container.job.advance(alloc * eff * dt)
                    container.cgroup.accumulate(dt, container.usage_at(alloc))
                    container.cgroup.checkpoint()
        self._last_settle = now

    def _footprint_state(
        self,
    ) -> tuple[tuple[np.ndarray, ...] | None, float | None]:
        """``(per-resource arrays, resident memory)`` for the active set.

        Arrays are ``None`` when any footprint is not a plain
        :class:`ResourceSpec` (settlement then uses the scalar fallback,
        which re-reads each footprint on every settle; memory is also
        ``None`` and recomputed fresh, so dynamic footprints stay
        supported).  Cached per runtime table version *and* re-verified
        against footprint object identity on every hit, preserving the
        historical contract that a workload swapping its footprint
        between settles is picked up immediately.
        """
        active = self._active
        rv = self.runtime.version
        cached = self._fp_cache
        if (
            cached is not None
            and cached[0] == rv
            and len(cached[1]) == len(active)
        ):
            for fp, c in zip(cached[1], active):
                if fp is not c.job.footprint:
                    break
            else:
                return cached[2], cached[3]
        footprints = [c.job.footprint for c in active]
        for fp in footprints:
            if type(fp) is not ResourceSpec:
                self._fp_cache = (rv, footprints, None, None)
                return None, None
        arrays = (
            np.array([fp.cpu_demand for fp in footprints], dtype=np.float64),
            np.array([fp.memory for fp in footprints], dtype=np.float64),
            np.array([fp.blkio for fp in footprints], dtype=np.float64),
            np.array([fp.netio for fp in footprints], dtype=np.float64),
        )
        mem = float(sum(fp.memory for fp in footprints))
        self._fp_cache = (rv, footprints, arrays, mem)
        return arrays, mem

    def _reallocate(self) -> None:
        """Recompute CPU shares for the current pool and reschedule exits."""
        inputs = self._realloc_begin()
        if inputs is None:
            return
        limits, demands, weights, mem = inputs
        self._realloc_finish(
            self.allocator.allocate(self.capacity, limits, demands, weights),
            mem,
        )

    def _realloc_begin(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, float | None] | None:
        """First half of a reallocation: version bump + allocator inputs.

        Bumps the state-version, refreshes the active set, and draws this
        worker's jitter, returning ``(limits, demands, weights, mem)``
        ready for :meth:`CpuAllocator.allocate`.  Returns ``None`` for an
        empty pool, in which case the reallocation is already complete
        (allocations zeroed, projected exits cancelled).  Split from
        :meth:`_realloc_finish` so the fleet ticker can gather many
        workers' inputs and run one segmented allocation over all of
        them; ``_realloc_begin`` → ``allocate`` → ``_realloc_finish`` is
        exactly the historical ``_reallocate`` body.
        """
        self.version += 1
        running = self.runtime.running()
        self._active = running
        if not running:
            self._allocs = np.zeros(0, dtype=np.float64)
            self._cancel_all_exits()
            return None
        rv = self.runtime.version
        cached = self._limits_cache
        if cached is not None and cached[0] == rv:
            _, limits, amp_demand, amp_weight = cached
        else:
            limits = np.array([c.limits.cpu for c in running], dtype=np.float64)
            limits.flags.writeable = False
            # Jitter amplitudes are pure functions of the limit vector,
            # so they ride the same cache (None ⇒ no draw at all, the
            # ideal-contention replay contract).
            amp_demand = self.contention.demand_amplitude(limits)
            amp_weight = self.contention.weight_amplitude(limits)
            self._limits_cache = (rv, limits, amp_demand, amp_weight)
        arrays, mem = self._footprint_state()
        if arrays is not None:
            demands = arrays[0]
        else:
            demands = np.array([c.demand() for c in running], dtype=np.float64)
        # Two jitter channels, both limit-sensitive (free competition is
        # noisier): demand noise models throughput wobble of the training
        # loop; weight noise models the kernel's imperfect instantaneous
        # fair sharing (the Fig. 16 jitter NA exhibits).
        rng = self._rng
        if amp_demand is not None:
            demand_noise = self.contention.demand_noise(
                rng, limits, amp_demand
            )
            demands = np.minimum(np.maximum(demands * demand_noise, 1e-3), 1.0)
        else:
            # Zero amplitude draws nothing (ideal-contention replay
            # contract); multiplying by all-ones noise is the identity.
            # The clamp is then a pure function of the footprint demand
            # array, so it rides an identity-keyed cache: a workload
            # swapping its footprint rebuilds the array (new object) and
            # misses; everything else reuses the identical clamped bits.
            clamped = self._demand_clamp_cache
            if clamped is not None and clamped[0] is demands:
                demands = clamped[1]
            else:
                source = demands
                demands = np.minimum(np.maximum(demands, 1e-3), 1.0)
                demands.flags.writeable = False
                self._demand_clamp_cache = (source, demands)
        if amp_weight is not None:
            weights = self.contention.weight_noise(rng, limits, amp_weight)
        else:
            weights = None
        return limits, demands, weights, mem

    def _realloc_finish(self, alloc: np.ndarray, mem: float | None) -> None:
        """Second half of a reallocation: apply *alloc* + reschedule exits."""
        self._allocs = alloc
        for container, share in zip(self._active, alloc.tolist()):
            container.current_alloc = share
        self._reschedule_exits(mem)

    def _cancel_all_exits(self) -> None:
        if self._exit_handles:
            cancel = self.sim.cancel
            for handle in self._exit_handles.values():
                cancel(handle)
            self._exit_handles.clear()

    def _reschedule_exits(self, mem: float | None = None) -> None:
        """Project each running job's finish time and (re)schedule its exit.

        Incremental: projections are keyed by cid and an outstanding exit
        event is kept whenever the recomputed finish time matches it
        (within :attr:`reschedule_tolerance`, default exact), so a
        reallocation that leaves some containers' rates unchanged touches
        only the projections that actually moved.  ``mem`` lets the
        caller pass an already-verified resident-memory total.
        """
        active = self._active
        handles = self._exit_handles
        if not active:
            self._cancel_all_exits()
            return
        if mem is None:
            mem = self.memory_used()
        eff = self.contention.efficiency(len(active), mem)
        now = self.sim.now
        tol = self.reschedule_tolerance
        allocs = self._allocs.tolist()
        # Hot path: exits are (re)scheduled on every reallocation of a
        # jittered pool, so events are pushed straight onto the queue —
        # a projected finish ``now + remaining/rate`` can never lie in
        # the past, making Simulator.schedule's guard pure overhead here.
        push = self.sim.queue.push
        on_exit = self._on_exit_event
        cancel = self.sim.cancel
        seen: set[int] = set()
        for i, container in enumerate(active):
            cid = container.cid
            rate = allocs[i] * eff
            if rate <= 0:
                # Starved: no projection until the next allocation change.
                old = handles.pop(cid, None)
                if old is not None:
                    cancel(old)
                continue
            seen.add(cid)
            t_finish = now + container.job.remaining_work() / rate
            old = handles.get(cid)
            if old is not None and old.alive:
                delta = t_finish - old.event.time
                if delta == 0.0 or (tol > 0.0 and abs(delta) <= tol):
                    continue  # projection unchanged: keep the event
                cancel(old)
            handles[cid] = push(
                Event(
                    t_finish,
                    EventKind.CONTAINER_EXIT,
                    on_exit,
                    PRIORITY_EXIT,
                    cid,
                )
            )
        if len(handles) > len(seen):
            for cid in [c for c in handles if c not in seen]:
                cancel(handles.pop(cid))

    def _on_exit_event(self, event: Event) -> None:
        """Handle a projected container exit.

        Exactly one reallocation happens per exit event: either the job
        really finished (exit path) or the projection was stale (the
        allocation changed between scheduling and firing), and in both
        cases the single trailing :meth:`_reallocate` re-projects the
        remaining pool.
        """
        cid = int(event.payload)
        self._exit_handles.pop(cid, None)
        self.settle()
        container = self.runtime.get(cid)
        job = container.job
        if not job.finished and job.remaining_work() <= _FINISH_EPS:
            job.advance(job.remaining_work())
        exited = job.finished
        if exited:
            self.runtime.mark_exited(cid)
            self.pool.discard(cid, self.sim.now)
            if self.sim.trace_enabled:
                self.sim.trace(
                    "worker.exit",
                    f"{self.name}: {container.name} exited "
                    f"(completion {container.completion_time():.1f}s)",
                    cid=cid,
                )
        self._reallocate()
        if exited:
            # Snapshot: a hook may mutate the list (the manager's exit
            # hook removes itself when the autoscaler retires this
            # worker mid-iteration).
            for hook in tuple(self.exit_hooks):
                hook(container)
            if self.reap_exited:
                # After the hooks: they get the container by reference,
                # so nothing downstream needs the table entry.  The
                # version bump lands inside this handler — no
                # observation pass can run between exit and reap, so
                # the bus cache hit/miss pattern (and with it every
                # prune/window decision) matches a non-reaping run.
                self.runtime.remove(cid)
                self.pool.compact(self.sim.now)

    # -- views ----------------------------------------------------------------------

    def running_containers(self) -> list[Container]:
        """Live containers in cid order."""
        return self.runtime.running()

    def has_headroom(self) -> bool:
        """Whether an admission slot is free (always true when unbounded).

        Slots reserved for in-flight migrations count as occupied, and
        a draining worker advertises no headroom at all — it is on its
        way out of the fleet.
        """
        if self.draining:
            return False
        return (
            self.max_containers is None
            or len(self.runtime.running()) + self._reserved
            < self.max_containers
        )

    def is_empty(self) -> bool:
        """No running containers and no in-flight migration reservations."""
        return not self.runtime.running() and self._reserved == 0

    def allocations(self) -> dict[int, float]:
        """Current CPU allocation per running container id."""
        return {c.cid: float(a) for c, a in zip(self._active, self._allocs)}

    def load(self) -> float:
        """Sum of current allocations (0 … capacity)."""
        return float(self._allocs.sum()) if self._allocs.size else 0.0

    def memory_used(self) -> float:
        """Total resident memory of running containers (fraction of RAM).

        Values above 1.0 mean the node is overcommitted; the contention
        model converts the overcommit into a thrashing penalty when
        ``swap_penalty`` is enabled.
        """
        _, mem = self._footprint_state()
        if mem is None:  # dynamic (non-ResourceSpec) footprints: re-read
            return float(sum(c.job.footprint.memory for c in self._active))
        return mem

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker({self.name!r}, running={len(self._active)}, "
            f"load={self.load():.3f}/{self.capacity})"
        )
