"""The worker node: where containers actually run.

:class:`Worker` closes the loop between the substrates: it owns the
container runtime, asks the allocator for CPU shares, integrates job
progress *analytically* over intervals of constant allocation
(settlement), applies the contention model, and schedules/reschedules
projected container-exit events on the simulator.

Settlement invariant
--------------------
At any instant the worker's view is: "allocations ``A`` have been constant
since ``_last_settle``".  Every externally visible operation (launch,
limit update, exit, poke) first *settles* — delivers ``A · efficiency ·
(now − _last_settle)`` CPU-seconds of work to each running job and
advances the cgroup counters — then mutates state, then *reallocates* and
reschedules exits.  Because allocations are piecewise constant this is
exact, with no time-stepping error (see DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.contention import ContentionModel
from repro.cluster.pool import ContainerPool
from repro.containers.allocator import AllocationMode, CpuAllocator
from repro.containers.container import Container, Workload
from repro.containers.runtime import ContainerRuntime
from repro.errors import CapacityError
from repro.simcore.engine import Simulator
from repro.simcore.equeue import EventHandle
from repro.simcore.events import PRIORITY_EXIT, Event, EventKind

__all__ = ["Worker"]

#: Work residue below which a job counts as finished (float hygiene).
_FINISH_EPS = 1e-6


class Worker:
    """One compute node hosting a pool of containerized training jobs.

    Parameters
    ----------
    sim:
        The simulation engine this worker schedules on.
    name:
        Node name (also the RNG stream name for this worker's jitter).
    capacity:
        Normalized CPU capacity (1.0 = the whole node, as in the paper's
        normalized usage plots).
    contention:
        Interference model; defaults to the calibrated
        :class:`ContentionModel`.  Use ``ContentionModel.ideal()`` for
        pure work-conserving behaviour.
    allocation_mode:
        Soft (paper semantics) or hard limits.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "worker-0",
        capacity: float = 1.0,
        contention: ContentionModel | None = None,
        allocation_mode: AllocationMode = AllocationMode.SOFT,
    ) -> None:
        if capacity <= 0:
            raise CapacityError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.contention = contention if contention is not None else ContentionModel()
        self.allocator = CpuAllocator(allocation_mode)
        self.runtime = ContainerRuntime(clock=lambda: sim.now)
        self.pool = ContainerPool()
        self._rng = sim.rngs.stream(f"{name}.jitter")

        self._last_settle = sim.now
        self._active: list[Container] = []
        self._allocs = np.zeros(0, dtype=np.float64)
        self._exit_handles: dict[int, EventHandle] = {}
        self._in_batch = False
        #: Hooks invoked after a container exits: f(container).
        self.exit_hooks: list = []
        #: Hooks invoked after a container launches: f(container).
        self.launch_hooks: list = []

    # -- public operations -------------------------------------------------------

    def launch(
        self,
        job: Workload,
        *,
        name: str | None = None,
        image: str = "repro/dl-job",
    ) -> Container:
        """``docker run`` a job on this worker.

        The container name defaults to the job's own name, so traces and
        summaries line up with workload labels without extra plumbing.
        """
        self.settle()
        if name is None:
            name = getattr(job, "name", None)
        container = self.runtime.run(job, name=name, image=image)
        self.pool.add(container, self.sim.now)
        self.sim.trace(
            "worker.launch",
            f"{self.name}: launched {container.name} ({image})",
            cid=container.cid,
        )
        self._reallocate()
        for hook in self.launch_hooks:
            hook(container)
        return container

    def update_limit(self, cid: int, cpus: float) -> bool:
        """``docker update --cpus`` one container and re-balance shares."""
        self.settle()
        changed = self.runtime.update(cid, cpus=cpus)
        if changed and not self._in_batch:
            self._reallocate()
        return changed

    def batch_update(self, updates: dict[int, float]) -> int:
        """Apply many limit updates with a single re-allocation pass.

        Returns the number of limits that actually changed.  This is what
        one Algorithm-1 execution uses: the paper's executor issues all
        ``docker update`` calls of an interval back-to-back.
        """
        self.settle()
        self._in_batch = True
        changed = 0
        try:
            for cid, cpus in updates.items():
                if self.runtime.update(cid, cpus=cpus):
                    changed += 1
        finally:
            self._in_batch = False
        if changed:
            self._reallocate()
        return changed

    def poke(self) -> None:
        """Settle and re-balance without any state change.

        Called by metric samplers; under non-zero jitter this is also the
        point where OS-scheduler noise is re-sampled (DESIGN.md §2).
        """
        self.settle()
        self._reallocate()

    # -- settlement -----------------------------------------------------------------

    def settle(self) -> None:
        """Integrate progress from ``_last_settle`` to now."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt <= 0:
            return
        if self._active:
            eff = self.contention.efficiency(
                len(self._active), self.memory_used()
            )
            for container, alloc in zip(self._active, self._allocs):
                container.job.advance(alloc * eff * dt)
                container.cgroup.accumulate(dt, container.usage_at(alloc))
                container.cgroup.checkpoint()
        self._last_settle = now

    def _reallocate(self) -> None:
        """Recompute CPU shares for the current pool and reschedule exits."""
        running = self.runtime.running()
        self._active = running
        if not running:
            self._allocs = np.zeros(0, dtype=np.float64)
            return
        limits = np.array([c.limits.cpu for c in running], dtype=np.float64)
        demands = np.array([c.demand() for c in running], dtype=np.float64)
        # Two jitter channels, both limit-sensitive (free competition is
        # noisier): demand noise models throughput wobble of the training
        # loop; weight noise models the kernel's imperfect instantaneous
        # fair sharing (the Fig. 16 jitter NA exhibits).
        demand_noise = self.contention.demand_noise(self._rng, limits)
        demands = np.clip(demands * demand_noise, 1e-3, 1.0)
        weights = self.contention.weight_noise(self._rng, limits)
        self._allocs = self.allocator.allocate(
            self.capacity, limits, demands, weights
        )
        for container, alloc in zip(running, self._allocs):
            container.current_alloc = float(alloc)
        self._reschedule_exits()

    def _reschedule_exits(self) -> None:
        """Project each running job's finish time and (re)schedule its exit."""
        for handle in self._exit_handles.values():
            self.sim.cancel(handle)
        self._exit_handles.clear()
        if not self._active:
            return
        eff = self.contention.efficiency(
            len(self._active), self.memory_used()
        )
        now = self.sim.now
        for container, alloc in zip(self._active, self._allocs):
            rate = alloc * eff
            if rate <= 0:
                continue  # starved: will be rescheduled on the next change
            t_finish = now + container.job.remaining_work() / rate
            self._exit_handles[container.cid] = self.sim.schedule(
                t_finish,
                self._on_exit_event,
                kind=EventKind.CONTAINER_EXIT,
                priority=PRIORITY_EXIT,
                payload=container.cid,
            )

    def _on_exit_event(self, event: Event) -> None:
        cid = int(event.payload)
        self._exit_handles.pop(cid, None)
        self.settle()
        container = self.runtime.get(cid)
        job = container.job
        if not job.finished and job.remaining_work() <= _FINISH_EPS:
            job.advance(job.remaining_work())
        if not job.finished:
            # Stale projection (allocation changed between scheduling and
            # firing without cancellation) — re-project and keep running.
            self._reallocate()
            return
        self.runtime.mark_exited(cid)
        self.pool.discard(cid, self.sim.now)
        self.sim.trace(
            "worker.exit",
            f"{self.name}: {container.name} exited "
            f"(completion {container.completion_time():.1f}s)",
            cid=cid,
        )
        self._reallocate()
        for hook in self.exit_hooks:
            hook(container)

    # -- views ----------------------------------------------------------------------

    def running_containers(self) -> list[Container]:
        """Live containers in cid order."""
        return self.runtime.running()

    def allocations(self) -> dict[int, float]:
        """Current CPU allocation per running container id."""
        return {c.cid: float(a) for c, a in zip(self._active, self._allocs)}

    def load(self) -> float:
        """Sum of current allocations (0 … capacity)."""
        return float(self._allocs.sum()) if self._allocs.size else 0.0

    def memory_used(self) -> float:
        """Total resident memory of running containers (fraction of RAM).

        Values above 1.0 mean the node is overcommitted; the contention
        model converts the overcommit into a thrashing penalty when
        ``swap_penalty`` is enabled.
        """
        return float(
            sum(c.job.footprint.memory for c in self._active)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker({self.name!r}, running={len(self._active)}, "
            f"load={self.load():.3f}/{self.capacity})"
        )
