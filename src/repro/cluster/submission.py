"""Job submissions as the manager sees them.

A :class:`JobSubmission` pairs a materialized
:class:`~repro.workloads.job.TrainingJob` with its submission metadata.
The split from :class:`~repro.workloads.generator.WorkloadSpec` is
deliberate: specs are *plans* (cheap, immutable, reusable across policies
and repetitions), submissions are *instances* bound to one simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.job import TrainingJob

__all__ = ["JobSubmission"]


@dataclass(frozen=True)
class JobSubmission:
    """One job arriving at the manager.

    Attributes
    ----------
    label:
        Experiment-facing label (``"Job-3"``), stable across the FlowCon
        and NA runs of the same scenario so results line up per job.
    job:
        The training job to containerize.
    submit_time:
        When the manager receives it.
    image:
        Container image label for reports.
    """

    label: str
    job: TrainingJob
    submit_time: float
    image: str = "repro/dl-job"

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"negative submit_time {self.submit_time!r}")
