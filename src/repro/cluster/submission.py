"""Job submissions as the manager sees them.

A :class:`JobSubmission` pairs a materialized
:class:`~repro.workloads.job.TrainingJob` with its submission metadata.
The split from :class:`~repro.workloads.generator.WorkloadSpec` is
deliberate: specs are *plans* (cheap, immutable, reusable across policies
and repetitions), submissions are *instances* bound to one simulation run.

Multi-tenant metadata
---------------------
``tenant``, ``weight`` and ``priority`` exist for the pluggable admission
policies (:mod:`repro.cluster.admission`): weighted fair queueing drains
tenants in proportion to their weights, and the priority policy drains
strict priority classes.  All three default to the single-tenant,
unweighted, priority-0 values, under which every admission policy that
consumes them reduces towards plain FIFO behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.job import TrainingJob

__all__ = ["JobSubmission"]


@dataclass(frozen=True)
class JobSubmission:
    """One job arriving at the manager.

    Attributes
    ----------
    label:
        Experiment-facing label (``"Job-3"``), stable across the FlowCon
        and NA runs of the same scenario so results line up per job.
    job:
        The training job to containerize.
    submit_time:
        When the manager receives it.
    image:
        Container image label for reports.
    tenant:
        Owning tenant/user for multi-tenant admission policies; ``None``
        means the anonymous default tenant.
    weight:
        Fair-share weight of this submission's tenant under weighted
        fair queueing (must be positive).  Per-tenant overrides on the
        policy itself take precedence.
    priority:
        Priority class for the ``"priority"`` admission policy; higher
        drains first, ties break FIFO.
    retry_budget:
        How many times the manager may restart this job after a worker
        crash orphans it.  A job whose budget is exhausted fails
        permanently (it lands in ``RunSummary.failed_jobs`` instead of
        the completions).  0 means fail on the first crash.
    """

    label: str
    job: TrainingJob
    submit_time: float
    image: str = "repro/dl-job"
    tenant: str | None = None
    weight: float = 1.0
    priority: int = 0
    retry_budget: int = 3

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"negative submit_time {self.submit_time!r}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight!r}")
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget!r}"
            )
