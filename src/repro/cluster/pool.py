"""The container pool and its change journal.

§3.2.2: FlowCon's worker monitor does not watch individual jobs — it
watches the *pool*, comparing the container count between listener
iterations (Algorithm 2's ``T(i)``).  :class:`ContainerPool` keeps the set
of live containers plus arrival/finish journals so listeners can both
detect a change (``c = T(i) − T(i−1)``) and identify *which* containers
caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.container import Container
from repro.errors import UnknownContainerError

__all__ = ["PoolDelta", "ContainerPool"]


@dataclass(frozen=True)
class PoolDelta:
    """What changed in the pool since some earlier observation."""

    count_change: int
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()


@dataclass
class _JournalEntry:
    time: float
    cid: int


class ContainerPool:
    """Live container membership with arrival/finish journals."""

    def __init__(self) -> None:
        self._members: dict[int, Container] = {}
        self._arrivals: list[_JournalEntry] = []
        self._finishes: list[_JournalEntry] = []
        self._compacted_arrivals = 0
        self._compacted_finishes = 0

    # -- mutation (worker-driven) ---------------------------------------------

    def add(self, container: Container, time: float) -> None:
        """Register a newly launched container."""
        self._members[container.cid] = container
        self._arrivals.append(_JournalEntry(time, container.cid))

    def discard(self, cid: int, time: float) -> Container:
        """Remove a finished container, returning it."""
        try:
            container = self._members.pop(cid)
        except KeyError:
            raise UnknownContainerError(cid) from None
        self._finishes.append(_JournalEntry(time, cid))
        return container

    # -- queries (listener-driven) ----------------------------------------------

    def count(self) -> int:
        """Algorithm 2's ``T(i)`` — live container count."""
        return len(self._members)

    def members(self) -> list[Container]:
        """Live containers in cid order."""
        return sorted(self._members.values(), key=lambda c: c.cid)

    def cids(self) -> set[int]:
        """Live container ids."""
        return set(self._members)

    def get(self, cid: int) -> Container:
        """Live container by id."""
        try:
            return self._members[cid]
        except KeyError:
            raise UnknownContainerError(cid) from None

    def __contains__(self, cid: int) -> bool:
        return cid in self._members

    def delta_since(self, known_cids: set[int]) -> PoolDelta:
        """Difference between the live set and a previously observed set."""
        current = self.cids()
        added = tuple(sorted(current - known_cids))
        removed = tuple(sorted(known_cids - current))
        return PoolDelta(
            count_change=len(current) - len(known_cids),
            added=added,
            removed=removed,
        )

    # -- journals -----------------------------------------------------------------

    def compact(self, before: float) -> int:
        """Drop journal entries at or before *before*; totals survive.

        Streaming runs compact after every exit so the journals track
        recent churn instead of the whole run (the bounded-memory
        guarantee).  ``total_arrivals``/``total_finishes`` keep counting
        compacted entries, but ``arrivals_since``/``finishes_since``
        cannot reach behind the newest compaction floor — acceptable
        because the worker-monitor listeners diff live membership via
        :meth:`delta_since` rather than replaying the journals.
        """
        keep_arrivals = [e for e in self._arrivals if e.time > before]
        keep_finishes = [e for e in self._finishes if e.time > before]
        dropped_arrivals = len(self._arrivals) - len(keep_arrivals)
        dropped_finishes = len(self._finishes) - len(keep_finishes)
        self._compacted_arrivals += dropped_arrivals
        self._compacted_finishes += dropped_finishes
        self._arrivals = keep_arrivals
        self._finishes = keep_finishes
        return dropped_arrivals + dropped_finishes

    def arrivals_since(self, t: float) -> list[int]:
        """Cids that arrived strictly after time *t*."""
        return [e.cid for e in self._arrivals if e.time > t]

    def finishes_since(self, t: float) -> list[int]:
        """Cids that finished strictly after time *t*."""
        return [e.cid for e in self._finishes if e.time > t]

    def total_arrivals(self) -> int:
        """Number of containers ever added (compacted entries included)."""
        return self._compacted_arrivals + len(self._arrivals)

    def total_finishes(self) -> int:
        """Number of containers ever finished (compacted entries included)."""
        return self._compacted_finishes + len(self._finishes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContainerPool(live={len(self._members)}, "
            f"arrived={len(self._arrivals)}, finished={len(self._finishes)})"
        )
