"""Autoscaling policies: grow and shrink the worker fleet under load.

The admission queue exposes exactly the two signals a cluster autoscaler
needs — *depth* (how many jobs are waiting) and *aggregate expected
work* (how long the backlog would take the current fleet to chew
through).  An :class:`AutoscalePolicy` turns those signals into fleet
deltas each time the manager's state changes (an arrival queues, an exit
drains): a positive delta provisions new workers after a configurable
start-up delay (node boot + join, modelled like migration's
checkpoint/restore cost), a negative delta retires workers.

Retirement never strands a container: only a worker that is completely
empty (no running containers, no in-flight migration reservations) is
removed from the fleet.  When the policy wants to shrink but every
candidate still hosts work, the manager marks one worker *draining* —
it stops accepting placements and migration targets (composing with the
rebalance layer, which may actively move its containers off) and is
retired at the first moment it is empty.  Draining is cheap to undo:
a scale-up decision re-arms a draining worker instead of provisioning,
and *any* arrival that would queue while a draining worker still has
free admission slots un-drains it on the spot — a queued job is proof
the fleet is too small to be shrinking — so the fleet never thrashes
through boot delays it already paid for and never makes work wait on
capacity it is still holding.

Three policies ship:

* :class:`NoAutoscale` (``"none"``, the default) — fixed fleet.  The
  manager short-circuits it entirely, so runs are bit-identical to the
  fixed-fleet manager (pinned by both golden fixtures).
* :class:`QueueDepthAutoscale` (``"queue_depth"``) — classic
  threshold rule: grow while the queue is at least ``up_threshold``
  deep; propose a shrink while it is empty (retiring an idle worker
  outright, draining a busy one — reversed by the next queued
  arrival, as above).
* :class:`ProgressAutoscale` (``"progress"``) — works in *expected
  seconds of backlog per unit of fleet capacity* (queued expected work
  divided by total capacity, the progress-to-drain projection): grow
  when the backlog exceeds ``up_backlog`` seconds, shrink when the
  queue is empty.  Unlike raw depth this is workload-size aware — ten
  tiny queued jobs do not provision a node that one exit would free.

All policies are deterministic: deltas derive only from manager state,
and provisioning runs through the simulator's event queue.  Policies
hold per-run state, so build a fresh instance per run —
:func:`make_autoscale` resolves a registry name (``"none"``,
``"queue_depth"``, ``"progress"``), which keeps batch tasks picklable:
tasks carry the *name*, each worker process materializes the policy.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.errors import ClusterError, ConfigError, UnknownPolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager ← worker)
    from repro.cluster.manager import Manager

__all__ = [
    "AutoscalePolicy",
    "NoAutoscale",
    "QueueDepthAutoscale",
    "ProgressAutoscale",
    "AUTOSCALERS",
    "make_autoscale",
]


class AutoscalePolicy(abc.ABC):
    """Proposes fleet-size deltas from the manager's queue signals.

    The manager calls :meth:`bind` once at construction and
    :meth:`plan` after every state change that can move the signals
    (an arrival that queued, an exit-hook drain, a provisioned worker
    joining).  ``plan`` returns the desired fleet delta: ``+n`` to
    provision ``n`` workers, ``-n`` to retire (or start draining) ``n``,
    ``0`` to hold.  The manager enforces the ``min_workers`` /
    ``max_workers`` bounds *including* provisions already in flight, so
    policies may propose freely.

    Parameters
    ----------
    provision_delay:
        Seconds between the scale-up decision and the new worker
        joining the fleet (node boot + cluster join).
    min_workers:
        Fleet floor; ``None`` (default) resolves to the initial fleet
        size at bind time — autoscaling never shrinks below the fleet
        the run started with unless told to.
    max_workers:
        Fleet ceiling (in-flight provisions count); ``None`` is
        unbounded.
    cooldown:
        Minimum seconds between consecutive scale-up decisions, so one
        long queue burst provisions a measured trickle of workers
        rather than one per queued arrival.
    """

    #: Registry/display name ("none", "queue_depth", "progress").
    name: str = "autoscale"

    def __init__(
        self,
        *,
        provision_delay: float = 30.0,
        min_workers: int | None = None,
        max_workers: int | None = None,
        cooldown: float = 0.0,
    ) -> None:
        if provision_delay < 0:
            raise ConfigError(
                f"provision_delay must be >= 0, got {provision_delay!r}"
            )
        if min_workers is not None and min_workers < 1:
            raise ConfigError(
                f"min_workers must be >= 1 or None, got {min_workers!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1 or None, got {max_workers!r}"
            )
        if (
            min_workers is not None
            and max_workers is not None
            and max_workers < min_workers
        ):
            raise ConfigError(
                f"max_workers ({max_workers}) must be >= min_workers "
                f"({min_workers})"
            )
        if cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {cooldown!r}")
        self.provision_delay = float(provision_delay)
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.cooldown = float(cooldown)
        self._last_up: float | None = None

    def bind(self, sim, fleet_size: int) -> None:
        """Attach to a run (resolve the fleet floor, reset state)."""
        self._sim = sim
        if self.min_workers is None:
            self.min_workers = fleet_size
        self._last_up = None

    @abc.abstractmethod
    def plan(self, manager: "Manager") -> int:
        """Desired fleet delta for the manager's current state."""

    # -- helpers for subclasses --------------------------------------------

    def _can_scale_up(self, manager: "Manager") -> bool:
        """Ceiling and cooldown checks shared by the growing policies."""
        fleet = len(manager.workers) + manager.provisions_pending
        if self.max_workers is not None and fleet >= self.max_workers:
            return False
        now = manager.sim.now
        if (
            self.cooldown > 0
            and self._last_up is not None
            and now - self._last_up < self.cooldown
        ):
            return False
        self._last_up = now
        return True

    def _can_scale_down(self, manager: "Manager") -> bool:
        """Floor check: draining workers already count as leaving."""
        draining = sum(1 for w in manager.workers if w.draining)
        floor = self.min_workers if self.min_workers is not None else 1
        return len(manager.workers) - draining > floor

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


class NoAutoscale(AutoscalePolicy):
    """Fixed fleet — the historical manager behaviour.

    The manager special-cases this policy and skips the whole autoscale
    pass, so ``autoscale="none"`` runs schedule no extra events and
    touch no extra state: bit-identical to the fixed-fleet manager.
    """

    name = "none"

    def plan(self, manager: "Manager") -> int:
        return 0


class QueueDepthAutoscale(AutoscalePolicy):
    """Threshold rule on raw queue depth.

    Parameters
    ----------
    up_threshold:
        Queue depth at which another worker is provisioned (default 4).
    """

    name = "queue_depth"

    def __init__(
        self,
        *,
        up_threshold: int = 4,
        provision_delay: float = 30.0,
        min_workers: int | None = None,
        max_workers: int | None = None,
        cooldown: float = 10.0,
    ) -> None:
        super().__init__(
            provision_delay=provision_delay,
            min_workers=min_workers,
            max_workers=max_workers,
            cooldown=cooldown,
        )
        if up_threshold < 1:
            raise ConfigError(
                f"up_threshold must be >= 1, got {up_threshold!r}"
            )
        self.up_threshold = int(up_threshold)

    def plan(self, manager: "Manager") -> int:
        if manager.queue_len >= self.up_threshold:
            return 1 if self._can_scale_up(manager) else 0
        if manager.queue_len == 0 and self._can_scale_down(manager):
            return -1
        return 0

    def describe(self) -> str:
        return (
            f"queue-depth autoscale (up at depth {self.up_threshold}, "
            f"{self.provision_delay:g}s provision)"
        )


class ProgressAutoscale(AutoscalePolicy):
    """Backlog-seconds rule on the queue's aggregate expected work.

    Parameters
    ----------
    up_backlog:
        Expected seconds of queued work *per unit of fleet capacity*
        above which another worker is provisioned (default 120 s: the
        fleet is more than two minutes behind its own front door).
    """

    name = "progress"

    def __init__(
        self,
        *,
        up_backlog: float = 120.0,
        provision_delay: float = 30.0,
        min_workers: int | None = None,
        max_workers: int | None = None,
        cooldown: float = 10.0,
    ) -> None:
        super().__init__(
            provision_delay=provision_delay,
            min_workers=min_workers,
            max_workers=max_workers,
            cooldown=cooldown,
        )
        if up_backlog <= 0:
            raise ConfigError(
                f"up_backlog must be positive, got {up_backlog!r}"
            )
        self.up_backlog = float(up_backlog)

    def plan(self, manager: "Manager") -> int:
        depth = manager.queue_len
        if depth == 0:
            return -1 if self._can_scale_down(manager) else 0
        capacity = sum(w.capacity for w in manager.workers)
        if capacity <= 0:
            return 0
        backlog = manager.admission.queued_work() / capacity
        if backlog >= self.up_backlog:
            return 1 if self._can_scale_up(manager) else 0
        return 0

    def describe(self) -> str:
        return (
            f"progress autoscale (up at {self.up_backlog:g}s backlog, "
            f"{self.provision_delay:g}s provision)"
        )


#: Registry of autoscale policies by name, for CLI flags and batch tasks.
AUTOSCALERS: dict[str, type[AutoscalePolicy]] = {
    "none": NoAutoscale,
    "queue_depth": QueueDepthAutoscale,
    "progress": ProgressAutoscale,
}


def make_autoscale(
    autoscale: str | AutoscalePolicy | None,
) -> AutoscalePolicy:
    """Resolve a policy name (or pass through an instance) to a policy.

    ``None`` means the historical default, :class:`NoAutoscale`.
    """
    if autoscale is None:
        return NoAutoscale()
    if isinstance(autoscale, AutoscalePolicy):
        return autoscale
    try:
        cls = AUTOSCALERS[autoscale]
    except (KeyError, TypeError):
        raise UnknownPolicyError(
            f"unknown autoscale {autoscale!r}; "
            f"choose from {sorted(AUTOSCALERS)}"
        ) from None
    return cls()
