"""Pluggable container-placement policies for the cluster manager.

§3.1 runs FlowCon *per worker* precisely so the manager can scale
placement decisions across a cluster; which worker a job lands on is
therefore an orthogonal, swappable decision.  A
:class:`PlacementPolicy` picks one worker for each arriving (or
queue-drained) submission from the set of workers that currently have
admission headroom — capacity filtering itself stays in
:class:`~repro.cluster.manager.Manager`, so every policy sees only
*eligible* workers and cannot over-subscribe a node.

All policies are deterministic under a fixed simulation seed:
:class:`RandomPlacement` draws from a named stream of the simulator's
:class:`~repro.simcore.rng.RngRegistry` (bound via :meth:`bind`), and the
other policies break ties lexicographically by worker name.  Replaying a
run with the same seed and workload reproduces every placement decision
bit-for-bit.

Policies hold per-run state (the RNG stream), so build a fresh instance
per run — :func:`make_placement` resolves a registry name
(``"spread"``, ``"binpack"``, ``"random"``, ``"affinity"``,
``"progress"``) into one,
which is also what keeps batch tasks picklable: tasks carry the *name*,
each worker process materializes the policy.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

from repro.cluster.signals import ProgressObserver
from repro.errors import ClusterError, UnknownPolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (worker ← manager)
    from repro.cluster.submission import JobSubmission
    from repro.cluster.worker import Worker
    from repro.simcore.engine import Simulator

__all__ = [
    "PlacementPolicy",
    "SpreadPlacement",
    "BinPackPlacement",
    "RandomPlacement",
    "AffinityPlacement",
    "ProgressPlacement",
    "PLACEMENTS",
    "make_placement",
]


class PlacementPolicy(abc.ABC):
    """Picks a worker for each arriving submission.

    The manager calls :meth:`bind` once at construction (giving seeded
    policies access to the run's RNG registry) and :meth:`select` once
    per placement with the non-empty list of workers that have admission
    headroom.
    """

    #: Registry/display name ("spread", "binpack", ...).
    name: str = "placement"

    def bind(self, sim: "Simulator") -> None:
        """Attach to a run's simulator (RNG streams, tracing)."""

    @abc.abstractmethod
    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        """Choose one of *workers* (non-empty, all with headroom)."""

    def quiesce(self) -> None:
        """The manager will not place again until new work arrives.

        Called when the last accepted submission has been placed.
        Policies holding observation-bus subscriptions release them here
        so checkpoint pruning is no longer pinned at their last sampling
        windows; a later :meth:`select` transparently re-subscribes.
        """

    def describe(self) -> str:
        """Human-readable parameterization."""
        return self.name


def _spread_key(worker: "Worker") -> tuple:
    return (len(worker.running_containers()), worker.load(), worker.name)


class SpreadPlacement(PlacementPolicy):
    """Least-loaded spread — Swarm's default, the historical behaviour.

    Exactly the old ``Manager._select_worker``: fewest running
    containers, then lowest summed allocation, then worker name.
    """

    name = "spread"

    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        return min(workers, key=_spread_key)


class BinPackPlacement(PlacementPolicy):
    """Most-loaded-first consolidation (Swarm's ``binpack`` strategy).

    Fills the busiest eligible worker before spilling onto idle ones,
    keeping nodes free for large future arrivals at the cost of more
    interference on the packed node.
    """

    name = "binpack"

    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        return min(
            workers,
            key=lambda w: (-len(w.running_containers()), -w.load(), w.name),
        )


class RandomPlacement(PlacementPolicy):
    """Uniform random placement from a seeded stream.

    Draws from the simulator's ``"manager.placement"`` RNG stream, so
    runs with the same root seed place identically.
    """

    name = "random"

    def __init__(self) -> None:
        self._rng = None

    def bind(self, sim: "Simulator") -> None:
        self._rng = sim.rngs.stream("manager.placement")

    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        if self._rng is None:
            raise ClusterError(
                "RandomPlacement must be bound to a simulator before use"
            )
        return workers[int(self._rng.integers(len(workers)))]


class AffinityPlacement(PlacementPolicy):
    """Framework/model affinity: co-locate jobs of the same image.

    Workers already running a container with the submission's image
    (image encodes framework + model, e.g. ``"repro/mnist:tensorflow"``)
    are preferred — modelling image-cache and framework-runtime reuse —
    with least-loaded spread among them; submissions with no affine
    worker fall back to plain spread.
    """

    name = "affinity"

    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        affine = [
            w
            for w in workers
            if any(
                c.image == submission.image for c in w.running_containers()
            )
        ]
        return min(affine or workers, key=_spread_key)


class ProgressPlacement(PlacementPolicy):
    """SLAQ-signal placement: lowest aggregate progress-rate first.

    Scores each eligible worker by the summed normalized quality
    improvement per second of its running containers — the same Eq. 1
    signal :class:`~repro.baselines.slaq.SlaqLikePolicy` allocates by,
    read through a private
    :class:`~repro.cluster.signals.ProgressObserver` so no other
    monitor's sampling windows are disturbed.  New jobs land where the
    aggregate is lowest: interfering with jobs that are barely improving
    (converged, or starved anyway) costs the cluster the least marginal
    quality — SLAQ's greedy rule read as a placement decision.  Idle
    workers score 0 and therefore attract; ties fall back to spread.
    """

    name = "progress"

    def __init__(self) -> None:
        self._sim: "Simulator" | None = None
        self._observer = ProgressObserver()

    def bind(self, sim: "Simulator") -> None:
        self._sim = sim
        self._observer.reset()

    def quiesce(self) -> None:
        # With nothing left to place, this policy will not observe again
        # (until a genuinely new submission arrives, which transparently
        # re-subscribes): release the bus subscriptions so the pruning
        # floor stops tracking this observer's stale windows.
        self._observer.release()

    def select(
        self, workers: Sequence["Worker"], submission: "JobSubmission"
    ) -> "Worker":
        if self._sim is None:
            raise ClusterError(
                "ProgressPlacement must be bound to a simulator before use"
            )
        now = self._sim.now
        scores = {
            w.name: sum(self._observer.observe(w, now).values())
            for w in workers
        }
        return min(
            workers, key=lambda w: (scores[w.name],) + _spread_key(w)
        )


#: Registry of placement policies by name, for CLI flags and batch tasks.
PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    "spread": SpreadPlacement,
    "binpack": BinPackPlacement,
    "random": RandomPlacement,
    "affinity": AffinityPlacement,
    "progress": ProgressPlacement,
}


def make_placement(placement: str | PlacementPolicy | None) -> PlacementPolicy:
    """Resolve a policy name (or pass through an instance) to a policy.

    ``None`` means the historical default, :class:`SpreadPlacement`.
    """
    if placement is None:
        return SpreadPlacement()
    if isinstance(placement, PlacementPolicy):
        return placement
    try:
        cls = PLACEMENTS[placement]
    except (KeyError, TypeError):
        raise UnknownPolicyError(
            f"unknown placement {placement!r}; choose from {sorted(PLACEMENTS)}"
        ) from None
    return cls()
