"""Deep-learning training-job models.

The paper trains real PyTorch/TensorFlow models; FlowCon observes only two
things about them: the evaluation-function trajectory ``E(t)`` and resource
usage.  This package substitutes analytic training jobs that expose the
same observables:

* :mod:`~repro.workloads.curves` — convergence-curve families ``E(p)``
  parameterized over the fraction ``p`` of total training work done; they
  reproduce the strongly concave trajectories of the paper's Fig. 1.
* :mod:`~repro.workloads.evalfn` — the evaluation-function kinds of
  Table 1 (reconstruction loss, cross entropy, softmax, squared/quadratic
  loss) with their scales and directions.
* :mod:`~repro.workloads.job` — :class:`TrainingJob`: total work in
  CPU-seconds, demand ceiling, warm-up, progress integration.
* :mod:`~repro.workloads.models` — the model zoo of Table 1 calibrated to
  the paper's observed behaviour.
* :mod:`~repro.workloads.frameworks` — PyTorch/TensorFlow profiles.
* :mod:`~repro.workloads.generator` — fixed & random workload schedules.
"""

from repro.workloads.curves import (
    ConvergenceCurve,
    ExponentialCurve,
    PiecewiseLinearCurve,
    PowerLawCurve,
    SigmoidCurve,
)
from repro.workloads.evalfn import EvalDirection, EvalFunction, EvalKind
from repro.workloads.frameworks import Framework, FrameworkProfile
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.job import TrainingJob
from repro.workloads.models import MODEL_ZOO, ModelProfile, make_job

__all__ = [
    "MODEL_ZOO",
    "ConvergenceCurve",
    "EvalDirection",
    "EvalFunction",
    "EvalKind",
    "ExponentialCurve",
    "Framework",
    "FrameworkProfile",
    "ModelProfile",
    "PiecewiseLinearCurve",
    "PowerLawCurve",
    "SigmoidCurve",
    "TrainingJob",
    "WorkloadGenerator",
    "WorkloadSpec",
    "make_job",
]
