"""Convergence-curve families.

A curve maps training progress ``p ∈ [0, 1]`` (fraction of total work
completed) to the evaluation-function value ``E(p)``.  Real DL loss curves
are strongly concave in wall-clock terms — the paper's motivating Fig. 1
shows an RNN-GRU reaching 96.8 % of its final accuracy in 14.5 % of its
training time.  Three families cover the zoo:

* :class:`ExponentialCurve` — classic SGD loss decay
  ``E(p) = e∞ + (e0 − e∞)·exp(−p/τ)`` (normalized so E(1) hits e∞).
* :class:`PowerLawCurve` — heavier tail,
  ``E(p) = e∞ + (e0 − e∞)·(1 + p/τ)^(−γ)`` (normalized likewise).
* :class:`SigmoidCurve` — accuracy-style S-curve with a slow warm-up.
* :class:`PiecewiseLinearCurve` — direct interpolation of measured points
  (lets users replay *real* training logs through FlowCon).

All curves are vectorized: ``value`` accepts scalars or numpy arrays.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import CurveError

__all__ = [
    "ConvergenceCurve",
    "ExponentialCurve",
    "PowerLawCurve",
    "SigmoidCurve",
    "PiecewiseLinearCurve",
]


def _check_progress(p: np.ndarray | float) -> np.ndarray | float:
    if type(p) in (float, np.float64, int):
        # Scalar fast path: the simulation queries E(p) once per container
        # per sample, so this avoids three array reductions per call.
        if p != p:  # NaN propagates, matching the array path's np.clip
            return np.float64(p)
        if not (-1e-12 <= p <= 1.0 + 1e-12):
            raise CurveError(f"progress must lie in [0, 1], got {p!r}")
        if p < 0.0:
            p = 0.0
        elif p > 1.0:
            p = 1.0
        # np.float64 keeps the _raw arithmetic on numpy's scalar kernels,
        # bit-identical to the historical 0-d-array evaluation.
        return np.float64(p)
    arr = np.asarray(p, dtype=np.float64)
    if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
        raise CurveError(f"progress must lie in [0, 1], got {arr!r}")
    return np.clip(arr, 0.0, 1.0)


class ConvergenceCurve(abc.ABC):
    """Maps progress fraction to evaluation value.

    Subclasses implement :meth:`_raw`, the unnormalized curve shape on
    [0, 1] with ``_raw(0) = 1`` and ``_raw(1) = 0`` (fraction of *remaining*
    improvement); the base class affinely maps that onto ``[e_final, e0]``.
    """

    def __init__(self, e0: float, e_final: float) -> None:
        if not np.isfinite(e0) or not np.isfinite(e_final):
            raise CurveError("curve endpoints must be finite")
        if e0 == e_final:
            raise CurveError("curve endpoints must differ (no progress signal)")
        self.e0 = float(e0)
        self.e_final = float(e_final)

    # -- subclass hook -------------------------------------------------------

    @abc.abstractmethod
    def _raw(self, p: np.ndarray) -> np.ndarray:
        """Remaining-improvement fraction: 1 at p=0 decreasing to 0 at p=1."""

    # -- public API ------------------------------------------------------------

    def value(self, p: np.ndarray | float) -> np.ndarray | float:
        """Evaluation value ``E(p)`` (vectorized)."""
        arr = _check_progress(p)
        out = self.e_final + (self.e0 - self.e_final) * self._raw(arr)
        return float(out) if np.isscalar(p) or np.ndim(p) == 0 else out

    def improvement_fraction(self, p: np.ndarray | float) -> np.ndarray | float:
        """Fraction of total improvement achieved by progress *p*."""
        arr = _check_progress(p)
        out = 1.0 - self._raw(arr)
        return float(out) if np.isscalar(p) or np.ndim(p) == 0 else out

    def slope(self, p: float, dp: float = 1e-6) -> float:
        """Numerical ``dE/dp`` at *p* (central difference, clipped to [0,1])."""
        lo = max(0.0, p - dp)
        hi = min(1.0, p + dp)
        if hi <= lo:
            raise CurveError("degenerate slope window")
        return (float(self.value(hi)) - float(self.value(lo))) / (hi - lo)

    @property
    def decreasing(self) -> bool:
        """Whether the curve descends (loss-like) rather than rises."""
        return self.e0 > self.e_final

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(e0={self.e0:.4g}, e_final={self.e_final:.4g})"
        )


class ExponentialCurve(ConvergenceCurve):
    """Exponential decay of the remaining improvement.

    Parameters
    ----------
    tau:
        Time constant as a fraction of total training; small ``tau`` means
        the model does nearly all its learning early (GRU-like), large
        ``tau`` means steady learning throughout (VAE-like).
    """

    def __init__(self, e0: float, e_final: float, tau: float = 0.2) -> None:
        super().__init__(e0, e_final)
        if tau <= 0:
            raise CurveError(f"tau must be positive, got {tau!r}")
        self.tau = float(tau)
        # Normalize so _raw(1) is exactly 0 (the job *does* reach e_final).
        self._floor = float(np.exp(-1.0 / self.tau))

    def _raw(self, p: np.ndarray) -> np.ndarray:
        raw = np.exp(-p / self.tau)
        return (raw - self._floor) / (1.0 - self._floor)


class PowerLawCurve(ConvergenceCurve):
    """Power-law decay — long heavy tail typical of large-model training."""

    def __init__(
        self, e0: float, e_final: float, tau: float = 0.1, gamma: float = 1.5
    ) -> None:
        super().__init__(e0, e_final)
        if tau <= 0 or gamma <= 0:
            raise CurveError("tau and gamma must be positive")
        self.tau = float(tau)
        self.gamma = float(gamma)
        self._floor = float((1.0 + 1.0 / self.tau) ** (-self.gamma))

    def _raw(self, p: np.ndarray) -> np.ndarray:
        raw = (1.0 + p / self.tau) ** (-self.gamma)
        return (raw - self._floor) / (1.0 - self._floor)


class SigmoidCurve(ConvergenceCurve):
    """S-shaped improvement: slow warm-up, rapid middle, long plateau.

    Models accuracy-style metrics where early epochs barely move the
    needle (random-init network) before the characteristic fast rise.
    """

    def __init__(
        self,
        e0: float,
        e_final: float,
        midpoint: float = 0.25,
        steepness: float = 12.0,
    ) -> None:
        super().__init__(e0, e_final)
        if not 0.0 < midpoint < 1.0:
            raise CurveError(f"midpoint must lie in (0,1), got {midpoint!r}")
        if steepness <= 0:
            raise CurveError("steepness must be positive")
        self.midpoint = float(midpoint)
        self.steepness = float(steepness)
        self._s0 = self._sigma(0.0)
        self._s1 = self._sigma(1.0)

    def _sigma(self, p: float | np.ndarray) -> float | np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.steepness * (np.asarray(p) - self.midpoint)))

    def _raw(self, p: np.ndarray) -> np.ndarray:
        rise = (self._sigma(p) - self._s0) / (self._s1 - self._s0)
        return 1.0 - rise


class PiecewiseLinearCurve(ConvergenceCurve):
    """Linear interpolation through measured ``(progress, value)`` points.

    The bridge for replaying real training logs: feed the logged
    loss-vs-step points and FlowCon sees the genuine trajectory.
    """

    def __init__(self, points: list[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise CurveError("need at least two (progress, value) points")
        ps = np.array([p for p, _ in points], dtype=np.float64)
        vs = np.array([v for _, v in points], dtype=np.float64)
        if np.any(np.diff(ps) <= 0):
            raise CurveError("progress points must be strictly increasing")
        if abs(ps[0]) > 1e-9 or abs(ps[-1] - 1.0) > 1e-9:
            raise CurveError("points must span progress 0.0 to 1.0")
        super().__init__(float(vs[0]), float(vs[-1]))
        self._ps = ps
        self._vs = vs

    def _raw(self, p: np.ndarray) -> np.ndarray:
        vals = np.interp(p, self._ps, self._vs)
        return (vals - self.e_final) / (self.e0 - self.e_final)
