"""Framework profiles: PyTorch vs TensorFlow.

Table 1 runs the same architectures on two frameworks, and the paper's
traces show framework-level differences FlowCon is exposed to:

* **start-up overhead** — interpreter + graph-construction work before the
  first useful gradient step (visible as the flat lead-in of Fig. 1
  curves), modelled as warm-up work that produces no ``E(t)`` movement;
* **CPU saturation** — the TF1-era session runner on this class of models
  achieves slightly lower peak CPU utilization than the PyTorch eager loop
  (Fig. 11 shows the LSTM-CFC job idling part of the node), modelled as a
  multiplicative demand cap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["Framework", "FrameworkProfile", "FRAMEWORK_PROFILES"]


class Framework(enum.Enum):
    """DL frameworks used in the paper's evaluation."""

    PYTORCH = "pytorch"
    TENSORFLOW = "tensorflow"

    @property
    def short(self) -> str:
        """Single-letter tag as used in Table 1 ('P'/'T')."""
        return "P" if self is Framework.PYTORCH else "T"


@dataclass(frozen=True)
class FrameworkProfile:
    """Per-framework execution characteristics.

    Attributes
    ----------
    framework:
        Which framework this profile describes.
    startup_work:
        Warm-up CPU-seconds consumed before training signal appears
        (imports, graph building, data-pipeline spin-up).
    demand_factor:
        Multiplier in ``(0, 1]`` applied to a model's CPU demand ceiling.
    image_prefix:
        Docker-image naming prefix used for container labels.
    """

    framework: Framework
    startup_work: float
    demand_factor: float
    image_prefix: str

    def __post_init__(self) -> None:
        if self.startup_work < 0:
            raise ConfigError("startup_work must be non-negative")
        if not 0.0 < self.demand_factor <= 1.0:
            raise ConfigError("demand_factor must lie in (0, 1]")


FRAMEWORK_PROFILES: dict[Framework, FrameworkProfile] = {
    Framework.PYTORCH: FrameworkProfile(
        framework=Framework.PYTORCH,
        startup_work=2.0,
        demand_factor=1.0,
        image_prefix="pytorch",
    ),
    Framework.TENSORFLOW: FrameworkProfile(
        framework=Framework.TENSORFLOW,
        startup_work=4.0,
        demand_factor=0.97,
        image_prefix="tensorflow",
    ),
}
