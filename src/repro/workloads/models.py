"""The model zoo (Table 1) calibrated to the paper's observed behaviour.

Each :class:`ModelProfile` bundles a network architecture + framework with
its evaluation function, convergence-curve shape, job size and resource
footprint.  Calibration anchors (see DESIGN.md §2 and EXPERIMENTS.md):

* Fig. 1 — training curves are concave: a large share of each metric's
  improvement lands early.  The VAE's reconstruction loss is the extreme
  case (it collapses within the first few percent of training,
  ``tau = 0.02``), the classifier-style metrics improve early but keep
  making *measurable* progress until their fixed epoch budget ends
  (``tau ≈ 0.35–0.40``, or heavy-tailed power-law/sigmoid shapes).
* §5.3 / Fig. 7 — the VAE is classified slow-growing within the first
  1–2 measurement intervals of the fixed schedule (the paper pins it to
  0.25 when MNIST-P arrives at t = 40 s) ⇒ its α-crossing must sit very
  early in work terms; ``tau = 0.02`` places it at ≈5–6 % of total work.
* §5.5 / Figs. 12 & 17 — FlowCon beats NA on 9/10 and 11/15 jobs with
  only small losses.  This win profile requires that most models' growth
  efficiency stays above α for the bulk of their work (they are stopped
  by their epoch budget shortly after convergence), while the VAE-class
  jobs convergе early, get throttled, and donate capacity — they are the
  paper's own (small) losers, cf. Fig. 13's Job-2.
* §5.4 / Fig. 11 — the LSTM-CFC cannot saturate the node even running
  alone ⇒ ``cpu_demand ≈ 0.35``.
* Job sizes are chosen so the fixed 3-job schedule (VAE@0 s,
  MNIST-P@40 s, MNIST-T@80 s) reproduces the paper's ordering: MNIST-T
  finishes first, the VAE dominates the makespan.

Absolute solo durations need not match a 2012 Xeon E5-2450; the shapes and
orderings are what the reproduction preserves (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.containers.spec import ResourceSpec
from repro.errors import WorkloadError
from repro.workloads.curves import (
    ConvergenceCurve,
    ExponentialCurve,
    PowerLawCurve,
    SigmoidCurve,
)
from repro.workloads.evalfn import EvalFunction, EvalKind
from repro.workloads.frameworks import FRAMEWORK_PROFILES, Framework
from repro.workloads.job import TrainingJob

__all__ = ["ModelProfile", "MODEL_ZOO", "make_job", "zoo_keys"]


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one (architecture, framework) pair."""

    key: str
    display_name: str
    framework: Framework
    evalfn: EvalFunction
    curve_factory: Callable[[], ConvergenceCurve]
    #: Solo CPU-seconds to completion (excluding framework start-up).
    base_work: float
    footprint: ResourceSpec
    total_iterations: int

    def make_curve(self) -> ConvergenceCurve:
        """Fresh convergence curve instance."""
        return self.curve_factory()

    @property
    def image(self) -> str:
        """Docker-style image label."""
        prefix = FRAMEWORK_PROFILES[self.framework].image_prefix
        return f"{prefix}/{self.key.split('@')[0]}"


def _profile(
    key: str,
    display: str,
    framework: Framework,
    kind: EvalKind,
    e0: float,
    e_final: float,
    curve: Callable[[float, float], ConvergenceCurve],
    work: float,
    demand: float = 1.0,
    memory: float = 0.12,
    blkio: float = 0.02,
    iters: int = 10_000,
) -> ModelProfile:
    evalfn = EvalFunction(kind=kind, start=e0, converged=e_final)
    return ModelProfile(
        key=key,
        display_name=display,
        framework=framework,
        evalfn=evalfn,
        curve_factory=lambda: curve(e0, e_final),
        base_work=work,
        footprint=ResourceSpec(
            cpu_demand=demand, memory=memory, blkio=blkio, netio=0.0
        ),
        total_iterations=iters,
    )


def _exp(tau: float) -> Callable[[float, float], ConvergenceCurve]:
    return lambda e0, ef: ExponentialCurve(e0, ef, tau=tau)


def _pow(tau: float, gamma: float) -> Callable[[float, float], ConvergenceCurve]:
    return lambda e0, ef: PowerLawCurve(e0, ef, tau=tau, gamma=gamma)


def _sig(mid: float, steep: float) -> Callable[[float, float], ConvergenceCurve]:
    return lambda e0, ef: SigmoidCurve(e0, ef, midpoint=mid, steepness=steep)


#: The zoo, keyed ``"<model>@<framework>"``.  The first six rows are
#: Table 1; the final rows are the extra Fig. 1 motivating models.
MODEL_ZOO: dict[str, ModelProfile] = {
    profile.key: profile
    for profile in [
        # ----- Table 1 ------------------------------------------------------
        _profile(
            "vae@pytorch", "VAE (Pytorch)", Framework.PYTORCH,
            EvalKind.RECONSTRUCTION_LOSS, 550.0, 95.0,
            _exp(0.020), work=320.0, memory=0.25, iters=46_875,
        ),
        _profile(
            "vae@tensorflow", "VAE (Tensorflow)", Framework.TENSORFLOW,
            EvalKind.RECONSTRUCTION_LOSS, 540.0, 92.0,
            _exp(0.022), work=300.0, memory=0.27, iters=43_000,
        ),
        _profile(
            "mnist@pytorch", "MNIST (Pytorch)", Framework.PYTORCH,
            EvalKind.CROSS_ENTROPY, 2.30, 0.07,
            _exp(0.400), work=110.0, memory=0.12, iters=18_750,
        ),
        _profile(
            "mnist@tensorflow", "MNIST (Tensorflow)", Framework.TENSORFLOW,
            EvalKind.CROSS_ENTROPY, 2.28, 0.09,
            _exp(0.400), work=45.0, memory=0.15, iters=9_380,
        ),
        _profile(
            "lstm_cfc@tensorflow", "LSTM-CFC (Tensorflow)", Framework.TENSORFLOW,
            EvalKind.SOFTMAX_ACCURACY, 0.10, 0.95,
            _sig(0.50, 6.0), work=120.0, demand=0.35, memory=0.18,
            iters=12_000,
        ),
        _profile(
            "lstm_crf@pytorch", "LSTM-CRF (Pytorch)", Framework.PYTORCH,
            EvalKind.SQUARED_LOSS, 1.00, 0.04,
            _pow(0.500, 1.0), work=180.0, memory=0.20, iters=22_500,
        ),
        _profile(
            "birnn@tensorflow", "Bidirectional-RNN (Tensorflow)",
            Framework.TENSORFLOW,
            EvalKind.SOFTMAX_ACCURACY, 0.10, 0.96,
            _sig(0.45, 7.0), work=160.0, memory=0.17, iters=16_000,
        ),
        _profile(
            "gru@tensorflow", "RNN-GRU (Tensorflow)", Framework.TENSORFLOW,
            EvalKind.QUADRATIC_LOSS, 0.90, 0.05,
            _exp(0.350), work=120.0, memory=0.14, iters=15_000,
        ),
        # ----- extra Fig. 1 motivating models -------------------------------
        _profile(
            "cnn_lstm@tensorflow", "CNN-Lstm (Tensorflow)", Framework.TENSORFLOW,
            EvalKind.SOFTMAX_ACCURACY, 0.12, 0.93,
            _sig(0.45, 6.0), work=200.0, memory=0.22, iters=20_000,
        ),
        _profile(
            "logreg@tensorflow", "Logistic Regression (Tensorflow)",
            Framework.TENSORFLOW,
            EvalKind.CROSS_ENTROPY, 2.10, 0.35,
            _exp(0.300), work=60.0, memory=0.06, iters=6_000,
        ),
        # ----- extended zoo: the §6 resource-intensive models ----------------
        # The related-work section motivates FlowCon with DCGAN, StarGAN
        # and Xception as "exceptionally powerful but extremely resource
        # intensive" — included here so workloads can stress long-running,
        # high-memory, score-maximizing (inception) jobs beyond Table 1.
        _profile(
            "dcgan@pytorch", "DCGAN (Pytorch)", Framework.PYTORCH,
            EvalKind.INCEPTION_SCORE, 1.00, 7.50,
            _sig(0.40, 6.0), work=420.0, memory=0.35, iters=60_000,
        ),
        _profile(
            "stargan@pytorch", "StarGAN (Pytorch)", Framework.PYTORCH,
            EvalKind.INCEPTION_SCORE, 1.00, 6.80,
            _sig(0.50, 5.0), work=520.0, memory=0.40, iters=80_000,
        ),
        _profile(
            "xception@tensorflow", "Xception (Tensorflow)",
            Framework.TENSORFLOW,
            EvalKind.SOFTMAX_ACCURACY, 0.05, 0.94,
            _sig(0.35, 7.0), work=450.0, memory=0.38, iters=70_000,
        ),
    ]
}

#: Table 1's models plus the Fig. 1 extras — the pool the paper's own
#: experiments draw from (the extended GAN/vision models are opt-in).
PAPER_POOL: tuple[str, ...] = (
    "vae@pytorch",
    "vae@tensorflow",
    "mnist@pytorch",
    "mnist@tensorflow",
    "lstm_cfc@tensorflow",
    "lstm_crf@pytorch",
    "birnn@tensorflow",
    "gru@tensorflow",
)


def zoo_keys() -> list[str]:
    """All model keys in declaration (Table 1) order."""
    return list(MODEL_ZOO.keys())


def make_job(
    key: str,
    *,
    work_scale: float = 1.0,
    rng: np.random.Generator | None = None,
    size_jitter: float = 0.0,
) -> TrainingJob:
    """Instantiate a fresh :class:`TrainingJob` from the zoo.

    Parameters
    ----------
    key:
        Zoo key, e.g. ``"mnist@tensorflow"``.
    work_scale:
        Multiplier on the profile's base work (dataset-size knob).
    rng, size_jitter:
        Optional multiplicative log-uniform jitter of the job size — used
        by the random-workload generator so repeated instances of the same
        model are not byte-identical (±``size_jitter`` relative).

    Raises
    ------
    WorkloadError
        For unknown keys or invalid scaling.
    """
    profile = MODEL_ZOO.get(key)
    if profile is None:
        raise WorkloadError(
            f"unknown model key {key!r}; available: {sorted(MODEL_ZOO)}"
        )
    if work_scale <= 0:
        raise WorkloadError(f"work_scale must be positive, got {work_scale!r}")
    if size_jitter < 0 or size_jitter >= 1:
        raise WorkloadError("size_jitter must lie in [0, 1)")
    scale = work_scale
    if rng is not None and size_jitter > 0:
        scale *= float(rng.uniform(1.0 - size_jitter, 1.0 + size_jitter))

    fw = FRAMEWORK_PROFILES[profile.framework]
    total_work = profile.base_work * scale + fw.startup_work
    demand = min(1.0, profile.footprint.cpu_demand * fw.demand_factor)
    footprint = ResourceSpec(
        cpu_demand=demand,
        memory=profile.footprint.memory,
        blkio=profile.footprint.blkio,
        netio=profile.footprint.netio,
    )
    return TrainingJob(
        name=profile.display_name,
        total_work=total_work,
        curve=profile.make_curve(),
        evalfn=profile.evalfn,
        footprint=footprint,
        warmup_work=fw.startup_work,
        total_iterations=profile.total_iterations,
    )
