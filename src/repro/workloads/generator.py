"""Workload schedules: who arrives when.

The paper evaluates three submission patterns (§5.2): *fixed* schedules
where the administrator pins launch times, *random* schedules where jobs
arrive uniformly in a window (0–200 s in §5.4/§5.5), and *scalability*
runs with 10 and 15 jobs.  :class:`WorkloadGenerator` builds all of them as
lists of :class:`WorkloadSpec`, reproducibly from a seeded stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.job import TrainingJob
from repro.workloads.models import MODEL_ZOO, make_job

__all__ = ["WorkloadSpec", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One planned job submission.

    Attributes
    ----------
    model_key:
        Zoo key of the model to train.
    submit_time:
        Simulation time at which the manager receives the job.
    label:
        Experiment-facing job label (``"Job-1"`` …) in *submission order*,
        matching the paper's numbering in Figs. 9–17.
    work_scale:
        Job-size multiplier forwarded to :func:`make_job`.
    tenant / weight / priority:
        Optional multi-tenant admission metadata, carried verbatim onto
        the run's :class:`~repro.cluster.submission.JobSubmission` —
        consumed by the ``"wfq"`` (tenant + weight) and ``"priority"``
        admission policies; inert under ``"fifo"``/``"sjf"``.
    retry_budget:
        Crash-restart budget carried onto the submission; consumed only
        when a failure injector is armed.
    """

    model_key: str
    submit_time: float
    label: str
    work_scale: float = 1.0
    tenant: str | None = None
    weight: float = 1.0
    priority: int = 0
    retry_budget: int = 3

    def build_job(self, rng: np.random.Generator | None = None,
                  size_jitter: float = 0.0) -> TrainingJob:
        """Materialize the training job for this submission."""
        return make_job(
            self.model_key,
            work_scale=self.work_scale,
            rng=rng,
            size_jitter=size_jitter,
        )


class WorkloadGenerator:
    """Builds fixed and random submission schedules.

    Parameters
    ----------
    rng:
        Seeded generator for arrival times and model draws; pass streams
        from :class:`repro.simcore.rng.RngRegistry` for reproducibility.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # -- fixed schedules -------------------------------------------------------

    @staticmethod
    def fixed(schedule: list[tuple[str, float]]) -> list[WorkloadSpec]:
        """Fixed schedule from ``(model_key, submit_time)`` pairs."""
        specs = []
        for i, (key, t) in enumerate(schedule, start=1):
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
            if t < 0:
                raise WorkloadError(f"negative submit time {t!r}")
            specs.append(WorkloadSpec(key, float(t), f"Job-{i}"))
        return specs

    @staticmethod
    def paper_fixed_three_job() -> list[WorkloadSpec]:
        """§5.3's fixed schedule: VAE@0 s, MNIST-P@40 s, MNIST-T@80 s."""
        return WorkloadGenerator.fixed(
            [
                ("vae@pytorch", 0.0),
                ("mnist@pytorch", 40.0),
                ("mnist@tensorflow", 80.0),
            ]
        )

    # -- random schedules --------------------------------------------------------

    def random(
        self,
        model_keys: list[str],
        *,
        window: tuple[float, float] = (0.0, 200.0),
        sort_by_time: bool = True,
    ) -> list[WorkloadSpec]:
        """Random arrivals: one job per key, times ~ U(window).

        Jobs are labelled ``Job-1`` … ``Job-n`` in arrival order
        (the paper "marks responsible jobs as 1, 2, …" by submission).
        """
        lo, hi = window
        if hi <= lo:
            raise WorkloadError(f"empty arrival window {window!r}")
        for key in model_keys:
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
        times = self._rng.uniform(lo, hi, size=len(model_keys))
        pairs = list(zip(model_keys, times))
        if sort_by_time:
            pairs.sort(key=lambda kv: kv[1])
        return [
            WorkloadSpec(key, float(t), f"Job-{i}")
            for i, (key, t) in enumerate(pairs, start=1)
        ]

    def paper_random_five(self) -> list[WorkloadSpec]:
        """§5.4's five-model random mix: LSTM-CFC, VAE, VAE-T, MNIST, GRU."""
        return self.random(
            [
                "lstm_cfc@tensorflow",
                "vae@pytorch",
                "vae@tensorflow",
                "mnist@pytorch",
                "gru@tensorflow",
            ]
        )

    def _draw_keys(self, n_jobs: int, pool: list[str] | None) -> list[str]:
        """Draw *n_jobs* model keys with replacement from *pool*."""
        if n_jobs <= 0:
            raise WorkloadError(f"n_jobs must be positive, got {n_jobs!r}")
        if pool is None:
            from repro.workloads.models import PAPER_POOL

            pool = list(PAPER_POOL)
        for key in pool:
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
        return [pool[int(i)] for i in self._rng.integers(0, len(pool), n_jobs)]

    def random_mix(
        self,
        n_jobs: int,
        *,
        window: tuple[float, float] = (0.0, 200.0),
        pool: list[str] | None = None,
    ) -> list[WorkloadSpec]:
        """§5.5's scalability mixes: *n_jobs* drawn with replacement."""
        return self.random(self._draw_keys(n_jobs, pool), window=window)

    def poisson_mix(
        self,
        n_jobs: int,
        *,
        mean_gap: float = 3.0,
        start: float = 0.0,
        pool: list[str] | None = None,
    ) -> list[WorkloadSpec]:
        """Open-arrival stream: *n_jobs* with Exp(``mean_gap``) gaps.

        Models a cluster front door rather than a closed batch: arrival
        times are the cumulative sum of exponential inter-arrival gaps
        (a Poisson process of rate ``1/mean_gap``), so bursts and lulls
        both occur.  Models are drawn with replacement from *pool*
        (model draw first, then gaps — a fixed draw order keeps the
        stream reproducible as parameters change).  Labels are
        ``Job-1`` … ``Job-n`` in arrival order.
        """
        if mean_gap <= 0:
            raise WorkloadError(f"mean_gap must be positive, got {mean_gap!r}")
        if start < 0:
            raise WorkloadError(f"negative start time {start!r}")
        keys = self._draw_keys(n_jobs, pool)
        times = start + np.cumsum(self._rng.exponential(mean_gap, size=n_jobs))
        return [
            WorkloadSpec(key, float(t), f"Job-{i}")
            for i, (key, t) in enumerate(zip(keys, times), start=1)
        ]
