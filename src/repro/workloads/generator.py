"""Workload schedules: who arrives when.

The paper evaluates three submission patterns (§5.2): *fixed* schedules
where the administrator pins launch times, *random* schedules where jobs
arrive uniformly in a window (0–200 s in §5.4/§5.5), and *scalability*
runs with 10 and 15 jobs.  :class:`WorkloadGenerator` builds all of them as
lists of :class:`WorkloadSpec`, reproducibly from a seeded stream.

Beyond the paper's materialized lists, :func:`make_stream` builds
**lazy** trace-shaped workloads as :class:`WorkloadStream`\\ s — a
family name plus parameters plus a seed, yielding specs one at a time so
a million-job day never exists as a list.  Four families:

* ``"poisson"`` — constant-rate open arrivals (the lazy sibling of
  :meth:`WorkloadGenerator.poisson_mix`, with a per-arrival draw order);
* ``"diurnal"`` — sinusoidal day/night rate via Poisson thinning;
* ``"flash_crowd"`` — baseline Poisson plus seeded burst epochs during
  which the rate multiplies;
* ``"pareto_mix"`` — constant-rate arrivals with heavy-tailed
  (bounded Pareto) job sizes.

Every family draws *per arrival* from one seeded generator, so iterating
a stream twice — or materializing it with
:meth:`WorkloadStream.materialize` — is bit-identical by construction,
and every family composes with a weighted tenant mix (one extra draw per
job when ``tenants`` is given).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.job import TrainingJob
from repro.workloads.models import MODEL_ZOO, make_job

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "WorkloadStream",
    "make_stream",
    "STREAM_FAMILIES",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One planned job submission.

    Attributes
    ----------
    model_key:
        Zoo key of the model to train.
    submit_time:
        Simulation time at which the manager receives the job.
    label:
        Experiment-facing job label (``"Job-1"`` …) in *submission order*,
        matching the paper's numbering in Figs. 9–17.
    work_scale:
        Job-size multiplier forwarded to :func:`make_job`.
    tenant / weight / priority:
        Optional multi-tenant admission metadata, carried verbatim onto
        the run's :class:`~repro.cluster.submission.JobSubmission` —
        consumed by the ``"wfq"`` (tenant + weight) and ``"priority"``
        admission policies; inert under ``"fifo"``/``"sjf"``.
    retry_budget:
        Crash-restart budget carried onto the submission; consumed only
        when a failure injector is armed.
    """

    model_key: str
    submit_time: float
    label: str
    work_scale: float = 1.0
    tenant: str | None = None
    weight: float = 1.0
    priority: int = 0
    retry_budget: int = 3

    def build_job(self, rng: np.random.Generator | None = None,
                  size_jitter: float = 0.0) -> TrainingJob:
        """Materialize the training job for this submission."""
        return make_job(
            self.model_key,
            work_scale=self.work_scale,
            rng=rng,
            size_jitter=size_jitter,
        )


class WorkloadGenerator:
    """Builds fixed and random submission schedules.

    Parameters
    ----------
    rng:
        Seeded generator for arrival times and model draws; pass streams
        from :class:`repro.simcore.rng.RngRegistry` for reproducibility.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # -- fixed schedules -------------------------------------------------------

    @staticmethod
    def fixed(schedule: list[tuple[str, float]]) -> list[WorkloadSpec]:
        """Fixed schedule from ``(model_key, submit_time)`` pairs."""
        specs = []
        for i, (key, t) in enumerate(schedule, start=1):
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
            if t < 0:
                raise WorkloadError(f"negative submit time {t!r}")
            specs.append(WorkloadSpec(key, float(t), f"Job-{i}"))
        return specs

    @staticmethod
    def paper_fixed_three_job() -> list[WorkloadSpec]:
        """§5.3's fixed schedule: VAE@0 s, MNIST-P@40 s, MNIST-T@80 s."""
        return WorkloadGenerator.fixed(
            [
                ("vae@pytorch", 0.0),
                ("mnist@pytorch", 40.0),
                ("mnist@tensorflow", 80.0),
            ]
        )

    # -- random schedules --------------------------------------------------------

    def random(
        self,
        model_keys: list[str],
        *,
        window: tuple[float, float] = (0.0, 200.0),
        sort_by_time: bool = True,
    ) -> list[WorkloadSpec]:
        """Random arrivals: one job per key, times ~ U(window).

        Jobs are labelled ``Job-1`` … ``Job-n`` in arrival order
        (the paper "marks responsible jobs as 1, 2, …" by submission).
        """
        lo, hi = window
        if hi <= lo:
            raise WorkloadError(f"empty arrival window {window!r}")
        for key in model_keys:
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
        times = self._rng.uniform(lo, hi, size=len(model_keys))
        pairs = list(zip(model_keys, times))
        if sort_by_time:
            pairs.sort(key=lambda kv: kv[1])
        return [
            WorkloadSpec(key, float(t), f"Job-{i}")
            for i, (key, t) in enumerate(pairs, start=1)
        ]

    def paper_random_five(self) -> list[WorkloadSpec]:
        """§5.4's five-model random mix: LSTM-CFC, VAE, VAE-T, MNIST, GRU."""
        return self.random(
            [
                "lstm_cfc@tensorflow",
                "vae@pytorch",
                "vae@tensorflow",
                "mnist@pytorch",
                "gru@tensorflow",
            ]
        )

    def _draw_keys(self, n_jobs: int, pool: list[str] | None) -> list[str]:
        """Draw *n_jobs* model keys with replacement from *pool*."""
        if n_jobs <= 0:
            raise WorkloadError(f"n_jobs must be positive, got {n_jobs!r}")
        if pool is None:
            from repro.workloads.models import PAPER_POOL

            pool = list(PAPER_POOL)
        for key in pool:
            if key not in MODEL_ZOO:
                raise WorkloadError(f"unknown model key {key!r}")
        return [pool[int(i)] for i in self._rng.integers(0, len(pool), n_jobs)]

    def random_mix(
        self,
        n_jobs: int,
        *,
        window: tuple[float, float] = (0.0, 200.0),
        pool: list[str] | None = None,
    ) -> list[WorkloadSpec]:
        """§5.5's scalability mixes: *n_jobs* drawn with replacement."""
        return self.random(self._draw_keys(n_jobs, pool), window=window)

    def poisson_mix(
        self,
        n_jobs: int,
        *,
        mean_gap: float = 3.0,
        start: float = 0.0,
        pool: list[str] | None = None,
    ) -> list[WorkloadSpec]:
        """Open-arrival stream: *n_jobs* with Exp(``mean_gap``) gaps.

        Models a cluster front door rather than a closed batch: arrival
        times are the cumulative sum of exponential inter-arrival gaps
        (a Poisson process of rate ``1/mean_gap``), so bursts and lulls
        both occur.  Models are drawn with replacement from *pool*
        (model draw first, then gaps — a fixed draw order keeps the
        stream reproducible as parameters change).  Labels are
        ``Job-1`` … ``Job-n`` in arrival order.
        """
        if mean_gap <= 0:
            raise WorkloadError(f"mean_gap must be positive, got {mean_gap!r}")
        if start < 0:
            raise WorkloadError(f"negative start time {start!r}")
        keys = self._draw_keys(n_jobs, pool)
        times = start + np.cumsum(self._rng.exponential(mean_gap, size=n_jobs))
        return [
            WorkloadSpec(key, float(t), f"Job-{i}")
            for i, (key, t) in enumerate(zip(keys, times), start=1)
        ]


# -- lazy streaming families -------------------------------------------------------


def _checked_pool(pool: list[str] | tuple[str, ...] | None) -> tuple[str, ...]:
    if pool is None:
        from repro.workloads.models import PAPER_POOL

        return tuple(PAPER_POOL)
    pool = tuple(pool)
    if not pool:
        raise WorkloadError("model pool must not be empty")
    for key in pool:
        if key not in MODEL_ZOO:
            raise WorkloadError(f"unknown model key {key!r}")
    return pool


def _checked_tenants(tenants) -> tuple[tuple[str, float, float], ...] | None:
    """Validate a tenant mix: ``(name, share, weight)`` triples."""
    if tenants is None:
        return None
    out = []
    for entry in tenants:
        name, share, weight = entry
        if share <= 0:
            raise WorkloadError(f"tenant share must be positive, got {share!r}")
        if weight <= 0:
            raise WorkloadError(
                f"tenant weight must be positive, got {weight!r}"
            )
        out.append((str(name), float(share), float(weight)))
    if not out:
        raise WorkloadError("tenant mix must not be empty")
    return tuple(out)


def _spec(
    rng: np.random.Generator,
    index: int,
    key: str,
    t: float,
    work_scale: float,
    tenants: tuple[tuple[str, float, float], ...] | None,
) -> WorkloadSpec:
    """Per-arrival tail shared by every family: tenant draw + spec build."""
    tenant = None
    weight = 1.0
    if tenants is not None:
        total = sum(share for _, share, _ in tenants)
        u = rng.random() * total
        for name, share, w in tenants:
            u -= share
            if u < 0.0:
                tenant, weight = name, w
                break
        else:  # pragma: no cover - float edge
            tenant, weight = tenants[-1][0], tenants[-1][2]
    return WorkloadSpec(
        key,
        float(t),
        f"Job-{index}",
        work_scale=float(work_scale),
        tenant=tenant,
        weight=weight,
    )


def _positive(name: str, value: float) -> float:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value!r}")
    return float(value)


def _poisson_stream(
    rng: np.random.Generator,
    n_jobs: int,
    *,
    mean_gap: float = 3.0,
    start: float = 0.0,
    work_scale: float = 1.0,
    pool=None,
    tenants=None,
) -> Iterator[WorkloadSpec]:
    """Constant-rate open arrivals, one draw pair (gap, key) per job."""
    mean_gap = _positive("mean_gap", mean_gap)
    _positive("work_scale", work_scale)
    if start < 0:
        raise WorkloadError(f"negative start time {start!r}")
    pool = _checked_pool(pool)
    tenants = _checked_tenants(tenants)

    def gen():
        t = start
        for i in range(1, n_jobs + 1):
            t += rng.exponential(mean_gap)
            key = pool[int(rng.integers(0, len(pool)))]
            yield _spec(rng, i, key, t, work_scale, tenants)

    return gen()


def _diurnal_stream(
    rng: np.random.Generator,
    n_jobs: int,
    *,
    period: float = 86400.0,
    mean_gap: float = 3.0,
    peak_to_trough: float = 4.0,
    start: float = 0.0,
    work_scale: float = 1.0,
    pool=None,
    tenants=None,
) -> Iterator[WorkloadSpec]:
    """Sinusoidal day/night rate via Poisson thinning.

    The instantaneous rate is ``λ(t) = λ_mean · (1 + a·sin(2πt/T))``
    with ``a = (ρ−1)/(ρ+1)`` for peak-to-trough ratio ρ, so the mean
    rate stays ``1/mean_gap`` regardless of ρ.  Candidates arrive at
    the peak rate and are accepted with probability ``λ(t)/λ_max``
    (exact nonhomogeneous-Poisson sampling, one rejection draw per
    candidate).
    """
    period = _positive("period", period)
    mean_gap = _positive("mean_gap", mean_gap)
    _positive("work_scale", work_scale)
    if peak_to_trough < 1.0:
        raise WorkloadError(
            f"peak_to_trough must be >= 1, got {peak_to_trough!r}"
        )
    if start < 0:
        raise WorkloadError(f"negative start time {start!r}")
    pool = _checked_pool(pool)
    tenants = _checked_tenants(tenants)
    lam_mean = 1.0 / mean_gap
    amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    lam_max = lam_mean * (1.0 + amp)
    two_pi = 2.0 * np.pi

    def gen():
        t = start
        for i in range(1, n_jobs + 1):
            while True:
                t += rng.exponential(1.0 / lam_max)
                lam_t = lam_mean * (1.0 + amp * np.sin(two_pi * t / period))
                if rng.random() * lam_max <= lam_t:
                    break
            key = pool[int(rng.integers(0, len(pool)))]
            yield _spec(rng, i, key, t, work_scale, tenants)

    return gen()


def _flash_crowd_stream(
    rng: np.random.Generator,
    n_jobs: int,
    *,
    mean_gap: float = 3.0,
    burst_every: float = 600.0,
    burst_duration: float = 60.0,
    burst_factor: float = 8.0,
    start: float = 0.0,
    work_scale: float = 1.0,
    pool=None,
    tenants=None,
) -> Iterator[WorkloadSpec]:
    """Baseline Poisson plus seeded burst epochs.

    Burst start offsets are themselves seeded draws (Exp(burst_every)
    after the previous burst ends), generated lazily as simulated time
    reaches them; during a burst the rate multiplies by
    ``burst_factor``.  Sampling is thinning at the burst rate, so the
    baseline/burst boundary is exact.
    """
    mean_gap = _positive("mean_gap", mean_gap)
    burst_every = _positive("burst_every", burst_every)
    burst_duration = _positive("burst_duration", burst_duration)
    _positive("work_scale", work_scale)
    if burst_factor < 1.0:
        raise WorkloadError(
            f"burst_factor must be >= 1, got {burst_factor!r}"
        )
    if start < 0:
        raise WorkloadError(f"negative start time {start!r}")
    pool = _checked_pool(pool)
    tenants = _checked_tenants(tenants)
    lam_base = 1.0 / mean_gap
    lam_max = lam_base * burst_factor

    def gen():
        t = start
        burst_start = start + rng.exponential(burst_every)
        burst_end = burst_start + burst_duration
        for i in range(1, n_jobs + 1):
            while True:
                t += rng.exponential(1.0 / lam_max)
                while t > burst_end:
                    burst_start = burst_end + rng.exponential(burst_every)
                    burst_end = burst_start + burst_duration
                lam_t = lam_max if t >= burst_start else lam_base
                if rng.random() * lam_max <= lam_t:
                    break
            key = pool[int(rng.integers(0, len(pool)))]
            yield _spec(rng, i, key, t, work_scale, tenants)

    return gen()


def _pareto_mix_stream(
    rng: np.random.Generator,
    n_jobs: int,
    *,
    mean_gap: float = 3.0,
    shape: float = 1.5,
    scale_floor: float = 0.25,
    size_cap: float = 20.0,
    start: float = 0.0,
    pool=None,
    tenants=None,
) -> Iterator[WorkloadSpec]:
    """Constant-rate arrivals with heavy-tailed job sizes.

    ``work_scale`` is bounded Pareto: ``min(cap, floor·(1 + Lomax(α)))``
    — most jobs stay near ``scale_floor``, a heavy tail runs ``cap/floor``
    times longer.  α ≤ 1 (infinite mean) is allowed; the cap bounds it.
    """
    mean_gap = _positive("mean_gap", mean_gap)
    shape = _positive("shape", shape)
    scale_floor = _positive("scale_floor", scale_floor)
    if size_cap < scale_floor:
        raise WorkloadError(
            f"size_cap {size_cap!r} must be >= scale_floor {scale_floor!r}"
        )
    if start < 0:
        raise WorkloadError(f"negative start time {start!r}")
    pool = _checked_pool(pool)
    tenants = _checked_tenants(tenants)

    def gen():
        t = start
        for i in range(1, n_jobs + 1):
            t += rng.exponential(mean_gap)
            key = pool[int(rng.integers(0, len(pool)))]
            scale = min(size_cap, scale_floor * (1.0 + rng.pareto(shape)))
            yield _spec(rng, i, key, t, scale, tenants)

    return gen()


#: family name → stream builder ``(rng, n_jobs, **params) -> iterator``.
STREAM_FAMILIES = {
    "poisson": _poisson_stream,
    "diurnal": _diurnal_stream,
    "flash_crowd": _flash_crowd_stream,
    "pareto_mix": _pareto_mix_stream,
}


@dataclass(frozen=True)
class WorkloadStream:
    """A lazy, re-iterable, seeded workload.

    Holds a family name, a job count, a seed and frozen parameters —
    never the jobs themselves.  Each :meth:`__iter__` builds a fresh
    ``numpy`` generator from the seed and yields specs one at a time,
    so two iterations (or an iteration and a
    :meth:`materialize`) are bit-identical, and the manager can pull
    the next arrival on demand instead of holding a million-entry list.
    Frozen and tuple-parameterized, so streams pickle cleanly into
    batch :class:`~repro.experiments.batch.RunTask`\\ s.
    """

    family: str
    n_jobs: int
    seed: int
    params: tuple[tuple[str, object], ...] = field(default=())

    def __iter__(self) -> Iterator[WorkloadSpec]:
        builder = STREAM_FAMILIES[self.family]
        return builder(
            np.random.default_rng(self.seed), self.n_jobs, **dict(self.params)
        )

    def __len__(self) -> int:
        return self.n_jobs

    def materialize(self) -> list[WorkloadSpec]:
        """The eager form: exactly ``list(self)``."""
        return list(self)

    def describe(self) -> str:
        """Short label for reports, e.g. ``"diurnal-100000@7"``."""
        return f"{self.family}-{self.n_jobs}@{self.seed}"


def make_stream(
    family: str, *, n_jobs: int, seed: int = 0, **params
) -> WorkloadStream:
    """Build a validated lazy workload stream.

    Parameters are validated eagerly (a bad ``mean_gap`` raises here,
    not a million events into a run) by constructing one iterator and
    discarding it — families validate before their first yield.
    """
    if family not in STREAM_FAMILIES:
        raise WorkloadError(
            f"unknown stream family {family!r}; "
            f"choose from {sorted(STREAM_FAMILIES)}"
        )
    if n_jobs <= 0:
        raise WorkloadError(f"n_jobs must be positive, got {n_jobs!r}")
    stream = WorkloadStream(
        family=family,
        n_jobs=int(n_jobs),
        seed=int(seed),
        params=tuple(sorted(params.items())),
    )
    iter(stream)  # eager parameter validation
    return stream
