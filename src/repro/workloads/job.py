"""The training-job model.

A :class:`TrainingJob` is the analytic substitute for one real DL training
run.  Its life is measured in **work** (CPU-seconds delivered by the
allocator): after ``warmup_work`` CPU-seconds of framework start-up, the
evaluation function follows the job's convergence curve over the remaining
work, and the job finishes when ``total_work`` CPU-seconds have been
consumed — matching the paper's setup where each model trains a fixed
number of epochs and the container exits on completion.

Because progress is a deterministic function of delivered CPU-seconds, a
job that receives a larger share simply traverses the same curve faster —
exactly the property FlowCon exploits (convergence rate is "not linear
with the amount [of] computing resource", §1).
"""

from __future__ import annotations

from repro.containers.spec import ResourceSpec
from repro.errors import WorkloadError
from repro.workloads.curves import ConvergenceCurve
from repro.workloads.evalfn import EvalFunction

__all__ = ["TrainingJob"]


class TrainingJob:
    """One containerized DL training run.

    Parameters
    ----------
    name:
        Job label, e.g. ``"MNIST (Tensorflow)"``.
    total_work:
        CPU-seconds to completion (the job's size).  With a full node
        (allocation 1.0) and no contention this equals solo runtime.
    curve:
        Convergence curve mapping post-warm-up progress to ``E``.
    evalfn:
        The metric the curve's endpoints live on.
    footprint:
        Static resource footprint (demand ceiling, memory, I/O).
    warmup_work:
        CPU-seconds of framework start-up during which ``E`` stays at its
        initial value.
    total_iterations:
        Nominal iteration count, for per-iteration reporting.
    """

    def __init__(
        self,
        name: str,
        total_work: float,
        curve: ConvergenceCurve,
        evalfn: EvalFunction,
        footprint: ResourceSpec | None = None,
        warmup_work: float = 0.0,
        total_iterations: int = 10_000,
    ) -> None:
        if total_work <= 0:
            raise WorkloadError(f"total_work must be positive, got {total_work!r}")
        if warmup_work < 0 or warmup_work >= total_work:
            raise WorkloadError(
                f"warmup_work must lie in [0, total_work), got {warmup_work!r}"
            )
        if total_iterations <= 0:
            raise WorkloadError("total_iterations must be positive")
        self.name = name
        self.total_work = float(total_work)
        self.warmup_work = float(warmup_work)
        self.curve = curve
        self.evalfn = evalfn
        self._footprint = footprint if footprint is not None else ResourceSpec()
        self.total_iterations = int(total_iterations)
        self.work_done = 0.0

    # -- Workload protocol -----------------------------------------------------

    @property
    def footprint(self) -> ResourceSpec:
        """Static resource footprint."""
        return self._footprint

    @property
    def finished(self) -> bool:
        """Whether all work has been delivered."""
        return self.work_done >= self.total_work - 1e-9

    def remaining_work(self) -> float:
        """CPU-seconds left until completion."""
        return max(0.0, self.total_work - self.work_done)

    def advance(self, cpu_seconds: float) -> None:
        """Deliver *cpu_seconds* of compute to the job.

        Over-delivery beyond completion is clamped (the final scheduling
        interval rarely lands exactly on the finish instant).
        """
        if cpu_seconds < 0:
            raise WorkloadError(f"cannot advance by negative work {cpu_seconds!r}")
        self.work_done = min(self.total_work, self.work_done + cpu_seconds)

    def eval_value(self) -> float:
        """Current evaluation-function reading ``E``."""
        return float(self.curve.value(self.progress))

    # -- derived views -----------------------------------------------------------

    @property
    def progress(self) -> float:
        """Post-warm-up training progress in [0, 1]."""
        effective = self.work_done - self.warmup_work
        span = self.total_work - self.warmup_work
        return min(1.0, max(0.0, effective / span))

    @property
    def iteration(self) -> int:
        """Nominal current iteration index."""
        return int(round(self.progress * self.total_iterations))

    @property
    def in_warmup(self) -> bool:
        """Whether the job is still in framework start-up."""
        return self.work_done < self.warmup_work

    def improvement_fraction(self) -> float:
        """Fraction of the metric's total improvement achieved so far."""
        return float(self.curve.improvement_fraction(self.progress))

    def clone(self) -> "TrainingJob":
        """Fresh, unstarted copy of this job (same parameters)."""
        return TrainingJob(
            name=self.name,
            total_work=self.total_work,
            curve=self.curve,
            evalfn=self.evalfn,
            footprint=self._footprint,
            warmup_work=self.warmup_work,
            total_iterations=self.total_iterations,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrainingJob({self.name!r}, work={self.work_done:.1f}"
            f"/{self.total_work:.1f}, E={self.eval_value():.4g})"
        )
