"""Evaluation-function kinds (Table 1, column 2).

Each model in the paper's zoo reports progress through its own evaluation
function — reconstruction loss for the VAE, cross entropy for MNIST,
softmax accuracy for the LSTM-CFC and Bi-RNN, squared loss for the
LSTM-CRF, quadratic loss for the GRU.  FlowCon is metric-agnostic: Eq. 1
takes ``|ΔE|``, so only the *scale* and *direction* of a metric matter to
the dynamics.  :class:`EvalFunction` carries exactly those.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["EvalKind", "EvalDirection", "EvalFunction"]


class EvalDirection(enum.Enum):
    """Whether training drives the metric down (loss) or up (accuracy)."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class EvalKind(enum.Enum):
    """The evaluation-function families named in Table 1."""

    RECONSTRUCTION_LOSS = "reconstruction_loss"
    CROSS_ENTROPY = "cross_entropy"
    SOFTMAX_ACCURACY = "softmax"
    SQUARED_LOSS = "squared_loss"
    QUADRATIC_LOSS = "quadratic_loss"
    INCEPTION_SCORE = "inception_score"  # mentioned in §3.3 as an example

    @property
    def direction(self) -> EvalDirection:
        """Canonical optimization direction for the metric family."""
        if self in (EvalKind.SOFTMAX_ACCURACY, EvalKind.INCEPTION_SCORE):
            return EvalDirection.MAXIMIZE
        return EvalDirection.MINIMIZE


#: Typical (start, converged) values per kind, used as defaults when a
#: model profile does not override them.  The absolute numbers only set the
#: scale of G traces (cf. the 10× scale difference between Fig. 13 and
#: Fig. 14); the dynamics depend on the curve shape.
_DEFAULT_RANGE: dict[EvalKind, tuple[float, float]] = {
    EvalKind.RECONSTRUCTION_LOSS: (550.0, 100.0),
    EvalKind.CROSS_ENTROPY: (2.30, 0.08),
    EvalKind.SOFTMAX_ACCURACY: (0.10, 0.97),
    EvalKind.SQUARED_LOSS: (1.00, 0.04),
    EvalKind.QUADRATIC_LOSS: (0.90, 0.05),
    EvalKind.INCEPTION_SCORE: (1.00, 8.00),
}


@dataclass(frozen=True)
class EvalFunction:
    """A concrete evaluation function: kind + value range.

    Attributes
    ----------
    kind:
        Metric family.
    start:
        Value at initialization (progress 0).
    converged:
        Value at full convergence (progress 1).
    """

    kind: EvalKind
    start: float
    converged: float

    def __post_init__(self) -> None:
        if self.start == self.converged:
            raise ConfigError(
                "evaluation function must change over training "
                f"(start == converged == {self.start!r})"
            )
        direction = self.kind.direction
        if direction is EvalDirection.MINIMIZE and self.start < self.converged:
            raise ConfigError(
                f"{self.kind.value} is minimized but start {self.start!r} "
                f"< converged {self.converged!r}"
            )
        if direction is EvalDirection.MAXIMIZE and self.start > self.converged:
            raise ConfigError(
                f"{self.kind.value} is maximized but start {self.start!r} "
                f"> converged {self.converged!r}"
            )

    @classmethod
    def default(cls, kind: EvalKind) -> "EvalFunction":
        """Canonical instance for *kind* with typical value range."""
        start, converged = _DEFAULT_RANGE[kind]
        return cls(kind=kind, start=start, converged=converged)

    @property
    def direction(self) -> EvalDirection:
        """Optimization direction."""
        return self.kind.direction

    @property
    def total_change(self) -> float:
        """``|converged − start|`` — the scale of the progress signal."""
        return abs(self.converged - self.start)

    def normalized(self, value: float) -> float:
        """Map a raw metric value to improvement fraction in [0, 1]."""
        return abs(value - self.start) / self.total_change
