"""Command-line interface: regenerate any of the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro list                  # what can be reproduced
    python -m repro fig 12                # regenerate Figure 12
    python -m repro table 2              # regenerate Table 2
    python -m repro zoo                  # print the model zoo (Table 1)
    python -m repro compare --jobs 10 --alpha 0.1 --itval 20 --seed 42
    python -m repro sweep --alphas 0.01 0.05 0.1 --itvals 20 40

The CLI is a thin veneer over :mod:`repro.experiments.figures` /
:mod:`repro.experiments.tables`; anything it prints is available
programmatically from those modules.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from functools import partial

import numpy as np

from repro.analysis.compare import compare_runs
from repro.analysis.sweeps import sweep_grid
from repro.baselines.na import NAPolicy
from repro.cluster.admission import ADMISSIONS
from repro.cluster.autoscale import AUTOSCALERS
from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import REBALANCERS
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ConfigError, ExperimentError, UnknownPolicyError
from repro.experiments import figures as F
from repro.experiments import tables as T
from repro.experiments.report import (
    render_bars,
    render_header,
    render_sparkline,
    render_table,
)
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import fixed_three_job
from repro.workloads.generator import (
    STREAM_FAMILIES,
    WorkloadGenerator,
    make_stream,
)

__all__ = ["main"]


# ---------------------------------------------------------------------------
# figure printers (compact CLI variants of the bench renderers)
# ---------------------------------------------------------------------------


def _print_fig1() -> None:
    data = F.fig1_training_progress()
    print(render_header("Figure 1: training progress of five models"))
    for name, (t, v) in data.curves.items():
        print(f"{name:<36} |{render_sparkline(v, width=56, vmin=0, vmax=1)}|")


def _print_sweep(data, title: str) -> None:
    print(render_header(title))
    jobs = sorted(data.job_names)
    rows = [
        [cfg] + [round(data.completion[cfg][j], 1) for j in jobs]
        + [round(data.makespan[cfg], 1)]
        for cfg in data.completion
    ]
    print(render_table([data.parameter] + jobs + ["makespan"], rows))


def _print_scale(data, title: str) -> None:
    print(render_header(title))
    jobs = sorted(data.job_names, key=lambda s: int(s.split("-")[1]))
    for cfg, times in data.completion.items():
        print(f"\n[{cfg}] makespan {data.makespan[cfg]:.1f}s")
        print(render_bars(jobs, [times[j] for j in jobs]))
    for cfg in data.completion:
        if cfg != "NA":
            print(f"\n{cfg}: wins {data.wins(cfg)}/{len(jobs)} vs NA")


def _print_traces(data, title: str) -> None:
    print(render_header(title))
    for label in sorted(data.usage, key=lambda s: int(s.split("-")[1])):
        _, values = data.usage[label]
        print(f"{label:<8} |{render_sparkline(values, width=56, vmin=0, vmax=1)}|")
    print(f"mean jitter index: {np.mean(list(data.jitter.values())):.4f}")


def _print_growth(data, title: str) -> None:
    print(render_header(title))
    print(f"job {data.job_label} ({data.job_name})")
    for name, (t, v) in (("FlowCon", data.flowcon), ("NA", data.na)):
        if v.size:
            print(f"{name:<8} |{render_sparkline(v, width=56)}|")
    print(
        f"completion NA {data.na_completion:.1f}s → "
        f"FlowCon {data.flowcon_completion:.1f}s"
    )


_FIGURES = {
    1: ("training progress of five models", lambda seed: _print_fig1()),
    3: ("fixed 3-job, α=5%, itval sweep",
        lambda seed: _print_sweep(F.fig3_fixed_alpha5(seed), "Figure 3")),
    4: ("fixed 3-job, α=10%, itval sweep",
        lambda seed: _print_sweep(F.fig4_fixed_alpha10(seed), "Figure 4")),
    5: ("fixed 3-job, itval=20, α sweep",
        lambda seed: _print_sweep(F.fig5_fixed_itval20(seed), "Figure 5")),
    6: ("fixed 3-job, itval=30, α sweep",
        lambda seed: _print_sweep(F.fig6_fixed_itval30(seed), "Figure 6")),
    7: ("CPU trace, FlowCon, 3 jobs",
        lambda seed: _print_traces(F.fig7_cpu_flowcon_3job(seed), "Figure 7")),
    8: ("CPU trace, NA, 3 jobs",
        lambda seed: _print_traces(F.fig8_cpu_na_3job(seed), "Figure 8")),
    9: ("5 random jobs, four configs",
        lambda seed: _print_scale(F.fig9_random_five(seed), "Figure 9")),
    10: ("CPU trace, FlowCon, 5 jobs",
         lambda seed: _print_traces(F.fig10_cpu_flowcon_5job(seed), "Figure 10")),
    11: ("CPU trace, NA, 5 jobs",
         lambda seed: _print_traces(F.fig11_cpu_na_5job(seed), "Figure 11")),
    12: ("10 random jobs, FlowCon-10%-20 vs NA",
         lambda seed: _print_scale(F.fig12_ten_jobs(seed), "Figure 12")),
    13: ("growth efficiency, worst-delta job",
         lambda seed: _print_growth(F.fig13_growth_comparison(seed), "Figure 13")),
    14: ("growth efficiency, best-delta job",
         lambda seed: _print_growth(F.fig14_growth_comparison(seed), "Figure 14")),
    15: ("CPU trace, FlowCon, 10 jobs",
         lambda seed: _print_traces(F.fig15_cpu_flowcon_10job(seed), "Figure 15")),
    16: ("CPU trace, NA, 10 jobs",
         lambda seed: _print_traces(F.fig16_cpu_na_10job(seed), "Figure 16")),
    17: ("15 random jobs, FlowCon-10%-40 vs NA",
         lambda seed: _print_scale(F.fig17_fifteen_jobs(seed), "Figure 17")),
}


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_list(_args) -> int:
    print(render_header("Reproducible experiments"))
    for n, (desc, _) in sorted(_FIGURES.items()):
        print(f"  fig {n:<3} {desc}")
    print("  table 1  tested model zoo")
    print("  table 2  MNIST-TF completion-time reductions")
    print("\nAlso: `compare`, `sweep`, `zoo` — see --help of each.")
    return 0


def _cmd_fig(args) -> int:
    entry = _FIGURES.get(args.number)
    if entry is None:
        raise ExperimentError(
            f"no figure {args.number}; choose from {sorted(_FIGURES)}"
        )
    entry[1](args.seed)
    return 0


def _cmd_table(args) -> int:
    if args.number == 1:
        rows = T.table1_model_zoo()
        print(render_header("Table 1: tested deep learning models"))
        print(render_table(
            ["Model", "Eval. Function", "Plat.", "work", "demand"],
            [[r.model, r.eval_function, r.platform, r.base_work, r.cpu_demand]
             for r in rows],
        ))
    elif args.number == 2:
        table = T.table2_mnist_reduction(args.seed)
        print(render_header("Table 2: MNIST (Tensorflow) reduction vs NA"))
        print(render_table(
            ["α=10%, itval", "reduction %"],
            [[k, round(v, 1)] for k, v in table.by_itval.items()],
        ))
        print()
        print(render_table(
            ["α, itval=20", "reduction %"],
            [[k, round(v, 1)] for k, v in table.by_alpha.items()],
        ))
    else:
        raise ExperimentError("tables are 1 or 2")
    return 0


def _cmd_zoo(_args) -> int:
    return _cmd_table(argparse.Namespace(number=1, seed=1))


def _parse_tenant_weights(pairs: list[str]) -> dict[str, float]:
    """Parse ``NAME=WEIGHT`` pairs from ``--tenant-weights``."""
    weights: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        try:
            weight = float(value)
        except ValueError:
            weight = 0.0
        if not sep or not name or weight <= 0:
            raise ExperimentError(
                f"bad tenant weight {pair!r}; expected NAME=POSITIVE_WEIGHT"
            )
        weights[name] = weight
    return weights


def _assign_tenants(specs, weights: dict[str, float]):
    """Spread jobs round-robin over the named tenants, arrival order."""
    from dataclasses import replace

    names = sorted(weights)
    if len(names) > len(specs):
        raise ExperimentError(
            f"{len(names)} tenants for {len(specs)} jobs; every tenant "
            f"named in --tenant-weights needs at least one job"
        )
    return [
        replace(spec, tenant=names[i % len(names)], weight=weights[names[i % len(names)]])
        for i, spec in enumerate(specs)
    ]


def _cmd_compare(args) -> int:
    if args.workload != "random":
        tenants = None
        if args.tenant_weights:
            weights = _parse_tenant_weights(args.tenant_weights)
            tenants = tuple(
                (name, 1.0, weights[name]) for name in sorted(weights)
            )
        params = {} if tenants is None else {"tenants": tenants}
        specs = make_stream(
            args.workload, n_jobs=args.jobs, seed=args.seed, **params
        )
    elif args.jobs == 3:
        specs = fixed_three_job()
    else:
        gen = WorkloadGenerator(np.random.default_rng(args.seed))
        specs = gen.random_mix(args.jobs)
    if args.tenant_weights and args.workload == "random":
        specs = _assign_tenants(
            specs, _parse_tenant_weights(args.tenant_weights)
        )
    sim_cfg = SimulationConfig(
        seed=args.seed, trace=False,
        streaming_metrics=args.streaming_metrics,
        fleet_mode=args.fleet_mode,
        shards=args.shards,
    )
    fc_cfg = FlowConConfig(alpha=args.alpha, itval=args.itval)
    cluster = dict(
        n_workers=args.workers,
        placement=args.placement,
        rebalance=args.rebalance,
        admission=args.admission,
        autoscale=args.autoscale,
        failures=args.failures,
        fabric=args.fabric,
        max_containers=args.slots,
    )
    na = run_cluster(specs, NAPolicy, sim_cfg, **cluster)
    fc = run_cluster(specs, partial(FlowConPolicy, fc_cfg), sim_cfg, **cluster)
    if args.streaming_metrics:
        return _print_streaming_compare(args, fc_cfg, na, fc)
    report = compare_runs(na.summary, fc.summary,
                          treatment_name=fc_cfg.describe())
    where = (
        f"{args.workers} workers ({args.placement}, "
        f"rebalance {args.rebalance}, admission {args.admission}, "
        f"autoscale {args.autoscale})"
        if args.workers > 1
        else f"seed {args.seed}"
    )
    print(render_header(
        f"{fc_cfg.describe()} vs NA on {args.jobs} jobs ({where})"
    ))
    rows = [
        [label, na.completion_times()[label], fc.completion_times()[label],
         f"{report.reductions[label]:+.1f}%"]
        for label in sorted(report.reductions,
                            key=lambda s: int(s.split("-")[1]))
    ]
    rows.append(["makespan", na.makespan, fc.makespan,
                 f"{report.makespan_reduction:+.2f}%"])
    print(render_table(["job", "NA (s)", "FlowCon (s)", "Δ"], rows))
    print(f"\nwins {report.wins}/{report.n_jobs}; "
          f"best {report.best[0]} {report.best[1]:+.1f}%; "
          f"worst {report.worst[0]} {report.worst[1]:+.1f}%")
    if args.tenant_weights:
        print()
        for tenant in sorted(_parse_tenant_weights(args.tenant_weights)):
            print(
                f"tenant {tenant}: p95 queue delay "
                f"NA {na.summary.p95_queue_delay(tenant):.1f}s, "
                f"FlowCon {fc.summary.p95_queue_delay(tenant):.1f}s"
            )
    if args.autoscale != "none":
        print(
            f"fleet: peak {na.summary.peak_fleet()} workers (NA), "
            f"{fc.summary.peak_fleet()} (FlowCon); "
            f"{na.summary.fleet_changes()} scale events (NA)"
        )
    if args.failures != "none":
        print(
            f"failures: {na.summary.total_retries()} crash-restarts / "
            f"{len(na.summary.failed_jobs)} exhausted (NA), "
            f"{fc.summary.total_retries()} / "
            f"{len(fc.summary.failed_jobs)} (FlowCon)"
        )
    if args.fabric != "ideal":
        print(
            f"fabric: {na.summary.message_retries():.0f} resends / "
            f"{na.summary.messages_dropped():.0f} drops (NA), "
            f"{fc.summary.message_retries():.0f} / "
            f"{fc.summary.messages_dropped():.0f} (FlowCon)"
        )
    return 0


def _print_streaming_compare(args, fc_cfg, na, fc) -> int:
    """Aggregate report for ``--streaming-metrics`` compare runs.

    Streaming mode deliberately never keeps per-job records, so the
    per-job Δ table is unavailable; everything here comes from the
    bounded-memory sketch aggregates.
    """
    print(render_header(
        f"{fc_cfg.describe()} vs NA — {args.jobs} jobs, streaming "
        f"aggregates (±{na.summary.stream.rank_error_bound():.3%} rank error)"
    ))
    rows = []
    for metric, getter in [
        ("completed jobs", lambda s: s.n_completed),
        ("makespan (s)", lambda s: round(s.makespan, 2)),
        ("mean queue delay (s)", lambda s: round(s.mean_queue_delay(), 2)),
        ("p50 queue delay (s)",
         lambda s: round(s.quantile_queue_delay(0.50), 2)),
        ("p95 queue delay (s)",
         lambda s: round(s.quantile_queue_delay(0.95), 2)),
        ("p99 queue delay (s)",
         lambda s: round(s.quantile_queue_delay(0.99), 2)),
        ("rolling throughput (jobs/s)",
         lambda s: round(s.slo_report()["rolling_throughput"], 3)),
        ("peak throughput (jobs/s)",
         lambda s: round(s.slo_report()["peak_throughput"], 3)),
    ]:
        rows.append([metric, getter(na.summary), getter(fc.summary)])
    print(render_table(["metric", "NA", "FlowCon"], rows))
    if args.tenant_weights:
        print()
        for tenant in sorted(_parse_tenant_weights(args.tenant_weights)):
            print(
                f"tenant {tenant}: p95 queue delay "
                f"NA {na.summary.p95_queue_delay(tenant):.1f}s, "
                f"FlowCon {fc.summary.p95_queue_delay(tenant):.1f}s"
            )
    if args.failures != "none":
        print(
            f"failures: {na.summary.total_retries()} crash-restarts / "
            f"{len(na.summary.failed_jobs)} exhausted (NA), "
            f"{fc.summary.total_retries()} / "
            f"{len(fc.summary.failed_jobs)} (FlowCon)"
        )
    if args.fabric != "ideal":
        print(
            f"fabric: {na.summary.message_retries():.0f} resends / "
            f"{na.summary.messages_dropped():.0f} drops (NA), "
            f"{fc.summary.message_retries():.0f} / "
            f"{fc.summary.messages_dropped():.0f} (FlowCon)"
        )
    return 0


def _cmd_sweep(args) -> int:
    grid = sweep_grid(
        fixed_three_job(),
        alphas=args.alphas,
        itvals=args.itvals,
        sim_config=SimulationConfig(
            seed=args.seed, trace=False,
            fleet_mode=args.fleet_mode, shards=args.shards,
        ),
        n_workers=args.workers,
        placement=args.placement,
        rebalance=args.rebalance,
        admission=args.admission,
        autoscale=args.autoscale,
        failures=args.failures,
        fabric=args.fabric,
        max_containers=args.slots,
    )
    suffix = (
        f" — {args.workers} workers ({args.placement}, "
        f"rebalance {args.rebalance})"
        if args.workers > 1
        else ""
    )
    print(render_header(f"FlowCon (alpha x itval) sweep — fixed 3-job{suffix}"))
    rows = []
    for alpha in args.alphas:
        row = [f"α={alpha:.0%}"]
        for itval in args.itvals:
            cell = grid.cell(alpha, itval)
            row.append(round(cell.report.reductions["Job-3"], 1))
        rows.append(row)
    print(render_table(
        ["MNIST-TF Δ%"] + [f"itval={iv:g}" for iv in args.itvals], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlowCon (ICPP 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    p_fig = sub.add_parser("fig", help="regenerate a figure")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--seed", type=int, default=None)

    p_table = sub.add_parser("table", help="regenerate a table")
    p_table.add_argument("number", type=int)
    p_table.add_argument("--seed", type=int, default=1)

    sub.add_parser("zoo", help="print the model zoo")

    p_cmp = sub.add_parser("compare", help="FlowCon vs NA on a workload")
    p_cmp.add_argument("--jobs", type=int, default=10)
    p_cmp.add_argument("--alpha", type=float, default=0.10)
    p_cmp.add_argument("--itval", type=float, default=20.0)
    p_cmp.add_argument("--seed", type=int, default=42)
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="simulated cluster size")
    p_cmp.add_argument("--placement", choices=sorted(PLACEMENTS),
                       default="spread", help="container placement policy")
    p_cmp.add_argument("--rebalance", choices=sorted(REBALANCERS),
                       default="none", help="container rebalance policy")
    p_cmp.add_argument("--slots", type=int, default=None,
                       help="admission slots per worker (default unbounded; "
                            "a bound makes --admission/--autoscale matter)")
    p_cmp.add_argument("--admission", choices=sorted(ADMISSIONS),
                       default="fifo",
                       help="admission-queue drain policy (who waits least "
                            "when the cluster is full)")
    p_cmp.add_argument("--autoscale", choices=sorted(AUTOSCALERS),
                       default="none",
                       help="worker-fleet autoscaling from queue "
                            "depth/backlog signals")
    p_cmp.add_argument("--failures", default="none", metavar="SPEC",
                       help="failure-injector spec, optionally with a "
                            "durability suffix (e.g. none, random, "
                            "rolling:checkpoint(60))")
    p_cmp.add_argument("--fabric", default="ideal", metavar="SPEC",
                       help="control-plane fabric spec, optionally with a "
                            "retry suffix (e.g. ideal, drop(0.05), "
                            "\"partition(30..90):retry(max=5,base=0.5)\")")
    p_cmp.add_argument("--tenant-weights", nargs="+", metavar="NAME=W",
                       default=None,
                       help="assign jobs round-robin to weighted tenants "
                            "(e.g. interactive=4 batch=1); pair with "
                            "--admission wfq for weighted fair queueing")
    p_cmp.add_argument("--workload",
                       choices=["random"] + sorted(STREAM_FAMILIES),
                       default="random",
                       help="workload source: 'random' draws an eager "
                            "random mix; any other choice builds a lazy "
                            "arrival stream from the generator family "
                            "(diurnal, flash_crowd, pareto_mix, poisson)")
    p_cmp.add_argument("--fleet-mode", action="store_true",
                       help="fuse same-instant sampling ticks into one "
                            "packed fleet pass (bit-identical; required "
                            "by --shards > 1)")
    p_cmp.add_argument("--shards", type=int, default=1, metavar="N",
                       help="worker-shard count for single-run parallel "
                            "execution between manager touchpoints "
                            "(bit-identical; N > 1 requires --fleet-mode)")
    p_cmp.add_argument("--streaming-metrics", action="store_true",
                       help="record sketch-based bounded-memory aggregates "
                            "(p50/p95/p99, rolling throughput) instead of "
                            "per-job records; memory stays O(1) per "
                            "container regardless of --jobs")
    p_cmp.add_argument("--profile", action="store_true",
                       help="run under cProfile and dump the top 25 "
                            "cumulative-time functions to stderr")

    p_sweep = sub.add_parser("sweep", help="alpha x itval grid")
    p_sweep.add_argument("--alphas", type=float, nargs="+",
                         default=[0.01, 0.05, 0.10])
    p_sweep.add_argument("--itvals", type=float, nargs="+",
                         default=[20.0, 40.0])
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="simulated cluster size")
    p_sweep.add_argument("--placement", choices=sorted(PLACEMENTS),
                         default="spread", help="container placement policy")
    p_sweep.add_argument("--rebalance", choices=sorted(REBALANCERS),
                         default="none", help="container rebalance policy")
    p_sweep.add_argument("--slots", type=int, default=None,
                         help="admission slots per worker (default "
                              "unbounded; a bound makes "
                              "--admission/--autoscale matter)")
    p_sweep.add_argument("--admission", choices=sorted(ADMISSIONS),
                         default="fifo",
                         help="admission-queue drain policy")
    p_sweep.add_argument("--autoscale", choices=sorted(AUTOSCALERS),
                         default="none",
                         help="worker-fleet autoscaling policy")
    p_sweep.add_argument("--failures", default="none", metavar="SPEC",
                         help="failure-injector spec (e.g. none, random, "
                              "rolling:checkpoint(60))")
    p_sweep.add_argument("--fabric", default="ideal", metavar="SPEC",
                         help="control-plane fabric spec (e.g. ideal, "
                              "\"partition(30..90):retry(max=5,base=0.5)\")")
    p_sweep.add_argument("--fleet-mode", action="store_true",
                         help="fuse same-instant sampling ticks into one "
                              "packed fleet pass (bit-identical; required "
                              "by --shards > 1)")
    p_sweep.add_argument("--shards", type=int, default=1, metavar="N",
                         help="worker-shard count for single-run parallel "
                              "execution (bit-identical; N > 1 requires "
                              "--fleet-mode)")
    p_sweep.add_argument("--profile", action="store_true",
                         help="run under cProfile and dump the top 25 "
                              "cumulative-time functions to stderr")

    sub.add_parser(
        "validate",
        help="re-check every EXPERIMENTS.md shape claim",
    )

    p_rep = sub.add_parser(
        "bench-report",
        help="render the BENCH_*.json trajectory as one "
             "throughput-over-PRs table",
    )
    p_rep.add_argument("--dir", default="benchmarks",
                       help="directory holding BENCH_*.json snapshots "
                            "(default: benchmarks)")
    p_rep.add_argument("--filter", default=None, metavar="SUBSTR",
                       help="keep only benchmarks whose name contains "
                            "SUBSTR (case-insensitive), e.g. perf")
    p_rep.add_argument("--last", type=int, default=None, metavar="N",
                       help="keep only the newest N snapshots")

    return parser


def _cmd_validate(_args) -> int:
    from repro.experiments.validate import validate_reproduction

    checks = validate_reproduction()
    print(render_header("Reproduction scorecard (EXPERIMENTS.md in code)"))
    print(render_table(
        ["exp", "claim", "status", "detail"],
        [
            [c.exp, c.claim, "PASS" if c.passed else "FAIL", c.detail]
            for c in checks
        ],
    ))
    failed = [c for c in checks if not c.passed]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} checks passed")
    return 1 if failed else 0


def _cmd_bench_report(args) -> int:
    from repro.experiments.benchreport import load_trajectory, trajectory_table

    points = load_trajectory(args.dir)
    headers, rows = trajectory_table(
        points, pattern=args.filter, last=args.last
    )
    shown = len(headers) - 1
    print(render_header(
        f"Benchmark trajectory — {shown} snapshot"
        f"{'s' if shown != 1 else ''}, mean throughput (runs/s)"
    ))
    print(render_table(headers, rows))
    print(f"\n{len(rows)} benchmark(s); newest snapshot last; "
          f"— means the benchmark did not run in that snapshot")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "fig": _cmd_fig,
    "table": _cmd_table,
    "zoo": _cmd_zoo,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "validate": _cmd_validate,
    "bench-report": _cmd_bench_report,
}


def _run_profiled(handler, args) -> int:
    """Run a command under cProfile, top 25 by cumulative time to stderr.

    The report goes to stderr so the command's own stdout (tables,
    sparklines) stays clean for pipelines; profiling overhead is real,
    so the flag is for hot-path observability, not for timing claims.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return handler(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "seed", None) is None and args.command == "fig":
        # Figure-specific default seeds match the benches.
        args.seed = 1 if args.number in (3, 4, 5, 6, 7, 8) else 42
    try:
        handler = _COMMANDS[args.command]
        if getattr(args, "profile", False):
            return _run_profiled(handler, args)
        return handler(args)
    except (ExperimentError, ConfigError, UnknownPolicyError) as exc:
        # UnknownPolicyError covers free-form specs like --failures,
        # which argparse choices= cannot validate upfront.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
