"""Parameter-grid sweeps over scenarios.

Generalizes the paper's Figs. 3–6 to arbitrary (α, itval) grids and
workloads; the ablation benches use it to map where FlowCon's advantage
comes from.  Cells are independent runs, so the grid executes through
the :mod:`~repro.experiments.batch` runner and parallelizes across
processes with ``workers=N`` — results are identical at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.analysis.compare import ComparisonReport, compare_runs
from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.batch import run_many
from repro.workloads.generator import WorkloadSpec

__all__ = ["SweepCell", "SweepGrid", "sweep_grid"]


@dataclass(frozen=True)
class SweepCell:
    """One (α, itval) grid point's comparison against NA."""

    alpha: float
    itval: float
    report: ComparisonReport


@dataclass
class SweepGrid:
    """All cells of one sweep plus the shared NA reference."""

    cells: list[SweepCell]

    def cell(self, alpha: float, itval: float) -> SweepCell:
        """Look up one grid point."""
        for c in self.cells:
            if abs(c.alpha - alpha) < 1e-12 and abs(c.itval - itval) < 1e-9:
                return c
        raise ExperimentError(f"no sweep cell for alpha={alpha}, itval={itval}")

    def best_cell(self, job_label: str) -> SweepCell:
        """Grid point with the largest reduction for one job."""
        return max(
            self.cells, key=lambda c: c.report.reductions.get(job_label, -1e9)
        )

    def makespan_range(self) -> tuple[float, float]:
        """(min, max) makespan reduction % across the grid."""
        values = [c.report.makespan_reduction for c in self.cells]
        return (min(values), max(values))


def sweep_grid(
    specs: list[WorkloadSpec],
    alphas: list[float],
    itvals: list[float],
    *,
    sim_config: SimulationConfig | None = None,
    base_config: FlowConConfig | None = None,
    workers: int = 1,
    n_workers: int = 1,
    placement: str = "spread",
    rebalance: str | None = None,
    admission: str | None = None,
    autoscale: str | None = None,
    failures: str | None = None,
    fabric: str | None = None,
    max_containers: int | None = None,
) -> SweepGrid:
    """Run FlowCon over an (α × itval) grid against one shared NA run.

    Parameters
    ----------
    specs:
        The workload, reused identically for every cell.
    alphas / itvals:
        Grid axes.
    sim_config:
        Substrate parameters shared by every run.
    base_config:
        Template FlowCon config whose other fields (β, back-off,
        listeners) apply to every cell — the ablation hook.
    workers:
        Process count for the batch runner; cells (and the NA reference)
        are independent runs, so ``workers=N`` executes the grid N-wide
        with identical results.
    n_workers / placement / rebalance / admission / autoscale /
    failures / fabric / max_containers:
        Simulated cluster shape shared by every cell (and the NA
        reference), forwarded to the unified runner.  Admission and
        autoscale policies only act when ``max_containers`` bounds the
        workers — unbounded clusters never queue.
    """
    if not alphas or not itvals:
        raise ExperimentError("sweep needs non-empty alpha and itval axes")
    cfg = sim_config if sim_config is not None else SimulationConfig(trace=False)
    template = base_config if base_config is not None else FlowConConfig()

    grid_cfgs = [
        template.with_params(alpha=alpha, itval=itval)
        for alpha in alphas
        for itval in itvals
    ]
    factories = [NAPolicy] + [
        partial(FlowConPolicy, fc_cfg) for fc_cfg in grid_cfgs
    ]
    records = run_many(
        [specs] * len(factories),
        factories,
        cfg,
        workers=workers,
        labels=["NA"] + [fc_cfg.describe() for fc_cfg in grid_cfgs],
        n_workers=n_workers,
        placement=placement,
        rebalance=rebalance,
        admission=admission,
        autoscale=autoscale,
        failures=failures,
        fabric=fabric,
        max_containers=max_containers,
    )
    na_summary = records[0].summary()
    cells = [
        SweepCell(
            alpha=fc_cfg.alpha,
            itval=fc_cfg.itval,
            report=compare_runs(
                na_summary,
                record.summary(),
                treatment_name=fc_cfg.describe(),
            ),
        )
        for fc_cfg, record in zip(grid_cfgs, records[1:])
    ]
    return SweepGrid(cells=cells)
