"""Cross-run analysis: comparisons and parameter sweeps.

* :mod:`~repro.analysis.compare` — FlowCon-vs-baseline deltas, win/loss
  accounting, the quantities quoted in the paper's prose.
* :mod:`~repro.analysis.sweeps` — α × itval grids over arbitrary
  scenarios (the generalization of Figs. 3–6 used by the ablation
  benches).
"""

from repro.analysis.compare import ComparisonReport, compare_runs
from repro.analysis.listdynamics import dwell_times, list_timeline
from repro.analysis.overhead import OverheadSample, overhead_study
from repro.analysis.robustness import SeedStudyResult, seed_study
from repro.analysis.sweeps import SweepCell, SweepGrid, sweep_grid

__all__ = [
    "ComparisonReport",
    "OverheadSample",
    "SeedStudyResult",
    "SweepCell",
    "SweepGrid",
    "compare_runs",
    "dwell_times",
    "list_timeline",
    "overhead_study",
    "seed_study",
    "sweep_grid",
]
