"""FlowCon-vs-baseline comparison reports.

Produces the quantities the paper quotes in prose: per-job completion
reductions, win/loss counts, the largest win/loss, and the makespan delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetricsError
from repro.metrics.summary import RunSummary, reduction_pct

__all__ = ["ComparisonReport", "compare_runs"]


@dataclass(frozen=True)
class ComparisonReport:
    """Summary of one treatment-vs-baseline comparison."""

    baseline_name: str
    treatment_name: str
    #: Per-job completion-time reduction (% of baseline; positive = win).
    reductions: dict[str, float]
    makespan_baseline: float
    makespan_treatment: float

    @property
    def wins(self) -> int:
        """Jobs faster under the treatment."""
        return sum(1 for r in self.reductions.values() if r > 0)

    @property
    def losses(self) -> int:
        """Jobs slower under the treatment."""
        return sum(1 for r in self.reductions.values() if r < 0)

    @property
    def n_jobs(self) -> int:
        """Total jobs compared."""
        return len(self.reductions)

    @property
    def best(self) -> tuple[str, float]:
        """``(job, reduction%)`` of the largest improvement."""
        label = max(self.reductions, key=self.reductions.get)
        return label, self.reductions[label]

    @property
    def worst(self) -> tuple[str, float]:
        """``(job, reduction%)`` of the largest regression."""
        label = min(self.reductions, key=self.reductions.get)
        return label, self.reductions[label]

    @property
    def makespan_reduction(self) -> float:
        """Makespan reduction % (positive = treatment faster overall)."""
        return reduction_pct(self.makespan_baseline, self.makespan_treatment)

    def mean_reduction(self) -> float:
        """Unweighted mean per-job reduction."""
        return sum(self.reductions.values()) / len(self.reductions)


def compare_runs(
    baseline: RunSummary,
    treatment: RunSummary,
    *,
    baseline_name: str = "NA",
    treatment_name: str = "FlowCon",
) -> ComparisonReport:
    """Compare two runs of the *same* workload under different policies."""
    base = baseline.completion_times()
    treat = treatment.completion_times()
    if set(base) != set(treat):
        raise MetricsError(
            "runs cover different job sets: "
            f"{sorted(set(base) ^ set(treat))}"
        )
    reductions = {
        label: reduction_pct(base[label], treat[label]) for label in base
    }
    return ComparisonReport(
        baseline_name=baseline_name,
        treatment_name=treatment_name,
        reductions=reductions,
        makespan_baseline=baseline.makespan,
        makespan_treatment=treatment.makespan,
    )
