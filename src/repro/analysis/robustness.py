"""Seed-robustness studies.

The paper reports single runs on a small testbed; a natural question for
a reproduction is whether the headline shapes (win counts, makespan
parity) hold across random universes or were one lucky draw.
:func:`seed_study` re-runs a scenario family over many seeds and
aggregates win-rate and makespan-delta distributions.  The per-seed
FlowCon/NA pairs are independent simulations, so the study executes
through the :mod:`~repro.experiments.batch` runner and parallelizes
with ``workers=N`` (identical aggregates at any worker count).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.analysis.compare import compare_runs
from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.batch import run_many
from repro.workloads.generator import WorkloadSpec

__all__ = ["SeedStudyResult", "seed_study"]


@dataclass
class SeedStudyResult:
    """Aggregates of one multi-seed study."""

    seeds: list[int]
    #: Fraction of jobs faster under FlowCon, per seed.
    win_rates: np.ndarray
    #: Makespan reduction % vs NA, per seed.
    makespan_reductions: np.ndarray
    #: Best per-job reduction % per seed.
    best_wins: np.ndarray
    #: Worst per-job reduction % per seed (negative = loss).
    worst_losses: np.ndarray

    @property
    def n(self) -> int:
        """Number of seeds."""
        return len(self.seeds)

    def summary(self) -> dict[str, float]:
        """Headline aggregates."""
        return {
            "mean_win_rate": float(self.win_rates.mean()),
            "min_win_rate": float(self.win_rates.min()),
            "mean_makespan_reduction": float(self.makespan_reductions.mean()),
            "worst_makespan_reduction": float(self.makespan_reductions.min()),
            "mean_best_win": float(self.best_wins.mean()),
            "worst_loss": float(self.worst_losses.min()),
        }


def seed_study(
    scenario: Callable[[int], list[WorkloadSpec]],
    *,
    seeds: list[int] | None = None,
    flowcon: FlowConConfig | None = None,
    sim_template: SimulationConfig | None = None,
    workers: int = 1,
    n_workers: int = 1,
    placement: str = "spread",
) -> SeedStudyResult:
    """Run ``FlowCon vs NA`` over many seeds of one scenario family.

    Parameters
    ----------
    scenario:
        Seed → workload specs builder (e.g.
        :func:`repro.experiments.scenarios.random_ten_job`).
    seeds:
        Seeds to sweep (default 0…9).
    flowcon:
        FlowCon parameters (default: the paper's 10-job setting).
    sim_template:
        Substrate parameters; the seed field is overridden per run.
    workers:
        Process count for the batch runner; the 2×len(seeds) runs are
        independent, so the study scales across processes with
        identical aggregates.
    n_workers / placement:
        Simulated cluster shape shared by every run (both the NA and
        FlowCon arms), forwarded to the unified runner.
    """
    if seeds is None:
        seeds = list(range(10))
    if not seeds:
        raise ExperimentError("seed_study needs at least one seed")
    fc_cfg = flowcon if flowcon is not None else FlowConConfig(
        alpha=0.10, itval=20.0
    )
    template = sim_template if sim_template is not None else SimulationConfig(
        trace=False
    )

    # Interleaved NA/FlowCon pairs, one pair per seed, one flat batch.
    specs_list, factories, run_seeds = [], [], []
    for seed in seeds:
        specs = scenario(seed)
        specs_list.extend([specs, specs])
        factories.extend([NAPolicy, partial(FlowConPolicy, fc_cfg)])
        run_seeds.extend([seed, seed])
    records = run_many(
        specs_list,
        factories,
        template,
        workers=workers,
        seeds=run_seeds,
        n_workers=n_workers,
        placement=placement,
    )

    win_rates, makespans, bests, worsts = [], [], [], []
    for i in range(len(seeds)):
        na, fc = records[2 * i], records[2 * i + 1]
        report = compare_runs(na.summary(), fc.summary())
        win_rates.append(report.wins / report.n_jobs)
        makespans.append(report.makespan_reduction)
        bests.append(report.best[1])
        worsts.append(report.worst[1])

    return SeedStudyResult(
        seeds=list(seeds),
        win_rates=np.asarray(win_rates),
        makespan_reductions=np.asarray(makespans),
        best_wins=np.asarray(bests),
        worst_losses=np.asarray(worsts),
    )
