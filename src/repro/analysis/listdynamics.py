"""NL/WL/CL occupancy over time.

Algorithm 1's behaviour is easiest to understand as the flow of
containers through the three lists.  :func:`list_timeline` reconstructs
per-list occupancy step series from the transition journal a
:class:`~repro.core.lists.ContainerLists` keeps, and
:func:`dwell_times` aggregates how long containers spend in each list —
the quantity that explains who gets throttled for how much of their
life (EXPERIMENTS.md note N3).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.lists import ContainerLists, ListName
from repro.errors import ExperimentError
from repro.metrics.timeseries import StepSeries

__all__ = ["list_timeline", "dwell_times"]


def list_timeline(lists: ContainerLists) -> dict[ListName, StepSeries]:
    """Occupancy count of each list over time.

    Built by replaying the transition journal; the returned series step
    at every transition instant.
    """
    series = {name: StepSeries(name.value) for name in ListName}
    counts = {name: 0 for name in ListName}
    if not lists.transitions:
        raise ExperimentError("no list transitions recorded")
    t0 = lists.transitions[0].time
    for name in ListName:
        series[name].append(t0, 0.0)
    for tr in lists.transitions:
        if tr.source is not None:
            counts[tr.source] -= 1
            series[tr.source].append(tr.time, counts[tr.source])
        if tr.target is not None:
            counts[tr.target] += 1
            series[tr.target].append(tr.time, counts[tr.target])
    return series


def dwell_times(
    lists: ContainerLists,
    *,
    end_time: float | None = None,
) -> dict[ListName, dict[int, float]]:
    """Seconds each container spent in each list.

    Parameters
    ----------
    lists:
        The list state whose journal to analyze.
    end_time:
        Horizon for containers still in a list at the end of the journal
        (default: the last transition time).
    """
    if not lists.transitions:
        raise ExperimentError("no list transitions recorded")
    horizon = (
        end_time if end_time is not None else lists.transitions[-1].time
    )
    entered: dict[int, tuple[ListName, float]] = {}
    dwell: dict[ListName, dict[int, float]] = {
        name: defaultdict(float) for name in ListName
    }
    for tr in lists.transitions:
        if tr.source is not None and tr.cid in entered:
            name, since = entered.pop(tr.cid)
            dwell[name][tr.cid] += max(0.0, tr.time - since)
        if tr.target is not None:
            entered[tr.cid] = (tr.target, tr.time)
    for cid, (name, since) in entered.items():
        dwell[name][cid] += max(0.0, horizon - since)
    return {name: dict(per_cid) for name, per_cid in dwell.items()}
