"""Scheduling-overhead accounting.

The paper's §5 Remark ties FlowCon's overhead to the frequency of
Algorithm 1 ("itval ... is proportional to the overhead including (1) the
algorithm resource usage and (2) the delay for reducing the resources of
active jobs").  :func:`overhead_study` quantifies both: how often the
algorithm runs and how many ``docker update`` calls it issues, across
itval settings and with/without the back-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.runner import run_scenario
from repro.workloads.generator import WorkloadSpec

__all__ = ["OverheadSample", "overhead_study"]


@dataclass(frozen=True)
class OverheadSample:
    """Overhead counters of one FlowCon run."""

    itval: float
    backoff_enabled: bool
    algorithm_runs: int
    listener_interrupts: int
    backoffs: int
    limit_updates: int
    makespan: float

    @property
    def runs_per_100s(self) -> float:
        """Algorithm 1 execution rate, normalized by makespan."""
        return self.algorithm_runs / self.makespan * 100.0


def overhead_study(
    specs: list[WorkloadSpec],
    *,
    itvals: list[float] | None = None,
    sim_config: SimulationConfig | None = None,
    alpha: float = 0.05,
) -> list[OverheadSample]:
    """Measure scheduling overhead across intervals and back-off settings."""
    if itvals is None:
        itvals = [10.0, 20.0, 40.0, 60.0]
    if not itvals:
        raise ExperimentError("overhead_study needs at least one itval")
    cfg = sim_config if sim_config is not None else SimulationConfig(trace=False)

    samples: list[OverheadSample] = []
    for itval in itvals:
        for backoff in (True, False):
            policy = FlowConPolicy(
                FlowConConfig(alpha=alpha, itval=itval,
                              backoff_enabled=backoff)
            )
            result = run_scenario(specs, policy, cfg)
            executor = policy.executor
            updates = sum(
                len(t.cpu_limit.arrays()[0]) - 1
                for t in result.recorder.traces.values()
                if not t.cpu_limit.empty
            )
            samples.append(
                OverheadSample(
                    itval=itval,
                    backoff_enabled=backoff,
                    algorithm_runs=executor.runs,
                    listener_interrupts=executor.interrupts,
                    backoffs=executor.backoffs,
                    limit_updates=max(0, updates),
                    makespan=result.makespan,
                )
            )
    return samples
