"""repro — a reproduction of FlowCon (ICPP 2019).

*FlowCon: Elastic Flow Configuration for Containerized Deep Learning
Applications*, Zheng, Tynes, Gorelick, Mao, Cheng & Hou.

The package provides:

* a deterministic discrete-event simulation engine (:mod:`repro.simcore`);
* a Docker-like container runtime with soft-limit CPU scheduling
  (:mod:`repro.containers`);
* analytic DL training-job models calibrated to the paper's Table 1 zoo
  (:mod:`repro.workloads`);
* a manager/worker cluster substrate (:mod:`repro.cluster`);
* FlowCon itself — growth efficiency, NL/WL/CL classification,
  Algorithms 1 & 2, the Executor (:mod:`repro.core`);
* baselines (:mod:`repro.baselines`), telemetry (:mod:`repro.metrics`),
  and generators for every figure/table of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import (FlowConPolicy, NAPolicy, SimulationConfig,
...                    fixed_three_job, run_scenario)
>>> specs = fixed_three_job()
>>> flowcon = run_scenario(specs, FlowConPolicy(), SimulationConfig(seed=1))
>>> na = run_scenario(specs, NAPolicy(), SimulationConfig(seed=1))
>>> flowcon.completion_times()["Job-3"] < na.completion_times()["Job-3"]
True
"""

from repro.baselines import NAPolicy, SlaqLikePolicy, StaticPartitionPolicy
from repro.cluster import (
    PLACEMENTS,
    REBALANCERS,
    ContentionModel,
    Manager,
    PlacementPolicy,
    RebalancePolicy,
    Worker,
    make_placement,
    make_rebalance,
)
from repro.config import FlowConConfig, SimulationConfig
from repro.containers import AllocationMode, ContainerRuntime
from repro.core import Executor, FlowConPolicy, SchedulingPolicy
from repro.errors import ReproError
from repro.experiments import (
    RunResult,
    fixed_three_job,
    heterogeneous_cluster,
    imbalanced_cluster,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
    run_cluster,
    run_scenario,
    two_hundred_job,
)
from repro.metrics import MetricsRecorder, RunSummary, StepSeries
from repro.simcore import Simulator
from repro.workloads import MODEL_ZOO, TrainingJob, WorkloadGenerator, make_job

__version__ = "1.0.0"

__all__ = [
    "AllocationMode",
    "ContainerRuntime",
    "ContentionModel",
    "Executor",
    "FlowConConfig",
    "FlowConPolicy",
    "MODEL_ZOO",
    "Manager",
    "MetricsRecorder",
    "NAPolicy",
    "PLACEMENTS",
    "PlacementPolicy",
    "REBALANCERS",
    "RebalancePolicy",
    "ReproError",
    "RunResult",
    "RunSummary",
    "SchedulingPolicy",
    "SimulationConfig",
    "Simulator",
    "SlaqLikePolicy",
    "StaticPartitionPolicy",
    "StepSeries",
    "TrainingJob",
    "Worker",
    "WorkloadGenerator",
    "__version__",
    "fixed_three_job",
    "heterogeneous_cluster",
    "imbalanced_cluster",
    "make_job",
    "make_placement",
    "make_rebalance",
    "random_fifteen_job",
    "random_five_job",
    "random_ten_job",
    "run_cluster",
    "run_scenario",
    "two_hundred_job",
]
