"""Multi-worker scenario runner.

§3.1's architecture runs FlowCon *per worker* so scheduling overhead
distributes across the cluster.  :func:`run_multi_worker` generalizes
:func:`~repro.experiments.runner.run_scenario` to ``n`` workers: the
manager spreads containers, each worker gets its own policy instance
(from a factory, since policies hold per-worker state) and its own
metrics recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.config import SimulationConfig
from repro.core.policy import SchedulingPolicy
from repro.errors import ExperimentError
from repro.metrics.recorder import MetricsRecorder
from repro.metrics.summary import CompletionRecord, RunSummary
from repro.simcore.engine import Simulator
from repro.workloads.generator import WorkloadSpec
from repro.workloads.models import MODEL_ZOO

__all__ = ["MultiWorkerResult", "run_multi_worker", "scaling_study"]


@dataclass
class MultiWorkerResult:
    """Everything observed during one multi-worker run."""

    summary: RunSummary
    per_worker: dict[str, list[str]]
    policies: dict[str, SchedulingPolicy]
    recorders: dict[str, MetricsRecorder]
    manager: Manager
    sim: Simulator

    @property
    def makespan(self) -> float:
        """First submission to last completion, cluster-wide."""
        return self.summary.makespan

    def completion_times(self) -> dict[str, float]:
        """label → completion time across all workers."""
        return self.summary.completion_times()


def run_multi_worker(
    specs: list[WorkloadSpec],
    policy_factory: Callable[[], SchedulingPolicy],
    *,
    n_workers: int,
    sim_config: SimulationConfig | None = None,
) -> MultiWorkerResult:
    """Run one workload on an ``n_workers`` cluster.

    Parameters
    ----------
    specs:
        The workload; the manager spreads it least-loaded-first.
    policy_factory:
        Builds a fresh policy per worker (e.g. ``lambda:
        FlowConPolicy(cfg)``).
    n_workers:
        Cluster size (≥ 1).
    sim_config:
        Substrate parameters shared by all workers.
    """
    if not specs:
        raise ExperimentError("run_multi_worker needs at least one spec")
    if n_workers < 1:
        raise ExperimentError(f"n_workers must be >= 1, got {n_workers!r}")
    cfg = sim_config if sim_config is not None else SimulationConfig()

    sim = Simulator(seed=cfg.seed, trace=cfg.trace)
    workers = [
        Worker(
            sim,
            name=f"worker-{i}",
            capacity=cfg.capacity,
            contention=cfg.contention,
            allocation_mode=cfg.allocation_mode,
        )
        for i in range(n_workers)
    ]
    manager = Manager(sim, workers)
    recorders: dict[str, MetricsRecorder] = {}
    policies: dict[str, SchedulingPolicy] = {}
    for worker in workers:
        recorder = MetricsRecorder(worker, sample_interval=cfg.sample_interval)
        recorder.start()
        recorders[worker.name] = recorder
        policy = policy_factory()
        policy.attach(worker)
        policies[worker.name] = policy

    manager.submit_all(
        [
            JobSubmission(
                label=s.label,
                job=s.build_job(),
                submit_time=s.submit_time,
                image=MODEL_ZOO[s.model_key].image,
            )
            for s in specs
        ]
    )

    expected = len(specs)
    while sum(len(r.completions) for r in recorders.values()) < expected:
        if cfg.horizon is not None and sim.now >= cfg.horizon:
            break
        if sim.step() is None:
            raise ExperimentError(
                f"cluster stalled at t={sim.now:.1f}s"
            )
    for policy in policies.values():
        policy.detach()
    for recorder in recorders.values():
        recorder.stop()

    completions: list[CompletionRecord] = [
        c for r in recorders.values() for c in r.completions
    ]
    if not completions:
        raise ExperimentError("no jobs completed")
    per_worker = {
        name: [c.label for c in recorder.completions]
        for name, recorder in recorders.items()
    }
    return MultiWorkerResult(
        summary=RunSummary(completions=completions),
        per_worker=per_worker,
        policies=policies,
        recorders=recorders,
        manager=manager,
        sim=sim,
    )


def scaling_study(
    specs: list[WorkloadSpec],
    policy_factory: Callable[[], SchedulingPolicy],
    cluster_sizes: list[int],
    *,
    sim_config: SimulationConfig | None = None,
    workers: int = 1,
):
    """Run one workload across several cluster sizes, optionally in parallel.

    The §3.1 scaling question — "how does makespan move as workers are
    added?" — is one independent simulation per cluster size, so it runs
    through the :mod:`~repro.experiments.batch` runner: ``workers=N``
    executes the sizes N-wide with identical results.

    Parameters
    ----------
    specs:
        The workload, reused identically for every cluster size.
    policy_factory:
        Picklable zero-argument policy builder (fresh instance per
        simulated worker).
    cluster_sizes:
        Simulated worker counts to evaluate (each ≥ 1).
    sim_config:
        Substrate parameters shared by every run.
    workers:
        *Host* process count for the batch runner (unrelated to the
        simulated cluster sizes).

    Returns
    -------
    list[repro.experiments.batch.RunRecord]
        One record per cluster size, in ``cluster_sizes`` order.
    """
    from repro.experiments.batch import RunTask, run_tasks

    if not cluster_sizes:
        raise ExperimentError("scaling_study needs at least one cluster size")
    cfg = sim_config if sim_config is not None else SimulationConfig(trace=False)
    tasks = [
        RunTask(
            index=i,
            specs=tuple(specs),
            policy_factory=policy_factory,
            sim_config=cfg,
            n_workers=n,
            label=f"{n}-worker",
        )
        for i, n in enumerate(cluster_sizes)
    ]
    return run_tasks(tasks, workers=workers)
