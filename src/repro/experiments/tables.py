"""Data generators for the paper's tables.

* Table 1 — the tested-model inventory (model, evaluation function,
  platform) with our calibrated parameters appended.
* Table 2 — completion-time reduction of MNIST (TensorFlow) across
  (α, itval) settings, extracted from the Fig. 4 and Fig. 5 sweeps exactly
  as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import fig4_fixed_alpha10, fig5_fixed_itval20
from repro.workloads.frameworks import FRAMEWORK_PROFILES
from repro.workloads.models import MODEL_ZOO

__all__ = ["Table1Row", "table1_model_zoo", "Table2Data", "table2_mnist_reduction"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (plus reproduction-specific columns)."""

    model: str
    eval_function: str
    platform: str
    base_work: float
    cpu_demand: float


def table1_model_zoo() -> list[Table1Row]:
    """Table 1: the tested deep-learning models."""
    rows = []
    for profile in MODEL_ZOO.values():
        fw = FRAMEWORK_PROFILES[profile.framework]
        rows.append(
            Table1Row(
                model=profile.display_name,
                eval_function=profile.evalfn.kind.value,
                platform=fw.framework.short,
                base_work=profile.base_work,
                cpu_demand=profile.footprint.cpu_demand,
            )
        )
    return rows


@dataclass
class Table2Data:
    """Table 2: MNIST (TensorFlow) completion-time reduction vs NA.

    Two columns like the paper's: a fixed-α sweep over itval (from
    Fig. 4's data) and a fixed-itval sweep over α (from Fig. 5's data).
    """

    #: (α label, itval label) → reduction %, from the Fig. 4 sweep.
    by_itval: dict[str, float]
    #: (α label) → reduction %, from the Fig. 5 sweep.
    by_alpha: dict[str, float]
    job_label: str


def table2_mnist_reduction(seed: int = 1) -> Table2Data:
    """Compute Table 2 from the Fig. 4 / Fig. 5 sweeps.

    The MNIST (TensorFlow) job is Job-3 of the fixed schedule (launched
    at 80 s).
    """
    job = "Job-3"
    fig4 = fig4_fixed_alpha10(seed)
    fig5 = fig5_fixed_itval20(seed)
    by_itval = {
        label: fig4.reduction_vs_na(label, job)
        for label in fig4.completion
        if label != "NA"
    }
    by_alpha = {
        label: fig5.reduction_vs_na(label, job)
        for label in fig5.completion
        if label != "NA"
    }
    return Table2Data(by_itval=by_itval, by_alpha=by_alpha, job_label=job)
