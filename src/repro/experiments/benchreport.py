"""Fold the ``benchmarks/BENCH_*.json`` trajectory into one table.

Every benchmarked pytest session auto-exports a
``BENCH_<UTC-stamp>.json`` snapshot (``benchmarks/conftest.py``), so the
directory accumulates one file per landed PR's bench run — a measured
performance history of the whole stack.  This module renders that
history as a single throughput-over-PRs table: one row per benchmark,
one column per snapshot (in timestamp order), each cell the benchmark's
mean throughput in runs per second (``1 / stats.mean``).  Reading along
a row shows a benchmark speeding up (or regressing) as PRs land; the
``repro bench-report`` CLI subcommand is the first slice of ROADMAP
item 4's regression dashboard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError

__all__ = ["BenchPoint", "load_trajectory", "trajectory_table"]


@dataclass(frozen=True)
class BenchPoint:
    """One BENCH_*.json snapshot: its stamp and per-benchmark means."""

    #: Short column label derived from the filename's UTC stamp.
    stamp: str
    #: Benchmark name → mean wall seconds per round.
    means: dict[str, float]


def _point(path: Path) -> BenchPoint | None:
    """Parse one snapshot; ``None`` for unreadable or empty files."""
    try:
        data = json.loads(path.read_text())
        benches = data["benchmarks"]
    except (OSError, ValueError, KeyError):
        return None
    means: dict[str, float] = {}
    for bench in benches:
        try:
            means[str(bench["name"])] = float(bench["stats"]["mean"])
        except (TypeError, ValueError, KeyError):
            continue
    if not means:
        return None
    # "BENCH_20260808-014721.json" → "0808-0147": month-day, hour-minute.
    stamp = path.stem.removeprefix("BENCH_")
    if len(stamp) >= 13 and stamp[8] == "-":
        stamp = f"{stamp[4:8]}-{stamp[9:13]}"
    return BenchPoint(stamp=stamp, means=means)


def load_trajectory(directory: str | Path) -> list[BenchPoint]:
    """Load every parseable ``BENCH_*.json`` under *directory*, in order.

    Filenames embed a UTC timestamp, so lexicographic filename order is
    chronological order.  Raises :class:`ExperimentError` when the
    directory holds no usable snapshot — a bench run has to exist before
    a trajectory can.
    """
    root = Path(directory)
    points = [
        point
        for path in sorted(root.glob("BENCH_*.json"))
        if (point := _point(path)) is not None
    ]
    if not points:
        raise ExperimentError(
            f"no readable BENCH_*.json snapshots under {root} — run the "
            "benchmark suite first (pytest benchmarks/) to record one"
        )
    return points


def _ops(mean: float | None) -> str:
    if mean is None or mean <= 0.0:
        return "—"
    ops = 1.0 / mean
    if ops >= 100.0:
        return f"{ops:.0f}/s"
    if ops >= 1.0:
        return f"{ops:.2f}/s"
    return f"{ops:.4f}/s"


def trajectory_table(
    points: list[BenchPoint],
    *,
    pattern: str | None = None,
    last: int | None = None,
) -> tuple[list[str], list[list[str]]]:
    """Build ``(headers, rows)`` for the throughput-over-PRs table.

    One row per benchmark name (union over snapshots, sorted), one
    column per snapshot; cells are mean throughput (runs/s), ``—`` where
    a snapshot never ran that benchmark.  *pattern* keeps only rows
    whose name contains the substring (case-insensitive); *last* keeps
    only the newest N snapshots.
    """
    if last is not None and last > 0:
        points = points[-last:]
    names = sorted({name for point in points for name in point.means})
    if pattern:
        needle = pattern.lower()
        names = [name for name in names if needle in name.lower()]
    if not names:
        raise ExperimentError(
            f"no benchmark matches {pattern!r} across "
            f"{len(points)} snapshot(s)"
        )
    headers = ["benchmark"] + [point.stamp for point in points]
    rows = [
        [name] + [_ops(point.means.get(name)) for point in points]
        for name in names
    ]
    return headers, rows
