"""ASCII rendering for bench output.

The benchmarks print the regenerated figures and tables in a form that can
be eyeballed against the paper: aligned tables for completion-time bars,
sparkline-style strips for traces.  Everything returns strings so tests
can assert on structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["render_table", "render_sparkline", "render_bars", "render_header"]

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def render_header(title: str, width: int = 78) -> str:
    """A boxed section header."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned text table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_sparkline(
    values: np.ndarray,
    *,
    width: int = 60,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Downsample *values* to *width* columns of block characters."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo = np.nanmin(values) if vmin is None else vmin
    hi = np.nanmax(values) if vmax is None else vmax
    if hi <= lo:
        hi = lo + 1.0
    scaled = (values - lo) / (hi - lo)
    idx = np.clip((scaled * (len(_SPARK_CHARS) - 1)).round().astype(int),
                  0, len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[i] for i in idx)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal bar chart (one row per label)."""
    if not labels:
        return ""
    vmax = max(values) if values else 1.0
    vmax = vmax if vmax > 0 else 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    for lab, val in zip(labels, values):
        n = int(round(val / vmax * width))
        lines.append(
            f"{str(lab).ljust(label_w)} | {'█' * n}{' ' * (width - n)} "
            f"{val:8.1f}{unit}"
        )
    return "\n".join(lines)
