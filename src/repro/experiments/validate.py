"""Executable reproduction validation.

:func:`validate_reproduction` re-checks every shape claim of
EXPERIMENTS.md in code and returns a structured scorecard — the
one-command answer to "does this reproduction still hold?".  It is wired
to ``python -m repro validate`` and used by the release checklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.experiments import figures as F
from repro.experiments import tables as T

__all__ = ["Check", "validate_reproduction"]


@dataclass(frozen=True)
class Check:
    """One validated claim."""

    exp: str
    claim: str
    passed: bool
    detail: str


def _check(exp: str, claim: str, fn: Callable[[], tuple[bool, str]]) -> Check:
    try:
        passed, detail = fn()
    except Exception as err:  # a crash is a failed check, not a crash
        return Check(exp, claim, False, f"raised {type(err).__name__}: {err}")
    return Check(exp, claim, passed, detail)


def validate_reproduction(
    seed_fixed: int = 1, seed_random: int = 42
) -> list[Check]:
    """Run every EXPERIMENTS.md shape check; returns the scorecard."""
    checks: list[Check] = []

    # --- Fig. 1 -----------------------------------------------------------
    def fig1():
        data = F.fig1_training_progress()
        worst = min(data.fraction_at(n, 0.5) for n in data.curves)
        vae = data.fraction_at("VAE (Pytorch)", 0.15)
        return (worst > 0.5 and vae > 0.99,
                f"min improvement@50%={worst:.0%}, VAE@15%={vae:.0%}")

    checks.append(_check("Fig.1", "concave curves; VAE extreme riser", fig1))

    # --- Figs. 3–6 / Table 2 ----------------------------------------------
    fig3 = F.fig3_fixed_alpha5(seed_fixed)

    def fig3_makespan():
        na = fig3.makespan["NA"]
        worst = max(v for k, v in fig3.makespan.items() if k != "NA")
        return worst <= na * 1.01, f"worst FlowCon {worst:.1f} vs NA {na:.1f}"

    checks.append(
        _check("Fig.3", "makespan never sacrificed (α=5%)", fig3_makespan)
    )

    def fig3_reductions():
        vals = [
            fig3.reduction_vs_na(k, "Job-3")
            for k in fig3.completion if k != "NA"
        ]
        return min(vals) > 5.0, f"MNIST-TF reductions {min(vals):.1f}–{max(vals):.1f}%"

    checks.append(_check("Fig.3", "MNIST-TF double-digit-ish cuts", fig3_reductions))

    def table2():
        t2 = T.table2_mnist_reduction(seed_fixed)
        itv = [t2.by_itval[k] for k in ("20", "30", "40", "50", "60")]
        ok = all(v > 0 for v in itv) and itv[0] >= itv[-1] and all(
            v > 0 for v in t2.by_alpha.values()
        )
        return ok, f"itval col {itv[0]:.1f}→{itv[-1]:.1f}%"

    checks.append(
        _check("Tab.2", "positive, decreasing with itval", table2)
    )

    # --- Fig. 7/8 -----------------------------------------------------------
    def fig7():
        data = F.fig7_cpu_flowcon_3job(seed_fixed)
        times, limits = data.limits["Job-1"]
        late = limits[times > 150.0]
        return late.size > 0 and late.min() <= 0.26, (
            f"VAE limit floor {late.min():.3f}"
        )

    checks.append(_check("Fig.7", "converged VAE pinned near 0.25", fig7))

    def fig8():
        data = F.fig8_cpu_na_3job(seed_fixed)
        t1, u1 = data.usage["Job-1"]
        med = float(np.median(u1[(t1 > 90) & (t1 < 140)]))
        return abs(med - 1 / 3) < 0.08, f"3-job median share {med:.2f}"

    checks.append(_check("Fig.8", "NA equal sharing", fig8))

    # --- Fig. 9 ---------------------------------------------------------------
    def fig9():
        data = F.fig9_random_five(seed_random)
        wins = [data.wins(k) for k in data.completion if k != "NA"]
        return min(wins) >= 3, f"wins per config {wins}"

    checks.append(_check("Fig.9", "≥4/5-ish wins per config", fig9))

    # --- Fig. 12 -----------------------------------------------------------------
    fig12 = F.fig12_ten_jobs(seed_random)
    (cfg12,) = [k for k in fig12.completion if k != "NA"]

    def fig12_wins():
        return fig12.wins(cfg12) >= 9, f"{fig12.wins(cfg12)}/10 wins"

    checks.append(_check("Fig.12", "≈9/10 jobs faster", fig12_wins))

    def fig12_makespan():
        ok = fig12.makespan[cfg12] <= fig12.makespan["NA"] * 1.01
        return ok, (
            f"{fig12.makespan[cfg12]:.1f} vs NA {fig12.makespan['NA']:.1f}"
        )

    checks.append(_check("Fig.12", "makespan preserved", fig12_makespan))

    # --- Figs. 13/14 ----------------------------------------------------------------
    def fig13():
        data = F.fig13_growth_comparison(seed_random)
        delta = (
            data.flowcon_completion - data.na_completion
        ) / data.na_completion
        return delta < 0.10, f"worst job delta {delta:+.1%} ({data.job_name})"

    checks.append(_check("Fig.13", "worst job loses only mildly", fig13))

    def fig14():
        data = F.fig14_growth_comparison(seed_random)
        return data.flowcon_completion < data.na_completion, (
            f"{data.na_completion:.0f}→{data.flowcon_completion:.0f}s "
            f"({data.job_name})"
        )

    checks.append(_check("Fig.14", "best job wins clearly", fig14))

    # --- Figs. 15/16 -------------------------------------------------------------------
    def fig1516():
        fc = F.fig15_cpu_flowcon_10job(seed_random)
        na = F.fig16_cpu_na_10job(seed_random)
        fc_j = float(np.mean(list(fc.jitter.values())))
        na_j = float(np.mean(list(na.jitter.values())))
        return fc_j < na_j, f"jitter {fc_j:.4f} < {na_j:.4f}"

    checks.append(_check("Fig.15/16", "FlowCon smoother than NA", fig1516))

    # --- Fig. 17 ----------------------------------------------------------------------
    def fig17():
        data = F.fig17_fifteen_jobs(seed_random)
        (cfg,) = [k for k in data.completion if k != "NA"]
        reductions = data.reductions(cfg)
        ok = (
            data.wins(cfg) >= 10
            and min(reductions.values()) > -10.0
            and data.makespan[cfg] <= data.makespan["NA"] * 1.01
        )
        return ok, (
            f"{data.wins(cfg)}/15 wins, worst {min(reductions.values()):.1f}%"
        )

    checks.append(_check("Fig.17", "11/15-ish wins, small losses", fig17))

    return checks
