"""Data generators for every figure of the paper's evaluation (§5).

Each ``figN`` function runs the relevant scenario(s) and returns a plain
data structure (dataclass of dicts/arrays) that the corresponding
benchmark renders.  Figures share scenario runs where the paper shared
them (e.g. Fig. 7/8 reuse the Fig. 3 runs' traces), so generating the full
set stays cheap.

Conventions
-----------
* ``seed`` selects the substrate's random universe; comparisons always
  reuse one seed across policies.
* Completion times are in simulated seconds; "NA" marks the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import RunResult, run_scenario
from repro.experiments.scenarios import (
    fixed_three_job,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
)
from repro.metrics.summary import jitter_index
from repro.workloads.models import MODEL_ZOO, make_job

__all__ = [
    "Fig1Data",
    "SweepData",
    "TraceData",
    "ScaleData",
    "GrowthCompareData",
    "fig1_training_progress",
    "fig3_fixed_alpha5",
    "fig4_fixed_alpha10",
    "fig5_fixed_itval20",
    "fig6_fixed_itval30",
    "fig7_cpu_flowcon_3job",
    "fig8_cpu_na_3job",
    "fig9_random_five",
    "fig10_cpu_flowcon_5job",
    "fig11_cpu_na_5job",
    "fig12_ten_jobs",
    "fig13_growth_comparison",
    "fig14_growth_comparison",
    "fig15_cpu_flowcon_10job",
    "fig16_cpu_na_10job",
    "fig17_fifteen_jobs",
]

#: The five models of the motivating Fig. 1, as labelled there.
FIG1_MODELS = [
    "vae@pytorch",
    "mnist@pytorch",
    "cnn_lstm@tensorflow",
    "gru@tensorflow",
    "logreg@tensorflow",
]


# ---------------------------------------------------------------------------
# Fig. 1 — training progress of five models
# ---------------------------------------------------------------------------


@dataclass
class Fig1Data:
    """Normalized training-progress curves, one per model.

    ``curves[name] = (time_fraction, improvement_fraction)`` — both in
    [0, 1], mirroring Fig. 1's normalized axes.
    """

    curves: dict[str, tuple[np.ndarray, np.ndarray]]

    def fraction_at(self, name: str, time_frac: float) -> float:
        """Improvement fraction of *name* at a cumulative-time fraction."""
        t, v = self.curves[name]
        return float(np.interp(time_frac, t, v))


def fig1_training_progress(n_points: int = 200) -> Fig1Data:
    """Fig. 1: each model training *alone* on one node.

    Solo and uncontended, wall-time fraction equals work fraction, so the
    curves come straight from the analytic models — exactly what Fig. 1
    plots (accuracy vs cumulative time for independent runs).
    """
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for key in FIG1_MODELS:
        job = make_job(key)
        # Time fraction spent in warm-up produces a flat lead-in.
        warm_frac = job.warmup_work / job.total_work
        t = np.linspace(0.0, 1.0, n_points)
        p = np.clip((t - warm_frac) / (1.0 - warm_frac), 0.0, 1.0)
        frac = np.asarray(job.curve.improvement_fraction(p), dtype=np.float64)
        curves[MODEL_ZOO[key].display_name] = (t, frac)
    return Fig1Data(curves=curves)


# ---------------------------------------------------------------------------
# Figs. 3–6 — fixed schedule parameter sweeps
# ---------------------------------------------------------------------------


@dataclass
class SweepData:
    """Completion times across a parameter sweep plus the NA reference.

    ``completion[config_label][job_label] = seconds``; ``"NA"`` is always
    present.  ``makespan[config_label]`` likewise.
    """

    parameter: str
    completion: dict[str, dict[str, float]]
    makespan: dict[str, float]
    job_names: dict[str, str]
    #: The underlying runs (label → RunResult) for trace reuse.
    runs: dict[str, RunResult] = field(default_factory=dict)

    def reduction_vs_na(self, config_label: str, job_label: str) -> float:
        """Percent completion-time reduction of one job vs NA."""
        na = self.completion["NA"][job_label]
        fc = self.completion[config_label][job_label]
        return (na - fc) / na * 100.0


def _fixed_sweep(
    configs: list[FlowConConfig],
    parameter: str,
    labels: list[str],
    seed: int,
) -> SweepData:
    specs = fixed_three_job()
    job_names = {s.label: MODEL_ZOO[s.model_key].display_name for s in specs}
    sim_cfg = SimulationConfig(seed=seed, trace=False)

    completion: dict[str, dict[str, float]] = {}
    makespan: dict[str, float] = {}
    runs: dict[str, RunResult] = {}

    for label, cfg in zip(labels, configs):
        result = run_scenario(specs, FlowConPolicy(cfg), sim_cfg)
        completion[label] = result.completion_times()
        makespan[label] = result.makespan
        runs[label] = result

    na = run_scenario(specs, NAPolicy(), sim_cfg)
    completion["NA"] = na.completion_times()
    makespan["NA"] = na.makespan
    runs["NA"] = na

    return SweepData(
        parameter=parameter,
        completion=completion,
        makespan=makespan,
        job_names=job_names,
        runs=runs,
    )


def fig3_fixed_alpha5(seed: int = 1) -> SweepData:
    """Fig. 3: α = 5 %, itval ∈ {20, 30, 40, 50, 60} s, fixed 3-job."""
    itvals = [20.0, 30.0, 40.0, 50.0, 60.0]
    return _fixed_sweep(
        [FlowConConfig(alpha=0.05, itval=iv) for iv in itvals],
        parameter="itval",
        labels=[f"{iv:g}" for iv in itvals],
        seed=seed,
    )


def fig4_fixed_alpha10(seed: int = 1) -> SweepData:
    """Fig. 4: α = 10 %, itval ∈ {20, 30, 40, 50, 60} s, fixed 3-job."""
    itvals = [20.0, 30.0, 40.0, 50.0, 60.0]
    return _fixed_sweep(
        [FlowConConfig(alpha=0.10, itval=iv) for iv in itvals],
        parameter="itval",
        labels=[f"{iv:g}" for iv in itvals],
        seed=seed,
    )


def fig5_fixed_itval20(seed: int = 1) -> SweepData:
    """Fig. 5: itval = 20 s, α ∈ {1, 3, 5, 10, 15} %, fixed 3-job."""
    alphas = [0.01, 0.03, 0.05, 0.10, 0.15]
    return _fixed_sweep(
        [FlowConConfig(alpha=a, itval=20.0) for a in alphas],
        parameter="alpha",
        labels=[f"{a:.0%}" for a in alphas],
        seed=seed,
    )


def fig6_fixed_itval30(seed: int = 1) -> SweepData:
    """Fig. 6: itval = 30 s, α ∈ {1, 3, 5, 10, 15} %, fixed 3-job."""
    alphas = [0.01, 0.03, 0.05, 0.10, 0.15]
    return _fixed_sweep(
        [FlowConConfig(alpha=a, itval=30.0) for a in alphas],
        parameter="alpha",
        labels=[f"{a:.0%}" for a in alphas],
        seed=seed,
    )


# ---------------------------------------------------------------------------
# CPU-usage trace figures (7, 8, 10, 11, 15, 16)
# ---------------------------------------------------------------------------


@dataclass
class TraceData:
    """Per-job CPU-usage step series from one run.

    ``usage[job_label] = (times, values)``; ``jitter[job_label]`` is the
    smoothness metric from :func:`repro.metrics.summary.jitter_index`.
    """

    policy: str
    usage: dict[str, tuple[np.ndarray, np.ndarray]]
    limits: dict[str, tuple[np.ndarray, np.ndarray]]
    jitter: dict[str, float]
    makespan: float
    run: RunResult


def _trace_data(result: RunResult) -> TraceData:
    usage: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    limits: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    jitter: dict[str, float] = {}
    for trace in result.recorder.traces.values():
        if trace.cpu_usage.empty:
            continue
        usage[trace.label] = trace.cpu_usage.arrays()
        if not trace.cpu_limit.empty:
            limits[trace.label] = trace.cpu_limit.arrays()
        jitter[trace.label] = jitter_index(trace.cpu_usage, grid_step=5.0)
    return TraceData(
        policy=result.policy_name,
        usage=usage,
        limits=limits,
        jitter=jitter,
        makespan=result.makespan,
        run=result,
    )


def fig7_cpu_flowcon_3job(seed: int = 1) -> TraceData:
    """Fig. 7: CPU usage under FlowCon (α=5 %, itval=20), fixed 3-job."""
    result = run_scenario(
        fixed_three_job(),
        FlowConPolicy(FlowConConfig(alpha=0.05, itval=20.0)),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


def fig8_cpu_na_3job(seed: int = 1) -> TraceData:
    """Fig. 8: CPU usage under NA, fixed 3-job."""
    result = run_scenario(
        fixed_three_job(),
        NAPolicy(),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


def fig10_cpu_flowcon_5job(seed: int = 42) -> TraceData:
    """Fig. 10: CPU usage under FlowCon (α=3 %, itval=30), 5 random jobs."""
    result = run_scenario(
        random_five_job(seed),
        FlowConPolicy(FlowConConfig(alpha=0.03, itval=30.0)),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


def fig11_cpu_na_5job(seed: int = 42) -> TraceData:
    """Fig. 11: CPU usage under NA, 5 random jobs."""
    result = run_scenario(
        random_five_job(seed),
        NAPolicy(),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


def fig15_cpu_flowcon_10job(seed: int = 42) -> TraceData:
    """Fig. 15: CPU usage under FlowCon (α=10 %, itval=20), 10 jobs."""
    result = run_scenario(
        random_ten_job(seed),
        FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


def fig16_cpu_na_10job(seed: int = 42) -> TraceData:
    """Fig. 16: CPU usage under NA, 10 jobs."""
    result = run_scenario(
        random_ten_job(seed),
        NAPolicy(),
        SimulationConfig(seed=seed, trace=False, sample_interval=2.0),
    )
    return _trace_data(result)


# ---------------------------------------------------------------------------
# Random / scalability completion-time figures (9, 12, 17)
# ---------------------------------------------------------------------------


@dataclass
class ScaleData:
    """FlowCon-vs-NA completion comparison for a random workload."""

    completion: dict[str, dict[str, float]]
    makespan: dict[str, float]
    job_names: dict[str, str]
    runs: dict[str, RunResult] = field(default_factory=dict)

    def wins(self, config_label: str) -> int:
        """Number of jobs faster under *config_label* than under NA."""
        na = self.completion["NA"]
        fc = self.completion[config_label]
        return sum(1 for label in na if fc[label] < na[label])

    def reductions(self, config_label: str) -> dict[str, float]:
        """Per-job percent reduction vs NA."""
        na = self.completion["NA"]
        fc = self.completion[config_label]
        return {
            label: (na[label] - fc[label]) / na[label] * 100.0 for label in na
        }


def _scale_experiment(
    specs,
    configs: list[FlowConConfig],
    seed: int,
    sample_interval: float = 5.0,
) -> ScaleData:
    job_names = {s.label: MODEL_ZOO[s.model_key].display_name for s in specs}
    sim_cfg = SimulationConfig(
        seed=seed, trace=False, sample_interval=sample_interval
    )
    completion: dict[str, dict[str, float]] = {}
    makespan: dict[str, float] = {}
    runs: dict[str, RunResult] = {}
    for cfg in configs:
        label = cfg.describe()
        result = run_scenario(specs, FlowConPolicy(cfg), sim_cfg)
        completion[label] = result.completion_times()
        makespan[label] = result.makespan
        runs[label] = result
    na = run_scenario(specs, NAPolicy(), sim_cfg)
    completion["NA"] = na.completion_times()
    makespan["NA"] = na.makespan
    runs["NA"] = na
    return ScaleData(
        completion=completion, makespan=makespan, job_names=job_names, runs=runs
    )


def fig9_random_five(seed: int = 42) -> ScaleData:
    """Fig. 9: five random jobs under four (α, itval) configs and NA."""
    configs = [
        FlowConConfig(alpha=0.03, itval=30.0),
        FlowConConfig(alpha=0.03, itval=60.0),
        FlowConConfig(alpha=0.05, itval=30.0),
        FlowConConfig(alpha=0.05, itval=60.0),
    ]
    return _scale_experiment(random_five_job(seed), configs, seed)


def fig12_ten_jobs(seed: int = 42) -> ScaleData:
    """Fig. 12: ten random jobs, FlowCon-10 %-20 vs NA."""
    return _scale_experiment(
        random_ten_job(seed), [FlowConConfig(alpha=0.10, itval=20.0)], seed
    )


def fig17_fifteen_jobs(seed: int = 42) -> ScaleData:
    """Fig. 17: fifteen random jobs, FlowCon-10 %-40 vs NA."""
    return _scale_experiment(
        random_fifteen_job(seed), [FlowConConfig(alpha=0.10, itval=40.0)], seed
    )


# ---------------------------------------------------------------------------
# Figs. 13–14 — growth-efficiency comparisons from the 10-job run
# ---------------------------------------------------------------------------


@dataclass
class GrowthCompareData:
    """Growth-efficiency traces of one job under FlowCon and NA."""

    job_label: str
    job_name: str
    flowcon: tuple[np.ndarray, np.ndarray]
    na: tuple[np.ndarray, np.ndarray]
    flowcon_completion: float
    na_completion: float


def _growth_compare(seed: int, pick: str) -> GrowthCompareData:
    """Shared engine for Figs. 13/14.

    ``pick`` selects the job: ``"loser"`` → the job with the *worst*
    completion delta under FlowCon (the paper's Job-2), ``"winner"`` → the
    best (the paper's Job-6).
    """
    data = fig12_ten_jobs(seed)
    (config_label,) = [k for k in data.completion if k != "NA"]
    reductions = data.reductions(config_label)
    if pick == "winner":
        label = max(reductions, key=reductions.get)
    else:
        label = min(reductions, key=reductions.get)
    fc_run = data.runs[config_label]
    na_run = data.runs["NA"]
    fc_trace = fc_run.trace(label).growth
    na_trace = na_run.trace(label).growth
    return GrowthCompareData(
        job_label=label,
        job_name=data.job_names[label],
        flowcon=fc_trace.arrays(),
        na=na_trace.arrays(),
        flowcon_completion=data.completion[config_label][label],
        na_completion=data.completion["NA"][label],
    )


def fig13_growth_comparison(seed: int = 42) -> GrowthCompareData:
    """Fig. 13: growth efficiency of a job that *loses* under FlowCon."""
    return _growth_compare(seed, pick="loser")


def fig14_growth_comparison(seed: int = 42) -> GrowthCompareData:
    """Fig. 14: growth efficiency of a job that *wins* under FlowCon."""
    return _growth_compare(seed, pick="winner")
