"""The policy-agnostic scenario runner.

One call = one run: assemble a fresh simulator, worker, manager, metrics
recorder and policy; submit the workload; run to completion; return a
:class:`RunResult`.  FlowCon-vs-NA comparisons call this twice with the
same workload specs and simulation config — identical substrate, identical
seeds, only the policy differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.config import SimulationConfig
from repro.core.policy import SchedulingPolicy
from repro.errors import ExperimentError
from repro.metrics.recorder import ContainerTrace, MetricsRecorder
from repro.metrics.summary import RunSummary
from repro.simcore.engine import Simulator
from repro.workloads.generator import WorkloadSpec
from repro.workloads.models import MODEL_ZOO

__all__ = ["RunResult", "run_scenario"]


@dataclass
class RunResult:
    """Everything observed during one scenario run."""

    policy_name: str
    summary: RunSummary
    recorder: MetricsRecorder
    sim: Simulator
    worker: Worker
    manager: Manager

    def trace(self, label: str) -> ContainerTrace:
        """Shortcut to a job's recorded trace."""
        return self.recorder.trace_by_label(label)

    def completion_times(self) -> dict[str, float]:
        """label → completion time."""
        return self.summary.completion_times()

    @property
    def makespan(self) -> float:
        """Overall makespan of the run."""
        return self.summary.makespan


def run_scenario(
    specs: list[WorkloadSpec],
    policy: SchedulingPolicy,
    sim_config: SimulationConfig | None = None,
) -> RunResult:
    """Run one workload under one policy to completion.

    Parameters
    ----------
    specs:
        The workload (from :class:`~repro.workloads.generator
        .WorkloadGenerator` or the scenario builders).
    policy:
        A fresh policy instance (policies hold per-run state; reusing one
        across runs raises).
    sim_config:
        Substrate parameters; defaults to :class:`SimulationConfig()`.

    Returns
    -------
    RunResult

    Raises
    ------
    ExperimentError
        On empty workloads or if the simulation stalls before all jobs
        complete (a genuine bug signal, not a tunable).
    """
    if not specs:
        raise ExperimentError("run_scenario needs at least one workload spec")
    cfg = sim_config if sim_config is not None else SimulationConfig()

    sim = Simulator(seed=cfg.seed, trace=cfg.trace)
    worker = Worker(
        sim,
        capacity=cfg.capacity,
        contention=cfg.contention,
        allocation_mode=cfg.allocation_mode,
    )
    manager = Manager(sim, [worker])
    recorder = MetricsRecorder(worker, sample_interval=cfg.sample_interval)
    recorder.start()
    policy.attach(worker)

    submissions = []
    for spec in specs:
        job = spec.build_job()
        profile = MODEL_ZOO[spec.model_key]
        submissions.append(
            JobSubmission(
                label=spec.label,
                job=job,
                submit_time=spec.submit_time,
                image=profile.image,
            )
        )
    manager.submit_all(submissions)

    expected = len(specs)
    # Step until every job completes; periodic recorder/scheduler events
    # would keep an unconditional run() alive forever.
    while len(recorder.completions) < expected:
        if cfg.horizon is not None and sim.now >= cfg.horizon:
            break
        event = sim.step()
        if event is None:
            raise ExperimentError(
                f"simulation stalled at t={sim.now:.1f}s with "
                f"{len(recorder.completions)}/{expected} jobs complete"
            )

    recorder.stop()
    policy.detach()

    if len(recorder.completions) < expected and cfg.horizon is None:
        raise ExperimentError("run ended with incomplete jobs")

    return RunResult(
        policy_name=policy.name,
        summary=recorder.summary(),
        recorder=recorder,
        sim=sim,
        worker=worker,
        manager=manager,
    )
