"""The unified cluster runner: one call = one simulation run.

Every experiment in the repository — single-node paper reproductions,
multi-worker scaling studies, open-arrival admission-queue stress runs —
is one invocation of :func:`run_cluster`: assemble a fresh simulator, the
workers (homogeneous or heterogeneous capacities, bounded or unbounded
admission slots), a manager with a pluggable placement policy, one
metrics recorder and one policy instance per worker; submit the
workload; step until every job completes; return a :class:`RunResult`.

``n_workers=1`` is the degenerate case and reproduces the historical
single-worker runner bit-for-bit (asserted against a golden fixture in
``tests/experiments/test_cluster_runner.py``).  :func:`run_scenario`
remains as a thin single-worker wrapper, so FlowCon-vs-NA comparisons
still read the same: call twice with the same workload specs and
simulation config — identical substrate, identical seeds, only the
policy differs.  Multi-worker runs call :func:`run_cluster` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.admission import AdmissionPolicy
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.fabric import FabricPolicy
from repro.cluster.failures import FailureInjector
from repro.cluster.fleet import FleetTicker
from repro.cluster.shards import ShardedExecutor
from repro.cluster.manager import Manager
from repro.cluster.placement import PlacementPolicy
from repro.cluster.rebalance import RebalancePolicy
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.config import SimulationConfig
from repro.core.policy import SchedulingPolicy
from repro.errors import ExperimentError, MetricsError
from repro.metrics.recorder import ContainerTrace, MetricsRecorder
from repro.metrics.sketch import StreamMetrics
from repro.metrics.summary import RunSummary
from repro.simcore.engine import Simulator
from repro.simcore.events import EventKind
from repro.workloads.generator import WorkloadSpec, WorkloadStream
from repro.workloads.models import MODEL_ZOO

__all__ = [
    "RunResult",
    "run_cluster",
    "run_scenario",
    "scaling_study",
]

#: A zero-argument builder of a fresh policy (one instance per worker).
PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass
class RunResult:
    """Everything observed during one cluster run.

    One result type for every cluster size: per-worker policies and
    recorders are keyed by worker name; the ``worker`` / ``recorder``
    conveniences expose the first (single-node runs' only) worker.
    """

    policy_name: str
    summary: RunSummary
    sim: Simulator
    manager: Manager
    workers: list[Worker]
    policies: dict[str, SchedulingPolicy]
    recorders: dict[str, MetricsRecorder]

    # -- single-node conveniences --------------------------------------------------

    @property
    def worker(self) -> Worker:
        """The first worker (the only one of an ``n_workers=1`` run)."""
        return self.workers[0]

    @property
    def recorder(self) -> MetricsRecorder:
        """The first worker's recorder."""
        return self.recorders[self.workers[0].name]

    # -- cluster views -------------------------------------------------------------

    @property
    def per_worker(self) -> dict[str, list[str]]:
        """Worker name → labels of the jobs it completed."""
        return {
            name: [c.label for c in recorder.completions]
            for name, recorder in self.recorders.items()
        }

    def trace(self, label: str) -> ContainerTrace:
        """A job's recorded trace, wherever in the cluster it ran."""
        for recorder in self.recorders.values():
            for trace in recorder.traces.values():
                if trace.label == label:
                    return trace
        raise ExperimentError(f"no trace recorded for label {label!r}")

    def completion_times(self) -> dict[str, float]:
        """label → completion time across all workers."""
        return self.summary.completion_times()

    @property
    def makespan(self) -> float:
        """First submission to last completion, cluster-wide."""
        return self.summary.makespan


def _per_worker_values(name, value, n, default):
    """Broadcast a scalar-or-sequence runner argument to ``n`` workers."""
    if value is None:
        return [default] * n
    if isinstance(value, (int, float)):
        return [value] * n
    values = list(value)
    if len(values) != n:
        raise ExperimentError(
            f"got {len(values)} {name} values for {n} workers"
        )
    return values


def run_cluster(
    specs: list[WorkloadSpec] | WorkloadStream,
    policy: SchedulingPolicy | PolicyFactory,
    sim_config: SimulationConfig | None = None,
    *,
    n_workers: int = 1,
    placement: PlacementPolicy | str | None = None,
    rebalance: RebalancePolicy | str | None = None,
    admission: AdmissionPolicy | str | None = None,
    autoscale: AutoscalePolicy | str | None = None,
    failures: FailureInjector | str | None = None,
    fabric: FabricPolicy | str | None = None,
    capacities: Sequence[float] | None = None,
    max_containers: int | Sequence[int | None] | None = None,
    streaming_metrics: bool | None = None,
) -> RunResult:
    """Run one workload on an ``n_workers`` cluster to completion.

    Parameters
    ----------
    specs:
        The workload (from :class:`~repro.workloads.generator
        .WorkloadGenerator` or the scenario builders), or a lazy
        :class:`~repro.workloads.generator.WorkloadStream` — the
        manager then pulls one arrival at a time instead of
        materializing the schedule (bit-identical dynamics either way).
    policy:
        Either a fresh policy *instance* (single-worker runs only;
        policies hold per-worker state) or a zero-argument factory
        building one fresh policy per worker (e.g. ``NAPolicy`` or
        ``partial(FlowConPolicy, cfg)``).
    sim_config:
        Substrate parameters; defaults to :class:`SimulationConfig()`.
        ``capacity``, ``max_containers`` and ``reschedule_tolerance``
        apply to every runner-constructed worker unless overridden by
        the per-worker arguments below.
    n_workers:
        Cluster size (≥ 1); inferred from ``capacities`` when that is
        given and ``n_workers`` is left at 1.
    placement:
        Placement policy instance or registry name (``"spread"``,
        ``"binpack"``, ``"random"``, ``"affinity"``, ``"progress"``);
        default spread.
    rebalance:
        Rebalance policy instance or registry name (``"none"``,
        ``"migrate"``, ``"progress"``); ``None`` falls back to
        ``sim_config.rebalance`` (default ``"none"``, the historical
        never-migrate behaviour).
    admission:
        Admission policy instance or registry name (``"fifo"``,
        ``"backfill"``, ``"priority"``, ``"wfq"``, ``"sjf"``); ``None``
        falls back to
        ``sim_config.admission`` (default ``"fifo"``, the historical
        strict-arrival-order behaviour).
    autoscale:
        Autoscale policy instance or registry name (``"none"``,
        ``"queue_depth"``, ``"progress"``); ``None`` falls back to
        ``sim_config.autoscale`` (default ``"none"``, the historical
        fixed fleet).  Provisioned workers clone the *config* shape
        (``cfg.capacity``/``cfg.max_containers``); each gets its own
        recorder and a fresh policy instance from the factory, exactly
        like the initial fleet.
    failures:
        Failure-injector instance or spec string (``"none"``,
        ``"random"``, ``"rolling"``, ``"az_outage"``, ``"slow"``, with an
        optional durability suffix like ``"rolling:checkpoint(60)"``);
        ``None`` falls back to ``sim_config.failures`` (default
        ``"none"``, the historical fair-weather behaviour).  Jobs whose
        retry budget a crash plan exhausts land in
        ``summary.failed_jobs`` instead of the completions.
    fabric:
        Control-plane fabric instance or spec string (``"ideal"``, or a
        network fault plan like
        ``"partition(25..55):retry(max=8,base=0.5)"`` or
        ``"drop(0.05)+delay(exp,0.2)"``; see
        :mod:`repro.cluster.fabric`); ``None`` falls back to
        ``sim_config.fabric`` (default ``"ideal"``, the historical
        inline-delivery behaviour, bit-identical to the direct-call
        manager).  Jobs whose placement messages exhaust both the
        fabric's retries and their own retry budget land in
        ``summary.failed_jobs``; per-message counters surface on
        ``summary.fabric_stats``.
    capacities:
        Optional per-worker CPU capacities for heterogeneous clusters.
    max_containers:
        Optional per-worker admission slots: a scalar for all workers or
        one value per worker; ``None`` falls back to
        ``sim_config.max_containers``.
    streaming_metrics:
        When ``True``, record in bounded memory: recorders keep no
        per-container series or completion lists, the manager keeps no
        per-label maps, and every aggregate folds into one shared
        :class:`~repro.metrics.sketch.StreamMetrics` carried by
        ``summary.stream``.  ``None`` falls back to
        ``sim_config.streaming_metrics`` (default dense).

    Returns
    -------
    RunResult

    Raises
    ------
    ExperimentError
        On empty workloads or if the simulation stalls before all jobs
        complete (a genuine bug signal, not a tunable).
    """
    if not len(specs):
        raise ExperimentError("run_cluster needs at least one workload spec")
    cfg = sim_config if sim_config is not None else SimulationConfig()
    streaming = (
        streaming_metrics
        if streaming_metrics is not None
        else cfg.streaming_metrics
    )
    sink = StreamMetrics() if streaming else None
    if capacities is not None and n_workers == 1:
        n_workers = len(capacities)
    if n_workers < 1:
        raise ExperimentError(f"n_workers must be >= 1, got {n_workers!r}")
    caps = _per_worker_values("capacity", capacities, n_workers, cfg.capacity)
    slots = _per_worker_values(
        "max_containers", max_containers, n_workers, cfg.max_containers
    )

    if isinstance(policy, SchedulingPolicy):
        if n_workers > 1:
            raise ExperimentError(
                "multi-worker runs need a policy factory (one fresh policy "
                f"per worker), got the instance {policy!r}"
            )
        instance = policy
        policy_factory: PolicyFactory = lambda: instance  # noqa: E731
    else:
        policy_factory = policy

    sim = Simulator(seed=cfg.seed, trace=cfg.trace)
    executor = None
    if cfg.shards > 1:
        # Sharded single-run execution: contiguous worker shards advance
        # concurrently between manager touchpoints (see
        # repro.cluster.shards); bit-identical to both the fused and the
        # serial paths.  Config validation guarantees fleet_mode here.
        executor = ShardedExecutor(sim, shards=cfg.shards, horizon=cfg.horizon)
        executor.arm()
    elif cfg.fleet_mode:
        # Same-instant sampling ticks across workers coalesce into one
        # fused settle + segmented reallocate + shared observation pass
        # (see repro.cluster.fleet); bit-identical to the serial path.
        FleetTicker(sim).arm()
    workers = [
        Worker(
            sim,
            name=f"worker-{i}",
            capacity=caps[i],
            contention=cfg.contention,
            allocation_mode=cfg.allocation_mode,
            reschedule_tolerance=cfg.reschedule_tolerance,
            max_containers=slots[i],
        )
        for i in range(n_workers)
    ]

    def provisioned_worker(name: str) -> Worker:
        # Autoscaled nodes follow the *config* shape, not any per-worker
        # capacity/slot list (those describe the initial fleet only).
        return Worker(
            sim,
            name=name,
            capacity=cfg.capacity,
            contention=cfg.contention,
            allocation_mode=cfg.allocation_mode,
            reschedule_tolerance=cfg.reschedule_tolerance,
            max_containers=cfg.max_containers,
        )

    manager = Manager(
        sim,
        workers,
        placement=placement,
        rebalance=rebalance if rebalance is not None else cfg.rebalance,
        admission=admission if admission is not None else cfg.admission,
        autoscale=autoscale if autoscale is not None else cfg.autoscale,
        failures=failures if failures is not None else cfg.failures,
        fabric=fabric if fabric is not None else cfg.fabric,
        worker_factory=provisioned_worker,
        stream_sink=sink,
    )
    recorders: dict[str, MetricsRecorder] = {}
    policies: dict[str, SchedulingPolicy] = {}

    def instrument(worker: Worker) -> None:
        recorder = MetricsRecorder(
            worker,
            sample_interval=cfg.sample_interval,
            streaming=streaming,
            sink=sink,
        )
        recorder.start()
        recorders[worker.name] = recorder
        pol = policy_factory()
        pol.attach(worker)
        policies[worker.name] = pol

    def uninstrument(worker: Worker) -> None:
        # A retired worker's recorder keeps its completions (they are
        # part of the run); it just stops sampling, and the scheduling
        # policy tears down its periodic events.  Both are idempotent
        # with the end-of-run sweep below.
        recorders[worker.name].stop()
        policies[worker.name].detach()

    def on_worker_fail(worker: Worker) -> None:
        # A crashed worker's recorder keeps its completions (they are
        # part of the run) but stops sampling, and the scheduling policy
        # tears down its periodic events — the node is gone.
        uninstrument(worker)

    def on_worker_recover(worker: Worker) -> None:
        # Recovery re-arms like an autoscale provision: sampling resumes
        # (the recorder re-installs nothing, so completions stay
        # exactly-once) and a fresh policy attaches — executor state
        # died with the node.
        recorders[worker.name].start()
        pol = policy_factory()
        pol.attach(worker)
        policies[worker.name] = pol

    for worker in workers:
        instrument(worker)
    manager.provision_hooks.append(instrument)
    manager.retire_hooks.append(uninstrument)
    manager.fail_hooks.append(on_worker_fail)
    manager.recover_hooks.append(on_worker_recover)

    def _to_submission(spec: WorkloadSpec) -> JobSubmission:
        return JobSubmission(
            label=spec.label,
            job=spec.build_job(),
            submit_time=spec.submit_time,
            image=MODEL_ZOO[spec.model_key].image,
            tenant=spec.tenant,
            weight=spec.weight,
            priority=spec.priority,
            retry_budget=spec.retry_budget,
        )

    if isinstance(specs, WorkloadStream):
        # Lazy: the manager holds one pending arrival at a time; the
        # event heap never sees the whole schedule.
        manager.submit_stream(_to_submission(spec) for spec in specs)
    else:
        manager.submit_all([_to_submission(spec) for spec in specs])

    expected = len(specs)

    def _resolved() -> int:
        return sum(r.n_completions for r in recorders.values()) + len(
            manager.failed
        )

    # Step until every job completes or permanently fails; periodic
    # recorder/scheduler events would keep an unconditional run() alive
    # forever.  Completions only grow on container exits and permanent
    # failures only on worker crashes, so the count is recomputed on
    # those event kinds instead of every step (the per-step recount was
    # a measurable fraction of large-fleet run time).
    resolved = _resolved()
    try:
        while resolved < expected:
            if cfg.horizon is not None and sim.now >= cfg.horizon:
                break
            event = sim.step()
            if event is None:
                done = sum(r.n_completions for r in recorders.values())
                raise ExperimentError(
                    f"simulation stalled at t={sim.now:.1f}s with "
                    f"{done}/{expected} jobs complete"
                    + (
                        f" ({len(manager.failed)} failed)"
                        if manager.failed else ""
                    )
                )
            if (
                event.kind is EventKind.CONTAINER_EXIT
                or event.kind is EventKind.WORKER_FAIL
                or event.kind is EventKind.MESSAGE
            ):
                # MESSAGE events matter too: a fabric give-up fails a job
                # without any container exit or worker crash.
                resolved = _resolved()
    finally:
        if executor is not None:
            # Release the shard pool's worker processes even when the
            # run raises; the executor itself stays armed and usable
            # (a later batch would lazily respawn the pool).
            executor.close()

    for recorder in recorders.values():
        recorder.stop()
    for pol in policies.values():
        pol.detach()

    if streaming:
        n_done = sink.n_completed
        if n_done + len(manager.failed) < expected and cfg.horizon is None:
            raise ExperimentError("run ended with incomplete jobs")
        if n_done == 0:
            raise MetricsError("no jobs completed within the horizon")
        summary = RunSummary(
            completions=[],
            peak_queue_len=manager.peak_queue_len,
            migrations=dict(manager.migrations),
            migration_delays=dict(manager.migration_delays),
            fleet_timeline=tuple(manager.fleet_timeline),
            retries=dict(manager.retries),
            failed_jobs=dict(manager.failed),
            fabric_stats=manager.fabric.stats(),
            stream=sink,
        )
    else:
        completions = [c for r in recorders.values() for c in r.completions]
        if (
            len(completions) + len(manager.failed) < expected
            and cfg.horizon is None
        ):
            raise ExperimentError("run ended with incomplete jobs")
        if not completions:
            raise MetricsError("no jobs completed within the horizon")
        summary = RunSummary(
            completions=completions,
            queue_delays=dict(manager.queue_delays),
            peak_queue_len=manager.peak_queue_len,
            migrations=dict(manager.migrations),
            migration_delays=dict(manager.migration_delays),
            tenants=dict(manager.tenants),
            fleet_timeline=tuple(manager.fleet_timeline),
            retries=dict(manager.retries),
            failed_jobs=dict(manager.failed),
            fabric_stats=manager.fabric.stats(),
        )

    return RunResult(
        policy_name=next(iter(policies.values())).name,
        summary=summary,
        sim=sim,
        manager=manager,
        workers=manager.workers,
        policies=policies,
        recorders=recorders,
    )


def run_scenario(
    specs: list[WorkloadSpec],
    policy: SchedulingPolicy,
    sim_config: SimulationConfig | None = None,
) -> RunResult:
    """Run one workload under one policy on a single worker.

    Thin wrapper over :func:`run_cluster` with ``n_workers=1`` — the
    paper's single-node setup.  ``policy`` is a fresh instance (policies
    hold per-run state; reusing one across runs raises).
    """
    return run_cluster(specs, policy, sim_config)


def scaling_study(
    specs: list[WorkloadSpec],
    policy_factory: PolicyFactory,
    cluster_sizes: list[int],
    *,
    sim_config: SimulationConfig | None = None,
    placement: str = "spread",
    rebalance: str | None = None,
    admission: str | None = None,
    autoscale: str | None = None,
    failures: str | None = None,
    fabric: str | None = None,
    workers: int = 1,
):
    """Run one workload across several cluster sizes, optionally in parallel.

    The §3.1 scaling question — "how does makespan move as workers are
    added?" — is one independent simulation per cluster size, so it runs
    through the :mod:`~repro.experiments.batch` runner: ``workers=N``
    executes the sizes N-wide with identical results.

    Parameters
    ----------
    specs:
        The workload, reused identically for every cluster size.
    policy_factory:
        Picklable zero-argument policy builder (fresh instance per
        simulated worker).
    cluster_sizes:
        Simulated worker counts to evaluate (each ≥ 1).
    sim_config:
        Substrate parameters shared by every run.
    placement:
        Placement-policy registry name shared by every run.
    rebalance:
        Rebalance-policy registry name shared by every run; ``None``
        defers to ``sim_config.rebalance``.
    admission / autoscale / failures / fabric:
        Admission-/autoscale-policy registry names, failure-injector
        spec and control-plane fabric spec shared by every run;
        ``None`` defers to the config defaults.
    workers:
        *Host* process count for the batch runner (unrelated to the
        simulated cluster sizes).

    Returns
    -------
    list[repro.experiments.batch.RunRecord]
        One record per cluster size, in ``cluster_sizes`` order.
    """
    from repro.experiments.batch import RunTask, run_tasks

    if not cluster_sizes:
        raise ExperimentError("scaling_study needs at least one cluster size")
    cfg = sim_config if sim_config is not None else SimulationConfig(trace=False)
    tasks = [
        RunTask(
            index=i,
            specs=tuple(specs),
            policy_factory=policy_factory,
            sim_config=cfg,
            n_workers=n,
            placement=placement,
            rebalance=rebalance,
            admission=admission,
            autoscale=autoscale,
            failures=failures,
            fabric=fabric,
            label=f"{n}-worker",
        )
        for i, n in enumerate(cluster_sizes)
    ]
    return run_tasks(tasks, workers=workers)
