"""Experiment harness: scenario runners and figure/table generators.

Every table and figure in the paper's §5 has a generator here (see the
per-experiment index in DESIGN.md §4).  The layering is:

* :mod:`~repro.experiments.runner` — the unified cluster runner: one
  policy-agnostic "run this workload on this cluster" engine covering
  single-worker paper runs, multi-worker scaling and admission-queue
  stress, returning one :class:`~repro.experiments.runner.RunResult`;
* :mod:`~repro.experiments.batch` — parallel batch execution of many
  independent runs (process-pool fan-out with compact records);
* :mod:`~repro.experiments.scenarios` — the paper's workloads (fixed
  3-job, random 5/10/15-job) plus the large-scale 50-job stress mix and
  the cluster-scale 200-job open-arrival / heterogeneous scenarios;
* :mod:`~repro.experiments.figures` / :mod:`~repro.experiments.tables` —
  one function per figure/table producing plain data structures;
* :mod:`~repro.experiments.report` — ASCII rendering used by the benches.
"""

from repro.experiments.batch import RunRecord, RunTask, run_many, run_tasks
from repro.experiments.runner import (
    RunResult,
    run_cluster,
    run_scenario,
    scaling_study,
)
from repro.experiments.scenarios import (
    ClusterScenario,
    fifty_job,
    fixed_three_job,
    heterogeneous_cluster,
    imbalanced_cluster,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
    two_hundred_job,
)
from repro.experiments.validate import validate_reproduction

__all__ = [
    "ClusterScenario",
    "RunRecord",
    "RunResult",
    "RunTask",
    "fifty_job",
    "fixed_three_job",
    "heterogeneous_cluster",
    "imbalanced_cluster",
    "random_fifteen_job",
    "random_five_job",
    "random_ten_job",
    "run_cluster",
    "run_many",
    "run_scenario",
    "run_tasks",
    "scaling_study",
    "two_hundred_job",
    "validate_reproduction",
]
