"""Experiment harness: scenario runners and figure/table generators.

Every table and figure in the paper's §5 has a generator here (see the
per-experiment index in DESIGN.md §4).  The layering is:

* :mod:`~repro.experiments.runner` — policy-agnostic "run this workload
  under this policy" engine, returning completion summaries and traces;
* :mod:`~repro.experiments.scenarios` — the paper's workloads (fixed
  3-job, random 5/10/15-job);
* :mod:`~repro.experiments.figures` / :mod:`~repro.experiments.tables` —
  one function per figure/table producing plain data structures;
* :mod:`~repro.experiments.report` — ASCII rendering used by the benches.
"""

from repro.experiments.multiworker import MultiWorkerResult, run_multi_worker
from repro.experiments.runner import RunResult, run_scenario
from repro.experiments.scenarios import (
    fixed_three_job,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
)
from repro.experiments.validate import validate_reproduction

__all__ = [
    "MultiWorkerResult",
    "RunResult",
    "fixed_three_job",
    "random_fifteen_job",
    "random_five_job",
    "random_ten_job",
    "run_multi_worker",
    "run_scenario",
    "validate_reproduction",
]
