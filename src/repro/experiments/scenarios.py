"""The paper's evaluation workloads (§5.2–§5.5).

Scenario builders return :class:`~repro.workloads.generator.WorkloadSpec`
lists.  Random scenarios are seeded and reproducible; the *same* spec list
is fed to each policy being compared, so job sizes and arrival times are
identical across FlowCon/NA runs.
"""

from __future__ import annotations

import numpy as np

from repro.simcore.rng import derive_seed
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

__all__ = [
    "fixed_three_job",
    "random_five_job",
    "random_ten_job",
    "random_fifteen_job",
    "fifty_job",
]


def fixed_three_job() -> list[WorkloadSpec]:
    """§5.3's fixed schedule.

    "VAE on Pytorch starts at 0s, MNIST on Pytorch begins at 40s, and
    MNIST on Tensorflow launches at 80s."
    """
    return WorkloadGenerator.paper_fixed_three_job()


def _rng(seed: int, name: str) -> np.random.Generator:
    return np.random.default_rng(derive_seed(seed, name))


def random_five_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.4's random schedule: five models, arrivals ~ U(0, 200) s.

    The five models are the paper's mix — LSTM-CFC, VAE (PyTorch),
    VAE (TensorFlow), MNIST (PyTorch) and GRU — labelled Job-1 … Job-5
    in arrival order.
    """
    gen = WorkloadGenerator(_rng(seed, "random5"))
    return gen.paper_random_five()


def random_ten_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.5.1's scalability workload: 10 jobs, arrivals ~ U(0, 200) s."""
    gen = WorkloadGenerator(_rng(seed, "random10"))
    return gen.random_mix(10)


def random_fifteen_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.5.2's scalability workload: 15 jobs, arrivals ~ U(0, 200) s."""
    gen = WorkloadGenerator(_rng(seed, "random15"))
    return gen.random_mix(15)


def fifty_job(
    seed: int = 42, *, window: tuple[float, float] = (0.0, 600.0)
) -> list[WorkloadSpec]:
    """Large-scale stress workload: 50 jobs drawn from the paper pool.

    Beyond the paper's 15-job ceiling — the scenario its Figs. 12–17
    scalability trend points toward.  Arrivals default to U(0, 600) s
    (the 10-job density of U(0, 200) scaled ~3×) so a single node sees
    sustained deep oversubscription rather than one instantaneous burst.
    Intended for the vectorized settlement/exit-rescheduling hot path and
    the multi-worker scaling studies; pair with ``trace=False`` configs.
    """
    gen = WorkloadGenerator(_rng(seed, "random50"))
    return gen.random_mix(50, window=window)
