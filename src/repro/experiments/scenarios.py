"""The paper's evaluation workloads (§5.2–§5.5) and cluster-scale extensions.

Scenario builders return :class:`~repro.workloads.generator.WorkloadSpec`
lists.  Random scenarios are seeded and reproducible; the *same* spec list
is fed to each policy being compared, so job sizes and arrival times are
identical across FlowCon/NA runs.

Beyond the paper's single-node workloads, :func:`two_hundred_job` is a
Poisson open-arrival stream sized for the admission-queue/placement layer
(200 jobs against an 8-worker cluster), and :func:`heterogeneous_cluster`
bundles a workload with a mixed big/small worker fleet as a
:class:`ClusterScenario` ready for
:func:`~repro.experiments.runner.run_cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.simcore.rng import derive_seed
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    WorkloadStream,
    make_stream,
)

__all__ = [
    "fixed_three_job",
    "random_five_job",
    "random_ten_job",
    "random_fifteen_job",
    "fifty_job",
    "two_hundred_job",
    "two_thousand_job",
    "diurnal_cluster",
    "million_job_day",
    "ClusterScenario",
    "heterogeneous_cluster",
    "imbalanced_cluster",
    "multi_tenant",
    "elastic_cluster",
    "rolling_restart",
    "az_outage",
    "slow_node",
    "network_partition",
    "gray_network",
]


def fixed_three_job() -> list[WorkloadSpec]:
    """§5.3's fixed schedule.

    "VAE on Pytorch starts at 0s, MNIST on Pytorch begins at 40s, and
    MNIST on Tensorflow launches at 80s."
    """
    return WorkloadGenerator.paper_fixed_three_job()


def _rng(seed: int, name: str) -> np.random.Generator:
    return np.random.default_rng(derive_seed(seed, name))


def random_five_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.4's random schedule: five models, arrivals ~ U(0, 200) s.

    The five models are the paper's mix — LSTM-CFC, VAE (PyTorch),
    VAE (TensorFlow), MNIST (PyTorch) and GRU — labelled Job-1 … Job-5
    in arrival order.
    """
    gen = WorkloadGenerator(_rng(seed, "random5"))
    return gen.paper_random_five()


def random_ten_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.5.1's scalability workload: 10 jobs, arrivals ~ U(0, 200) s."""
    gen = WorkloadGenerator(_rng(seed, "random10"))
    return gen.random_mix(10)


def random_fifteen_job(seed: int = 42) -> list[WorkloadSpec]:
    """§5.5.2's scalability workload: 15 jobs, arrivals ~ U(0, 200) s."""
    gen = WorkloadGenerator(_rng(seed, "random15"))
    return gen.random_mix(15)


def fifty_job(
    seed: int = 42, *, window: tuple[float, float] = (0.0, 600.0)
) -> list[WorkloadSpec]:
    """Large-scale stress workload: 50 jobs drawn from the paper pool.

    Beyond the paper's 15-job ceiling — the scenario its Figs. 12–17
    scalability trend points toward.  Arrivals default to U(0, 600) s
    (the 10-job density of U(0, 200) scaled ~3×) so a single node sees
    sustained deep oversubscription rather than one instantaneous burst.
    Intended for the vectorized settlement/exit-rescheduling hot path and
    the multi-worker scaling studies; pair with ``trace=False`` configs.
    """
    gen = WorkloadGenerator(_rng(seed, "random50"))
    return gen.random_mix(50, window=window)


def two_hundred_job(
    seed: int = 42, *, n_jobs: int = 200, mean_gap: float = 3.0
) -> list[WorkloadSpec]:
    """Cluster-scale open-arrival stream: 200 jobs, Poisson arrivals.

    The workload the scheduling layer exists for: arrivals follow a
    Poisson process (Exp(``mean_gap``) inter-arrival gaps, default mean
    3 s ⇒ ~10 min of sustained load), so an 8-worker cluster with
    bounded admission slots sees real queueing — bursts outrun capacity
    and the manager's FIFO queue absorbs them.  Pair with
    ``trace=False`` configs and
    :func:`~repro.experiments.runner.run_cluster`'s ``max_containers``.
    """
    gen = WorkloadGenerator(_rng(seed, "poisson200"))
    return gen.poisson_mix(n_jobs, mean_gap=mean_gap)


def two_thousand_job(
    seed: int = 42, *, n_jobs: int = 2000, mean_gap: float = 0.375
) -> ClusterScenario:
    """Fleet-scale open-arrival stream: 2000 jobs against 64 workers.

    The fused fleet-tick workload: the same per-worker arrival pressure
    as :func:`two_hundred_job` (mean gap 3 s over 8 workers ⇒ 0.375 s
    over 64) sustained for ~10× the job count, so every sampling instant
    finds most of a 64-node fleet busy and the fleet engine's packed
    settle/reallocate pass has real width.  One slot per worker — the
    dedicated-node shape large training jobs actually get — keeps the
    admission queue live for the whole stream and makes fleet *width*
    (not per-node colocation depth, which is :func:`two_hundred_job`'s
    axis) the thing being measured.  Pair with ``trace=False`` configs;
    ``fleet_mode=True`` is what the scenario exists to measure
    (``benchmarks/bench_perf_fleet.py``).
    """
    gen = WorkloadGenerator(_rng(seed, "poisson2000"))
    return ClusterScenario(
        specs=tuple(gen.poisson_mix(n_jobs, mean_gap=mean_gap)),
        capacities=(1.0,) * 64,
        max_containers=(1,) * 64,
    )


#: The default tenant mix for stream scenarios: a flooding batch tenant
#: (3 of every 4 arrivals, weight 1) and an interactive tenant whose SLO
#: percentiles the streaming metrics track (1 in 4, weight 4).
_STREAM_TENANTS = (("batch", 3.0, 1.0), ("interactive", 1.0, 4.0))


def diurnal_cluster(
    seed: int = 42, *, n_jobs: int = 400
) -> ClusterScenario:
    """Day/night open-arrival stream against a bounded 8-worker cluster.

    The lazy sibling of :func:`two_hundred_job`: arrivals follow a
    sinusoidal rate (peak-to-trough 4, two full cycles over the stream)
    through exact Poisson thinning, with the :func:`multi_tenant` tenant
    shape riding along, so peaks outrun the fleet and troughs drain it —
    the load pattern autoscaling and streaming SLO percentiles exist
    for.  Deterministic per seed and bit-identical lazily or
    materialized; pinned by ``data/streaming_golden.json``.
    """
    stream = make_stream(
        "diurnal",
        n_jobs=n_jobs,
        seed=derive_seed(seed, "diurnal_cluster"),
        mean_gap=3.0,
        period=n_jobs * 3.0 / 2.0,
        peak_to_trough=4.0,
        work_scale=0.25,
        tenants=_STREAM_TENANTS,
    )
    return ClusterScenario(
        specs=(),
        capacities=(1.0,) * 8,
        max_containers=(2,) * 8,
        stream=stream,
        admission="wfq",
    )


def million_job_day(
    seed: int = 0,
    *,
    n_jobs: int = 1_000_000,
    n_workers: int = 256,
) -> ClusterScenario:
    """A production day: ~10⁶ short jobs against a 256-worker fleet.

    The ROADMAP's million-job north star, runnable only because nothing
    scales with the job count: the stream yields one arrival at a time
    (never a list), ``streaming_metrics`` folds every delay and
    completion into sketches, and the one-slot-per-worker fleet keeps
    the admission queue live all day.  Jobs are short (work_scale 0.05,
    ~9 CPU-s — the CI-build/ETL shape of a high-volume day) and the
    diurnal period spans the stream in two cycles, with the peak rate
    riding right at the fleet's measured completion ceiling (~19 jobs/s
    at 256 workers): crests queue for real (p95 queue delay ~27 s),
    troughs drain fully, and the admission backlog — the only state
    that could grow — stays heavy-traffic-bounded rather than scaling
    with the day's length, which is what makes the bounded-RSS claim
    independent of the arrival count.
    ``benchmarks/bench_perf_million.py`` runs the CI-sized shape
    (``n_jobs=100_000``) and asserts bounded RSS against a 10× smaller
    run.  Pair with ``trace=False, fleet_mode=True,
    streaming_metrics=True`` configs.
    """
    mean_gap = 0.08 * (256.0 / n_workers)
    stream = make_stream(
        "diurnal",
        n_jobs=n_jobs,
        seed=derive_seed(seed, "million_job_day"),
        mean_gap=mean_gap,
        period=n_jobs * mean_gap / 2.0,
        peak_to_trough=3.0,
        work_scale=0.05,
        tenants=_STREAM_TENANTS,
    )
    return ClusterScenario(
        specs=(),
        capacities=(1.0,) * n_workers,
        max_containers=(1,) * n_workers,
        stream=stream,
    )


@dataclass(frozen=True)
class ClusterScenario:
    """A workload bundled with the cluster shape it is meant to stress.

    Feed directly to :func:`~repro.experiments.runner.run_cluster`::

        sc = heterogeneous_cluster(seed=7)
        result = run_cluster(list(sc.specs), NAPolicy,
                             capacities=sc.capacities,
                             max_containers=sc.max_containers)
    """

    specs: tuple[WorkloadSpec, ...]
    capacities: tuple[float, ...]
    max_containers: tuple[int, ...]
    #: Lazy workload for stream-shaped scenarios; when set, ``specs`` is
    #: empty and :attr:`workload` hands the stream to the runner.
    stream: WorkloadStream | None = None
    #: Admission policy the scenario is built to stress ("fifo" keeps
    #: the historical behaviour); purely a recommendation — runners may
    #: override.
    admission: str = "fifo"
    #: Autoscale policy the scenario is built to stress ("none" keeps
    #: the fleet fixed); purely a recommendation.
    autoscale: str = "none"
    #: Rebalance policy the scenario is built to stress ("none" never
    #: migrates); purely a recommendation.
    rebalance: str = "none"
    #: Failure-injector spec the scenario is built to stress ("none"
    #: injects nothing); purely a recommendation — the chaos benches
    #: override the durability suffix to compare lost vs checkpoint.
    failures: str = "none"
    #: Control-plane fabric spec the scenario is built to stress
    #: ("ideal" delivers inline); purely a recommendation — the fabric
    #: bench overrides the retry suffix to compare retry vs noretry.
    fabric: str = "ideal"

    @property
    def n_workers(self) -> int:
        """Cluster size implied by the capacity list."""
        return len(self.capacities)

    @property
    def workload(self) -> WorkloadStream | list[WorkloadSpec]:
        """What to feed the runner: the lazy stream when present."""
        if self.stream is not None:
            return self.stream
        return list(self.specs)

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """Distinct tenants appearing in the workload, sorted."""
        if self.stream is not None:
            tenants = dict(self.stream.params).get("tenants")
            if not tenants:
                return ()
            return tuple(sorted({name for name, _, _ in tenants}))
        return tuple(
            sorted({s.tenant for s in self.specs if s.tenant is not None})
        )


def heterogeneous_cluster(
    seed: int = 42, *, n_jobs: int = 60
) -> ClusterScenario:
    """Mixed-fleet scenario: 4 big + 4 small workers, open arrivals.

    Big workers have twice the CPU capacity and twice the admission
    slots of small ones — the shape real clusters drift into after a
    hardware refresh.  Placement policy choice matters here (spread
    treats unequal nodes alike; binpack saturates the big nodes first),
    which is what the scenario exists to expose.
    """
    gen = WorkloadGenerator(_rng(seed, "hetero"))
    specs = gen.poisson_mix(n_jobs, mean_gap=6.0)
    return ClusterScenario(
        specs=tuple(specs),
        capacities=(1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5),
        max_containers=(4, 4, 4, 4, 2, 2, 2, 2),
    )


def imbalanced_cluster(
    seed: int = 42, *, n_jobs: int = 16
) -> ClusterScenario:
    """Straggler scenario: one badly undersized worker, burst arrivals.

    Three full-size workers plus one at a quarter of their capacity —
    the node nobody decommissioned — hit by a burst of jobs inside a
    30 s window.  Count-based spread placement splits the burst evenly,
    so a quarter of the jobs land on the straggler and, without
    rebalancing, crawl for the whole run while the fast workers drain
    and sit idle: exactly the "bad early placement persists" failure the
    rebalance layer exists for.  ``bench_perf_rebalance.py`` measures
    the makespan recovered by migrate-on-exit and progress-aware
    rebalancing on this shape.
    """
    gen = WorkloadGenerator(_rng(seed, "imbalanced"))
    specs = gen.random_mix(n_jobs, window=(0.0, 30.0))
    return ClusterScenario(
        specs=tuple(specs),
        capacities=(1.0, 1.0, 1.0, 0.25),
        max_containers=(8, 8, 8, 8),
    )


def multi_tenant(
    seed: int = 42,
    *,
    n_jobs: int = 80,
    heavy_share: int = 4,
    light_weight: float = 4.0,
) -> ClusterScenario:
    """Two unequal-weight tenants sharing one bounded cluster.

    The fairness stress the ``wfq`` admission policy exists for: a
    ``"batch"`` tenant floods the Poisson open-arrival stream
    (``heavy_share − 1`` of every ``heavy_share`` jobs, weight 1) while
    an ``"interactive"`` tenant submits the rest at ``light_weight``×
    the weight.  Under FIFO the interactive jobs queue behind the
    flood; weighted fair queueing drains the two tenants in proportion
    to their weights, which is what cuts the light tenant's p95 queue
    delay (asserted in ``bench_perf_admission.py``).  Tenant
    assignment is deterministic (every ``heavy_share``-th arrival is
    interactive), so the *same* spec list compared across admission
    policies isolates the drain order.
    """
    gen = WorkloadGenerator(_rng(seed, "multitenant"))
    specs = [
        replace(
            spec,
            tenant="interactive" if i % heavy_share == 0 else "batch",
            weight=light_weight if i % heavy_share == 0 else 1.0,
        )
        for i, spec in enumerate(gen.poisson_mix(n_jobs, mean_gap=2.0))
    ]
    return ClusterScenario(
        specs=tuple(specs),
        capacities=(1.0, 1.0, 1.0, 1.0),
        max_containers=(2, 2, 2, 2),
        admission="wfq",
    )


def elastic_cluster(
    seed: int = 42, *, n_jobs: int = 48
) -> ClusterScenario:
    """Bursty arrivals against a deliberately undersized initial fleet.

    The autoscaling stress: two bounded workers face a Poisson stream
    whose bursts outrun them by a wide margin, so the admission queue
    grows deep and stays there for minutes — exactly the depth/backlog
    signal the ``queue_depth`` and ``progress`` autoscale policies
    consume to provision workers (and, once the stream dries up, to
    retire the extras).  Run with ``autoscale="none"`` for the baseline
    queueing behaviour the policies are measured against.
    """
    gen = WorkloadGenerator(_rng(seed, "elastic"))
    specs = gen.poisson_mix(n_jobs, mean_gap=4.0)
    return ClusterScenario(
        specs=tuple(specs),
        capacities=(1.0, 1.0),
        max_containers=(3, 3),
        autoscale="queue_depth",
    )


def _with_retry_budget(
    specs: list[WorkloadSpec], retry_budget: int
) -> tuple[WorkloadSpec, ...]:
    return tuple(replace(s, retry_budget=retry_budget) for s in specs)


def rolling_restart(
    seed: int = 42, *, n_jobs: int = 16, retry_budget: int = 8
) -> ClusterScenario:
    """Maintenance-wave scenario: every worker restarts once, in turn.

    Four bounded workers absorb a 60 s burst of jobs, then the
    ``rolling`` injector takes each node down for 30 s in sequence
    (one every 90 s, starting at t=60) — a kernel-upgrade wave hitting
    a loaded cluster.  Every crash orphans mid-flight containers, so
    the durability model dominates: under ``lost`` each wave restarts
    its victims from zero, under ``checkpoint`` they resume from the
    last periodic snapshot.  ``bench_perf_chaos.py`` measures the
    makespan gap between the two on this shape.  The generous default
    retry budget keeps jobs alive through repeated bad luck so the
    comparison is about recovered work, not attrition.
    """
    gen = WorkloadGenerator(_rng(seed, "rolling"))
    specs = gen.random_mix(n_jobs, window=(0.0, 60.0))
    return ClusterScenario(
        specs=_with_retry_budget(specs, retry_budget),
        capacities=(1.0, 1.0, 1.0, 1.0),
        max_containers=(6, 6, 6, 6),
        failures="rolling:checkpoint",
    )


def az_outage(
    seed: int = 42, *, n_jobs: int = 20, retry_budget: int = 8
) -> ClusterScenario:
    """Correlated-failure scenario: half the fleet vanishes at once.

    Six bounded workers take a Poisson stream; at t=120 an
    "availability zone" holding half of them goes dark for 120 s, then
    every lost node rejoins together.  The surviving half inherits the
    orphans *and* the still-arriving stream, so admission queueing,
    re-placement and recovery re-arming all act in the same window —
    the correlated-failure shape that per-node fault models miss.
    """
    gen = WorkloadGenerator(_rng(seed, "azoutage"))
    specs = gen.poisson_mix(n_jobs, mean_gap=8.0)
    return ClusterScenario(
        specs=_with_retry_budget(specs, retry_budget),
        capacities=(1.0,) * 6,
        max_containers=(4,) * 6,
        failures="az_outage:checkpoint",
    )


def slow_node(
    seed: int = 42, *, n_jobs: int = 16, retry_budget: int = 8
) -> ClusterScenario:
    """Fail-slow scenario: one worker silently degrades, nothing crashes.

    Four workers split a burst of jobs; at t=60 one of them drops to a
    quarter of its capacity for four minutes (a thermal-throttled or
    half-failed node), then recovers.  No containers are orphaned —
    the victims just crawl — which is exactly the failure mode crash
    detection never sees and progress-aware rebalancing does: pair
    with ``rebalance="progress"`` to watch the stragglers migrate off
    the sick node, or ``"none"`` to measure the undisturbed damage.
    """
    gen = WorkloadGenerator(_rng(seed, "slownode"))
    specs = gen.random_mix(n_jobs, window=(0.0, 30.0))
    return ClusterScenario(
        specs=_with_retry_budget(specs, retry_budget),
        capacities=(1.0, 1.0, 1.0, 1.0),
        max_containers=(6, 6, 6, 6),
        rebalance="progress",
        failures="slow",
    )


def network_partition(
    seed: int = 42, *, n_jobs: int = 60
) -> ClusterScenario:
    """Split-brain scenario: half the fleet goes unreachable for 30 s.

    Six bounded workers take a dense Poisson stream; between t=25 and
    t=55 the control-plane fabric partitions the second half of the
    fleet away from the manager — the *nodes* keep running whatever
    they hold, but placements, exit notifications and everything else
    crossing the wire toward them is dropped.  The default fabric arms
    capped-exponential retries sized so at least one resend always
    lands after the heal (8 retries, 0.5 s base, 8 s cap ≈ a 40 s
    span); the ``:noretry`` variant gives up on first loss and
    discovers lost exits only when reconciliation fires.  Jobs carry
    **zero** crash-retry budget, so one undeliverable placement is a
    permanently failed job — which is exactly the difference
    ``bench_perf_fabric.py`` measures: retry/backoff must beat noretry
    on both makespan and failed-job count.
    """
    gen = WorkloadGenerator(_rng(seed, "netpartition"))
    # Short jobs (~10 CPU-s) at a dense arrival rate: exits and
    # queue-drain placements flow *during* the 30 s fault window —
    # lost exit notifications leave the manager blind to freed dark
    # slots, which is what the retry layer has to recover from.
    specs = [
        replace(s, work_scale=0.025)
        for s in gen.poisson_mix(n_jobs, mean_gap=1.0)
    ]
    return ClusterScenario(
        specs=_with_retry_budget(specs, 0),
        capacities=(1.0,) * 6,
        max_containers=(2,) * 6,
        fabric=(
            "partition(25..55)"
            ":retry(max=8,base=0.5,cap=8.0,jitter=0.1,reconcile=45)"
        ),
    )


def gray_network(
    seed: int = 42, *, n_jobs: int = 24, factor: float = 6.0
) -> ClusterScenario:
    """Gray-failure scenario: one link silently degrades, nothing heals.

    Four bounded workers take a Poisson stream, but the link to one of
    them drops most traffic and multiplies the latency of what gets
    through — the flaky ToR port monitoring never flags because the
    node itself is healthy.  Unlike :func:`network_partition` there is
    no heal window: every message toward the gray node needs the
    retry/backoff layer for its whole lifetime, which makes the
    scenario the steady-state stress for timeout tuning and duplicate
    suppression (resends can race a slow original).
    """
    gen = WorkloadGenerator(_rng(seed, "graynet"))
    specs = [
        replace(s, work_scale=0.05)
        for s in gen.poisson_mix(n_jobs, mean_gap=3.0)
    ]
    return ClusterScenario(
        specs=_with_retry_budget(specs, 2),
        capacities=(1.0,) * 4,
        max_containers=(2,) * 4,
        fabric=(
            f"delay(const,0.05)+gray_link(worker-3,{factor:g})"
            ":retry(max=6,base=0.5,cap=4.0,jitter=0.1,reconcile=30)"
        ),
    )
