"""Parallel batch execution of scenario runs.

The sweep, robustness and multi-worker studies all reduce to the same
shape: *many independent simulation runs whose results are aggregated
afterwards*.  This module turns that shape into data — a list of
pickle-friendly :class:`RunTask` descriptions — and executes it either
serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
following the registry-driven batch-runner idiom of the related
experiment harnesses.

Determinism
-----------
Each task carries its own :class:`~repro.config.SimulationConfig` (and
therefore its own seed), and every run builds a fresh simulator, so
results are bit-identical whether the batch executes serially,
in-process, or across N worker processes — task order in the result list
always matches submission order.  :func:`run_many` asserts nothing about
scheduling; parallelism only changes wall-clock time.

What crosses the process boundary
---------------------------------
A full :class:`~repro.metrics.recorder.MetricsRecorder` holds every
per-container step series of a run — far too heavy to pickle back per
task.  Workers therefore return a compact :class:`RunRecord`: the
completion records (enough to rebuild a :class:`RunSummary` and hence
every §5.2 metric), the event count, and the wall time.  Callers that
need full traces should run those scenarios directly via
:func:`~repro.experiments.runner.run_scenario`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import SimulationConfig
from repro.core.policy import SchedulingPolicy
from repro.errors import ExperimentError
from repro.metrics.sketch import StreamMetrics
from repro.metrics.summary import CompletionRecord, RunSummary
from repro.workloads.generator import WorkloadSpec, WorkloadStream

__all__ = ["RunTask", "RunRecord", "run_tasks", "run_many", "default_workers"]

#: A zero-argument factory producing a fresh policy for one run.  Must be
#: picklable for multi-process execution: a policy *class* (``NAPolicy``),
#: a top-level function, or ``functools.partial`` of either.
PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass(frozen=True)
class RunTask:
    """One independent simulation run, described by value.

    Attributes
    ----------
    index:
        Position in the batch; records come back in index order.
    specs:
        The workload for this run: a materialized spec tuple, or a lazy
        :class:`~repro.workloads.generator.WorkloadStream` (frozen and
        tuple-parameterized, so it pickles by value and regenerates
        identically inside any worker process).
    policy_factory:
        Zero-argument, picklable builder of a fresh policy instance.
    sim_config:
        Substrate parameters *including the seed* for this run.
    n_workers:
        Simulated cluster size for the unified
        :func:`~repro.experiments.runner.run_cluster` runner.
    placement:
        Placement-policy registry name (see
        :mod:`repro.cluster.placement`); carried by name so tasks stay
        picklable across the process pool.
    rebalance:
        Rebalance-policy registry name (see
        :mod:`repro.cluster.rebalance`); carried by name for the same
        picklability reason.  ``None`` defers to
        ``sim_config.rebalance``.
    admission:
        Admission-policy registry name (see
        :mod:`repro.cluster.admission`); carried by name (tenant
        weights ride the workload specs).  ``None`` defers to
        ``sim_config.admission``.
    autoscale:
        Autoscale-policy registry name (see
        :mod:`repro.cluster.autoscale`); carried by name.  ``None``
        defers to ``sim_config.autoscale``.
    failures:
        Failure-injector spec string (see
        :mod:`repro.cluster.failures`); carried by spec for the same
        picklability reason.  ``None`` defers to
        ``sim_config.failures``.
    fabric:
        Control-plane fabric spec string (see
        :mod:`repro.cluster.fabric`); carried by spec for the same
        picklability reason.  ``None`` defers to
        ``sim_config.fabric``.
    capacities:
        Optional per-worker CPU capacities (heterogeneous clusters).
    max_containers:
        Optional per-worker admission-slot bound (scalar applies to all
        workers); ``None`` defers to ``sim_config.max_containers``.
    label:
        Free-form tag carried through to the record (grid coordinates,
        scenario name, ...).
    """

    index: int
    specs: tuple[WorkloadSpec, ...] | WorkloadStream
    policy_factory: PolicyFactory
    sim_config: SimulationConfig
    n_workers: int = 1
    placement: str = "spread"
    rebalance: str | None = None
    admission: str | None = None
    autoscale: str | None = None
    failures: str | None = None
    fabric: str | None = None
    capacities: tuple[float, ...] | None = None
    max_containers: int | tuple[int | None, ...] | None = None
    label: str = ""


@dataclass(frozen=True)
class RunRecord:
    """Compact, pickle-friendly result of one batch run.

    ``queue_delays``/``peak_queue_len`` carry the manager's admission-
    queue observations (empty/zero for unbounded clusters);
    ``migrations``/``migration_delays`` carry the rebalancer's (empty
    under ``rebalance="none"``); ``tenants`` carries the label → tenant
    map of multi-tenant runs and ``fleet_timeline`` the autoscaler's
    ``(time, worker count)`` trajectory.  ``retries``/``failed_jobs``
    carry the failure injector's crash-restart counts and
    retry-exhausted jobs (empty under ``failures="none"``), and
    ``fabric_stats`` the fabric's per-message counters (sends only
    under ``fabric="ideal"``).

    Streaming runs come back with ``completions=()`` and the run's
    :class:`~repro.metrics.sketch.StreamMetrics` in ``stream`` (sketches
    are plain numpy state, so the record stays compact and picklable);
    :meth:`summary` then rebuilds a streaming-mode
    :class:`RunSummary` whose aggregate views mix freely with dense
    records in a sweep.
    """

    index: int
    label: str
    policy_name: str
    seed: int
    n_workers: int
    completions: tuple[CompletionRecord, ...]
    events_processed: int
    wall_time: float
    queue_delays: tuple[tuple[str, float], ...] = ()
    peak_queue_len: int = 0
    migrations: tuple[tuple[str, int], ...] = ()
    migration_delays: tuple[tuple[str, float], ...] = ()
    tenants: tuple[tuple[str, str], ...] = ()
    fleet_timeline: tuple[tuple[float, int], ...] = ()
    retries: tuple[tuple[str, int], ...] = ()
    failed_jobs: tuple[tuple[str, tuple[int, float]], ...] = ()
    fabric_stats: tuple[tuple[str, float], ...] = ()
    stream: StreamMetrics | None = None
    makespan: float = field(init=False)

    def __post_init__(self) -> None:
        if self.stream is not None and not self.completions:
            object.__setattr__(self, "makespan", self.stream.makespan)
            return
        if not self.completions:
            raise ExperimentError("RunRecord needs at least one completion")
        start = min(c.submitted for c in self.completions)
        end = max(c.finished for c in self.completions)
        object.__setattr__(self, "makespan", end - start)

    def summary(self) -> RunSummary:
        """Rebuild the full :class:`RunSummary` (all §5.2 metrics)."""
        return RunSummary(
            completions=list(self.completions),
            queue_delays=dict(self.queue_delays),
            peak_queue_len=self.peak_queue_len,
            migrations=dict(self.migrations),
            migration_delays=dict(self.migration_delays),
            tenants=dict(self.tenants),
            fleet_timeline=self.fleet_timeline,
            retries=dict(self.retries),
            failed_jobs=dict(self.failed_jobs),
            fabric_stats=dict(self.fabric_stats),
            stream=self.stream,
        )

    def completion_times(self) -> dict[str, float]:
        """label → completion time."""
        return self.summary().completion_times()


def _reject_policy_instance(obj) -> None:
    """Fail fast when a *policy* is passed where a *factory* belongs."""
    if isinstance(obj, SchedulingPolicy):
        raise ExperimentError(
            "policy_factory must build fresh policies per run; got a "
            f"policy instance {obj!r} (policies hold per-run state)"
        )


def _execute_task(task: RunTask) -> RunRecord:
    """Run one task to completion (top-level: used from worker processes)."""
    # Imported lazily to keep worker start-up (and the module import
    # graph) light; runner imports a large slice of the package.
    from repro.experiments.runner import run_cluster

    t0 = time.perf_counter()
    workload = (
        task.specs
        if isinstance(task.specs, WorkloadStream)
        else list(task.specs)
    )
    result = run_cluster(
        workload,
        task.policy_factory,
        task.sim_config,
        n_workers=task.n_workers,
        placement=task.placement,
        rebalance=task.rebalance,
        admission=task.admission,
        autoscale=task.autoscale,
        failures=task.failures,
        fabric=task.fabric,
        capacities=task.capacities,
        max_containers=task.max_containers,
    )
    summary = result.summary
    return RunRecord(
        index=task.index,
        label=task.label,
        policy_name=result.policy_name,
        seed=task.sim_config.seed,
        n_workers=task.n_workers,
        completions=tuple(summary.completions),
        events_processed=result.sim.events_processed,
        wall_time=time.perf_counter() - t0,
        queue_delays=tuple(sorted(summary.queue_delays.items())),
        peak_queue_len=summary.peak_queue_len,
        migrations=tuple(sorted(summary.migrations.items())),
        migration_delays=tuple(sorted(summary.migration_delays.items())),
        tenants=tuple(sorted(summary.tenants.items())),
        fleet_timeline=tuple(summary.fleet_timeline),
        retries=tuple(sorted(summary.retries.items())),
        failed_jobs=tuple(sorted(summary.failed_jobs.items())),
        fabric_stats=tuple(sorted(summary.fabric_stats.items())),
        stream=summary.stream,
    )


def run_tasks(tasks: Sequence[RunTask], *, workers: int = 1) -> list[RunRecord]:
    """Execute a batch of tasks, optionally across worker processes.

    Parameters
    ----------
    tasks:
        The batch; each task is independent and self-describing.
    workers:
        Process count.  ``1`` (default) runs in-process with zero
        pickling overhead; ``N > 1`` fans out over a process pool.
        Results are identical either way and always come back in task
        order.

    Notes
    -----
    Worker processes are spawned per call (no persistent pool), so the
    cost model is ``fork + import`` once per call, amortized over
    ``len(tasks) / workers`` runs per process.  Batches of a handful of
    sub-second runs are faster with ``workers=1``.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers!r}")
    tasks = list(tasks)
    if not tasks:
        return []
    if workers == 1 or len(tasks) == 1:
        return [_execute_task(task) for task in tasks]
    max_workers = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (max_workers * 4))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        try:
            return list(pool.map(_execute_task, tasks, chunksize=chunksize))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # Unpicklable payloads surface as different exception types
            # depending on where serialization fails (PicklingError for
            # unresolvable globals, AttributeError for local objects,
            # TypeError for unpicklable values).
            if "pickle" not in str(exc).lower():
                raise
            raise ExperimentError(
                "batch tasks must be picklable to cross the process "
                "boundary (workers > 1): use a policy class, a top-level "
                f"factory function, or functools.partial — {exc}"
            ) from exc


def run_many(
    specs_list: Sequence[Sequence[WorkloadSpec]],
    policy_factory: PolicyFactory | Sequence[PolicyFactory],
    sim_config: SimulationConfig | None = None,
    *,
    workers: int = 1,
    seeds: Sequence[int] | None = None,
    labels: Sequence[str] | None = None,
    n_workers: int = 1,
    placement: str = "spread",
    rebalance: str | None = None,
    admission: str | None = None,
    autoscale: str | None = None,
    failures: str | None = None,
    fabric: str | None = None,
    capacities: Sequence[float] | None = None,
    max_containers: int | Sequence[int | None] | None = None,
) -> list[RunRecord]:
    """Run many scenarios under a policy, serially or in parallel.

    Parameters
    ----------
    specs_list:
        One workload per run.
    policy_factory:
        Either one zero-argument picklable factory used for every run, or
        a sequence of factories, one per run (e.g. per-cell FlowCon
        configurations of a sweep).
    sim_config:
        Substrate template shared by every run; defaults to
        ``SimulationConfig(trace=False)`` — batch runs rarely want the
        memory cost of full traces.
    workers:
        Process count for :func:`run_tasks`.
    seeds:
        Optional per-run seeds; each run's config becomes
        ``sim_config.with_params(seed=seeds[i])``.  When omitted, every
        run uses ``sim_config.seed`` — deterministic either way.
    labels:
        Optional per-run labels carried into the records.
    n_workers / placement / rebalance / admission / autoscale /
    failures / fabric / capacities / max_containers:
        Simulated-cluster shape shared by every run, forwarded to
        :func:`~repro.experiments.runner.run_cluster` (policies by
        registry name, to keep tasks picklable).

    Returns
    -------
    list[RunRecord]
        In ``specs_list`` order, independent of ``workers``.
    """
    n = len(specs_list)
    if n == 0:
        raise ExperimentError("run_many needs at least one workload")
    cfg = sim_config if sim_config is not None else SimulationConfig(trace=False)
    _reject_policy_instance(policy_factory)
    if callable(policy_factory):
        factories: list[PolicyFactory] = [policy_factory] * n
    else:
        factories = list(policy_factory)
        if len(factories) != n:
            raise ExperimentError(
                f"got {len(factories)} policy factories for {n} workloads"
            )
        for factory in factories:
            _reject_policy_instance(factory)
    if seeds is not None and len(seeds) != n:
        raise ExperimentError(f"got {len(seeds)} seeds for {n} workloads")
    if labels is not None and len(labels) != n:
        raise ExperimentError(f"got {len(labels)} labels for {n} workloads")
    tasks = [
        RunTask(
            index=i,
            specs=(
                specs_list[i]
                if isinstance(specs_list[i], WorkloadStream)
                else tuple(specs_list[i])
            ),
            policy_factory=factories[i],
            sim_config=(
                cfg if seeds is None else cfg.with_params(seed=int(seeds[i]))
            ),
            n_workers=n_workers,
            placement=placement,
            rebalance=rebalance,
            admission=admission,
            autoscale=autoscale,
            failures=failures,
            fabric=fabric,
            capacities=None if capacities is None else tuple(capacities),
            max_containers=(
                max_containers
                if max_containers is None or isinstance(max_containers, int)
                else tuple(max_containers)
            ),
            label="" if labels is None else str(labels[i]),
        )
        for i in range(n)
    ]
    return run_tasks(tasks, workers=workers)


def default_workers() -> int:
    """A sensible process count for this machine (≥ 1)."""
    return os.cpu_count() or 1
