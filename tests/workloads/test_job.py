"""Unit tests for TrainingJob."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from tests.conftest import make_linear_job


class TestProgress:
    def test_advance_accumulates(self):
        job = make_linear_job(total_work=100.0)
        job.advance(30.0)
        job.advance(20.0)
        assert job.work_done == pytest.approx(50.0)
        assert job.progress == pytest.approx(0.5)

    def test_overshoot_clamped(self):
        job = make_linear_job(total_work=10.0)
        job.advance(25.0)
        assert job.work_done == pytest.approx(10.0)
        assert job.finished

    def test_negative_advance_raises(self):
        with pytest.raises(WorkloadError):
            make_linear_job().advance(-1.0)

    def test_finished_threshold(self):
        job = make_linear_job(total_work=10.0)
        job.advance(10.0 - 1e-12)
        assert job.finished  # within epsilon
        assert job.remaining_work() <= 1e-9

    def test_eval_tracks_curve(self):
        job = make_linear_job(total_work=100.0, e0=1.0, e_final=0.0)
        assert job.eval_value() == pytest.approx(1.0)
        job.advance(25.0)
        assert job.eval_value() == pytest.approx(0.75)


class TestWarmup:
    def test_no_progress_signal_during_warmup(self):
        job = make_linear_job(total_work=100.0, warmup=20.0)
        job.advance(10.0)
        assert job.in_warmup
        assert job.eval_value() == pytest.approx(1.0)
        assert job.progress == 0.0

    def test_progress_measured_after_warmup(self):
        job = make_linear_job(total_work=100.0, warmup=20.0)
        job.advance(60.0)  # 40 effective of 80
        assert job.progress == pytest.approx(0.5)

    def test_warmup_bounds_validated(self):
        with pytest.raises(WorkloadError):
            make_linear_job(total_work=10.0, warmup=10.0)
        with pytest.raises(WorkloadError):
            make_linear_job(total_work=10.0, warmup=-1.0)


class TestValidation:
    def test_nonpositive_work_rejected(self):
        with pytest.raises(WorkloadError):
            make_linear_job(total_work=0.0)

    def test_iteration_reporting(self):
        job = make_linear_job(total_work=100.0)
        job.advance(50.0)
        assert job.iteration == 500  # of 1000

    def test_clone_is_fresh(self):
        job = make_linear_job(total_work=100.0)
        job.advance(70.0)
        copy = job.clone()
        assert copy.work_done == 0.0
        assert copy.total_work == job.total_work
        assert copy.name == job.name


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=20))
    def test_work_done_never_exceeds_total(self, increments):
        job = make_linear_job(total_work=100.0)
        for inc in increments:
            job.advance(inc)
        assert 0.0 <= job.work_done <= 100.0 + 1e-9
        assert 0.0 <= job.progress <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=20))
    def test_improvement_fraction_monotone_in_work(self, increments):
        job = make_linear_job(total_work=100.0)
        last = job.improvement_fraction()
        for inc in increments:
            job.advance(inc)
            now = job.improvement_fraction()
            assert now >= last - 1e-12
            last = now
