"""Unit tests for the model zoo (Table 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.frameworks import Framework
from repro.workloads.models import MODEL_ZOO, make_job, zoo_keys


class TestZooContents:
    def test_table1_models_present(self):
        keys = set(zoo_keys())
        for expected in (
            "vae@pytorch",
            "vae@tensorflow",
            "mnist@pytorch",
            "mnist@tensorflow",
            "lstm_cfc@tensorflow",
            "lstm_crf@pytorch",
            "birnn@tensorflow",
            "gru@tensorflow",
        ):
            assert expected in keys

    def test_fig1_extras_present(self):
        assert "cnn_lstm@tensorflow" in MODEL_ZOO
        assert "logreg@tensorflow" in MODEL_ZOO

    def test_display_names_match_paper_style(self):
        assert MODEL_ZOO["vae@pytorch"].display_name == "VAE (Pytorch)"
        assert MODEL_ZOO["mnist@tensorflow"].display_name == "MNIST (Tensorflow)"

    def test_every_profile_builds_a_working_job(self):
        for key in zoo_keys():
            job = make_job(key)
            e_start = job.eval_value()
            job.advance(job.total_work)
            assert job.finished
            assert job.eval_value() != e_start

    def test_lstm_cfc_cannot_saturate_node(self):
        # §5.4 / Fig. 11: the CFC idles part of the node even alone.
        job = make_job("lstm_cfc@tensorflow")
        assert job.footprint.cpu_demand < 0.5

    def test_vae_is_the_early_converger(self):
        job = make_job("vae@pytorch")
        job.advance(job.total_work * 0.15)
        assert job.improvement_fraction() > 0.95

    def test_classifier_models_keep_growing_late(self):
        job = make_job("mnist@pytorch")
        job.advance(job.total_work * 0.80)
        assert job.improvement_fraction() < 0.95

    def test_image_labels(self):
        assert MODEL_ZOO["vae@pytorch"].image == "pytorch/vae"
        assert MODEL_ZOO["gru@tensorflow"].image == "tensorflow/gru"


class TestMakeJob:
    def test_unknown_key_raises(self):
        with pytest.raises(WorkloadError):
            make_job("resnet@jax")

    def test_framework_startup_becomes_warmup(self):
        job = make_job("mnist@tensorflow")
        assert job.warmup_work > 0
        assert job.total_work > MODEL_ZOO["mnist@tensorflow"].base_work

    def test_work_scale(self):
        small = make_job("mnist@pytorch", work_scale=0.5)
        big = make_job("mnist@pytorch", work_scale=2.0)
        assert big.total_work > small.total_work

    def test_invalid_scale_raises(self):
        with pytest.raises(WorkloadError):
            make_job("mnist@pytorch", work_scale=0.0)

    def test_size_jitter_bounds(self):
        rng = np.random.default_rng(0)
        base = MODEL_ZOO["gru@tensorflow"].base_work
        for _ in range(20):
            job = make_job("gru@tensorflow", rng=rng, size_jitter=0.2)
            scaled = job.total_work - job.warmup_work
            assert 0.8 * base - 1e-9 <= scaled <= 1.2 * base + 1e-9

    def test_invalid_jitter_raises(self):
        with pytest.raises(WorkloadError):
            make_job("gru@tensorflow", size_jitter=1.5)

    def test_tensorflow_demand_factor_applied(self):
        tf_job = make_job("vae@tensorflow")
        pt_job = make_job("vae@pytorch")
        assert tf_job.footprint.cpu_demand < pt_job.footprint.cpu_demand

    def test_framework_tags(self):
        assert MODEL_ZOO["vae@pytorch"].framework is Framework.PYTORCH
        assert MODEL_ZOO["vae@tensorflow"].framework is Framework.TENSORFLOW
