"""Unit tests for evaluation functions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.evalfn import EvalDirection, EvalFunction, EvalKind


class TestEvalKind:
    def test_losses_minimize(self):
        for kind in (
            EvalKind.RECONSTRUCTION_LOSS,
            EvalKind.CROSS_ENTROPY,
            EvalKind.SQUARED_LOSS,
            EvalKind.QUADRATIC_LOSS,
        ):
            assert kind.direction is EvalDirection.MINIMIZE

    def test_scores_maximize(self):
        assert EvalKind.SOFTMAX_ACCURACY.direction is EvalDirection.MAXIMIZE
        assert EvalKind.INCEPTION_SCORE.direction is EvalDirection.MAXIMIZE


class TestEvalFunction:
    def test_default_ranges_valid_for_all_kinds(self):
        for kind in EvalKind:
            fn = EvalFunction.default(kind)
            assert fn.total_change > 0

    def test_direction_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            EvalFunction(kind=EvalKind.CROSS_ENTROPY, start=0.1, converged=2.0)
        with pytest.raises(ConfigError):
            EvalFunction(kind=EvalKind.SOFTMAX_ACCURACY, start=0.9, converged=0.1)

    def test_flat_function_rejected(self):
        with pytest.raises(ConfigError):
            EvalFunction(kind=EvalKind.CROSS_ENTROPY, start=1.0, converged=1.0)

    def test_normalized(self):
        fn = EvalFunction(kind=EvalKind.CROSS_ENTROPY, start=2.0, converged=0.0)
        assert fn.normalized(2.0) == pytest.approx(0.0)
        assert fn.normalized(1.0) == pytest.approx(0.5)
        assert fn.normalized(0.0) == pytest.approx(1.0)

    def test_normalized_for_rising_metric(self):
        fn = EvalFunction(kind=EvalKind.SOFTMAX_ACCURACY, start=0.1, converged=0.9)
        assert fn.normalized(0.5) == pytest.approx(0.5)

    def test_total_change(self):
        fn = EvalFunction(
            kind=EvalKind.RECONSTRUCTION_LOSS, start=550.0, converged=95.0
        )
        assert fn.total_change == pytest.approx(455.0)
