"""Unit tests for workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import WorkloadGenerator


class TestFixedSchedules:
    def test_fixed_builds_labels_in_order(self):
        specs = WorkloadGenerator.fixed(
            [("vae@pytorch", 0.0), ("mnist@pytorch", 40.0)]
        )
        assert [s.label for s in specs] == ["Job-1", "Job-2"]
        assert [s.submit_time for s in specs] == [0.0, 40.0]

    def test_paper_fixed_three_job(self):
        specs = WorkloadGenerator.paper_fixed_three_job()
        assert [(s.model_key, s.submit_time) for s in specs] == [
            ("vae@pytorch", 0.0),
            ("mnist@pytorch", 40.0),
            ("mnist@tensorflow", 80.0),
        ]

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator.fixed([("bert@jax", 0.0)])

    def test_negative_time_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator.fixed([("vae@pytorch", -5.0)])

    def test_spec_builds_job(self):
        spec = WorkloadGenerator.paper_fixed_three_job()[0]
        job = spec.build_job()
        assert job.name == "VAE (Pytorch)"


class TestRandomSchedules:
    def test_arrivals_within_window(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        specs = gen.random(["vae@pytorch"] * 10, window=(0.0, 200.0))
        assert all(0.0 <= s.submit_time <= 200.0 for s in specs)

    def test_labels_follow_arrival_order(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        specs = gen.random(["vae@pytorch", "gru@tensorflow", "mnist@pytorch"])
        times = [s.submit_time for s in specs]
        assert times == sorted(times)
        assert [s.label for s in specs] == ["Job-1", "Job-2", "Job-3"]

    def test_reproducible_with_same_rng_seed(self):
        a = WorkloadGenerator(np.random.default_rng(7)).random(["vae@pytorch"] * 5)
        b = WorkloadGenerator(np.random.default_rng(7)).random(["vae@pytorch"] * 5)
        assert [s.submit_time for s in a] == [s.submit_time for s in b]

    def test_empty_window_rejected(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            gen.random(["vae@pytorch"], window=(10.0, 10.0))

    def test_paper_random_five_mix(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        specs = gen.paper_random_five()
        keys = {s.model_key for s in specs}
        assert keys == {
            "lstm_cfc@tensorflow",
            "vae@pytorch",
            "vae@tensorflow",
            "mnist@pytorch",
            "gru@tensorflow",
        }

    def test_random_mix_sizes(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        assert len(gen.random_mix(10)) == 10
        assert len(gen.random_mix(15)) == 15

    def test_random_mix_rejects_bad_n(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            gen.random_mix(0)

    def test_random_mix_honours_pool(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        specs = gen.random_mix(8, pool=["gru@tensorflow"])
        assert all(s.model_key == "gru@tensorflow" for s in specs)

    def test_random_mix_rejects_unknown_pool_entry(self):
        gen = WorkloadGenerator(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            gen.random_mix(3, pool=["nope@nowhere"])
