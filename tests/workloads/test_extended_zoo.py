"""Unit tests for the extended (§6-motivated) zoo models."""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_scenario
from repro.workloads.evalfn import EvalDirection, EvalKind
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.models import MODEL_ZOO, PAPER_POOL, make_job


class TestExtendedModels:
    def test_extended_models_present(self):
        for key in ("dcgan@pytorch", "stargan@pytorch", "xception@tensorflow"):
            assert key in MODEL_ZOO

    def test_gans_use_inception_score(self):
        for key in ("dcgan@pytorch", "stargan@pytorch"):
            evalfn = MODEL_ZOO[key].evalfn
            assert evalfn.kind is EvalKind.INCEPTION_SCORE
            assert evalfn.direction is EvalDirection.MAXIMIZE

    def test_inception_score_rises_with_training(self):
        job = make_job("dcgan@pytorch")
        start = job.eval_value()
        job.advance(job.total_work * 0.6)
        assert job.eval_value() > start

    def test_extended_models_are_resource_intensive(self):
        """§6 calls them "extremely resource intensive": the extended
        models must be the largest jobs in the zoo."""
        extended_work = min(
            MODEL_ZOO[k].base_work
            for k in ("dcgan@pytorch", "stargan@pytorch",
                      "xception@tensorflow")
        )
        paper_work = max(MODEL_ZOO[k].base_work for k in PAPER_POOL)
        assert extended_work > paper_work

    def test_not_in_default_random_pool(self):
        import numpy as np

        gen = WorkloadGenerator(np.random.default_rng(0))
        specs = gen.random_mix(40)
        assert all(s.model_key in PAPER_POOL for s in specs)

    def test_flowcon_handles_gan_heavy_mix(self):
        """A mixed GAN + classifier workload runs to completion and the
        score-maximizing jobs are classified like any loss job (Eq. 1 is
        direction-agnostic)."""
        specs = WorkloadGenerator.fixed(
            [
                ("dcgan@pytorch", 0.0),
                ("mnist@tensorflow", 60.0),
                ("gru@tensorflow", 120.0),
            ]
        )
        cfg = SimulationConfig(seed=4, trace=False)
        na = run_scenario(specs, NAPolicy(), cfg)
        fc = run_scenario(specs, FlowConPolicy(), cfg)
        assert len(fc.completion_times()) == 3
        # The late-arriving small jobs benefit from the long GAN's
        # eventual demotion or at least are not penalized.
        assert (
            fc.completion_times()["Job-3"]
            <= na.completion_times()["Job-3"] * 1.05
        )
