"""Unit + property tests for convergence curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CurveError
from repro.workloads.curves import (
    ExponentialCurve,
    PiecewiseLinearCurve,
    PowerLawCurve,
    SigmoidCurve,
)

ALL_CURVES = [
    lambda: ExponentialCurve(1.0, 0.0, tau=0.2),
    lambda: PowerLawCurve(1.0, 0.0, tau=0.3, gamma=1.5),
    lambda: SigmoidCurve(0.1, 0.9, midpoint=0.4, steepness=10),
    lambda: PiecewiseLinearCurve([(0.0, 1.0), (0.3, 0.4), (1.0, 0.1)]),
]


class TestEndpoints:
    @pytest.mark.parametrize("factory", ALL_CURVES)
    def test_curve_hits_its_endpoints(self, factory):
        curve = factory()
        assert curve.value(0.0) == pytest.approx(curve.e0, abs=1e-9)
        assert curve.value(1.0) == pytest.approx(curve.e_final, abs=1e-9)

    @pytest.mark.parametrize("factory", ALL_CURVES)
    def test_improvement_fraction_0_to_1(self, factory):
        curve = factory()
        assert curve.improvement_fraction(0.0) == pytest.approx(0.0, abs=1e-9)
        assert curve.improvement_fraction(1.0) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("factory", ALL_CURVES)
    def test_vectorized_matches_scalar(self, factory):
        curve = factory()
        grid = np.linspace(0, 1, 11)
        vec = curve.value(grid)
        scalars = np.array([curve.value(float(p)) for p in grid])
        assert np.allclose(vec, scalars)


class TestMonotonicity:
    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_exponential_loss_monotone_decreasing(self, p1, p2):
        curve = ExponentialCurve(1.0, 0.0, tau=0.15)
        lo, hi = min(p1, p2), max(p1, p2)
        assert curve.value(lo) >= curve.value(hi) - 1e-12

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_sigmoid_accuracy_monotone_increasing(self, p1, p2):
        curve = SigmoidCurve(0.1, 0.95, midpoint=0.4, steepness=8)
        lo, hi = min(p1, p2), max(p1, p2)
        assert curve.value(lo) <= curve.value(hi) + 1e-12

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_improvement_fraction_bounded(self, tau, p):
        curve = ExponentialCurve(5.0, 1.0, tau=tau)
        frac = curve.improvement_fraction(p)
        assert -1e-9 <= frac <= 1.0 + 1e-9


class TestConcavity:
    def test_exponential_front_loads_improvement(self):
        """Fig. 1's shape: most improvement lands early."""
        curve = ExponentialCurve(1.0, 0.0, tau=0.2)
        assert curve.improvement_fraction(0.3) > 0.7

    def test_vae_calibration_is_extreme(self):
        curve = ExponentialCurve(550.0, 95.0, tau=0.02)
        # >99 % of the improvement within the first 15 % of training.
        assert curve.improvement_fraction(0.15) > 0.99

    def test_sigmoid_has_slow_start(self):
        curve = SigmoidCurve(0.1, 0.9, midpoint=0.5, steepness=10)
        assert curve.improvement_fraction(0.1) < 0.1


class TestValidation:
    def test_equal_endpoints_rejected(self):
        with pytest.raises(CurveError):
            ExponentialCurve(1.0, 1.0)

    def test_nonfinite_endpoints_rejected(self):
        with pytest.raises(CurveError):
            ExponentialCurve(float("nan"), 0.0)

    def test_bad_tau_rejected(self):
        with pytest.raises(CurveError):
            ExponentialCurve(1.0, 0.0, tau=0.0)
        with pytest.raises(CurveError):
            PowerLawCurve(1.0, 0.0, tau=-1.0)

    def test_bad_midpoint_rejected(self):
        with pytest.raises(CurveError):
            SigmoidCurve(0.0, 1.0, midpoint=1.5)

    def test_progress_out_of_range_rejected(self):
        curve = ExponentialCurve(1.0, 0.0)
        with pytest.raises(CurveError):
            curve.value(1.5)
        with pytest.raises(CurveError):
            curve.value(-0.2)

    def test_piecewise_needs_full_span(self):
        with pytest.raises(CurveError):
            PiecewiseLinearCurve([(0.0, 1.0), (0.5, 0.5)])

    def test_piecewise_needs_increasing_progress(self):
        with pytest.raises(CurveError):
            PiecewiseLinearCurve([(0.0, 1.0), (0.5, 0.7), (0.4, 0.6), (1.0, 0.0)])

    def test_piecewise_needs_two_points(self):
        with pytest.raises(CurveError):
            PiecewiseLinearCurve([(0.0, 1.0)])


class TestSlopeAndDirection:
    def test_slope_sign_for_loss(self):
        curve = ExponentialCurve(1.0, 0.0, tau=0.3)
        assert curve.slope(0.1) < 0

    def test_slope_sign_for_accuracy(self):
        curve = SigmoidCurve(0.1, 0.9, midpoint=0.3, steepness=8)
        assert curve.slope(0.3) > 0

    def test_decreasing_flag(self):
        assert ExponentialCurve(1.0, 0.0).decreasing
        assert not SigmoidCurve(0.1, 0.9).decreasing

    def test_piecewise_interpolates_exactly(self):
        curve = PiecewiseLinearCurve([(0.0, 1.0), (0.5, 0.4), (1.0, 0.0)])
        assert curve.value(0.5) == pytest.approx(0.4)
        assert curve.value(0.25) == pytest.approx(0.7)
