"""Unit tests for framework profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.frameworks import (
    FRAMEWORK_PROFILES,
    Framework,
    FrameworkProfile,
)


class TestFramework:
    def test_short_tags(self):
        assert Framework.PYTORCH.short == "P"
        assert Framework.TENSORFLOW.short == "T"

    def test_profiles_exist_for_all_frameworks(self):
        for fw in Framework:
            assert fw in FRAMEWORK_PROFILES

    def test_tensorflow_has_heavier_startup(self):
        pt = FRAMEWORK_PROFILES[Framework.PYTORCH]
        tf = FRAMEWORK_PROFILES[Framework.TENSORFLOW]
        assert tf.startup_work > pt.startup_work

    def test_demand_factor_in_range(self):
        for profile in FRAMEWORK_PROFILES.values():
            assert 0.0 < profile.demand_factor <= 1.0


class TestValidation:
    def test_negative_startup_rejected(self):
        with pytest.raises(ConfigError):
            FrameworkProfile(
                framework=Framework.PYTORCH,
                startup_work=-1.0,
                demand_factor=1.0,
                image_prefix="x",
            )

    def test_bad_demand_factor_rejected(self):
        for bad in (0.0, 1.5):
            with pytest.raises(ConfigError):
                FrameworkProfile(
                    framework=Framework.PYTORCH,
                    startup_work=0.0,
                    demand_factor=bad,
                    image_prefix="x",
                )
