"""Tests for the lazy generator family (``make_stream``).

The contract under test: a :class:`WorkloadStream` is a frozen recipe —
iterating it twice, materializing it, or regenerating it in another
process yields bit-identical specs; every family produces non-decreasing
arrival times; and the tenant mix draws follow the declared shares.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import (
    STREAM_FAMILIES,
    WorkloadStream,
    make_stream,
)

TENANTS = (("batch", 3.0, 1.0), ("interactive", 1.0, 4.0))


def _key(spec):
    return (spec.label, spec.model_key, repr(spec.submit_time),
            repr(spec.work_scale), spec.tenant, repr(spec.weight))


class TestStreamDeterminism:
    @pytest.mark.parametrize("family", sorted(STREAM_FAMILIES))
    @pytest.mark.parametrize("seed", range(3))
    def test_iterating_twice_is_bit_identical(self, family, seed):
        stream = make_stream(family, n_jobs=50, seed=seed)
        assert [_key(s) for s in stream] == [_key(s) for s in stream]

    @pytest.mark.parametrize("family", sorted(STREAM_FAMILIES))
    def test_materialize_equals_lazy_iteration(self, family):
        stream = make_stream(family, n_jobs=40, seed=9, tenants=TENANTS)
        assert [_key(s) for s in stream.materialize()] == [
            _key(s) for s in stream
        ]

    def test_pickle_round_trip_regenerates_identically(self):
        stream = make_stream("flash_crowd", n_jobs=30, seed=4)
        clone = pickle.loads(pickle.dumps(stream))
        assert [_key(s) for s in clone] == [_key(s) for s in stream]

    def test_different_seeds_differ(self):
        a = make_stream("diurnal", n_jobs=30, seed=0)
        b = make_stream("diurnal", n_jobs=30, seed=1)
        assert [s.submit_time for s in a] != [s.submit_time for s in b]


class TestStreamShape:
    @pytest.mark.parametrize("family", sorted(STREAM_FAMILIES))
    def test_times_non_decreasing_labels_in_order(self, family):
        specs = list(make_stream(family, n_jobs=80, seed=2))
        times = [s.submit_time for s in specs]
        assert times == sorted(times)
        assert [s.label for s in specs] == [
            f"Job-{i + 1}" for i in range(80)
        ]

    def test_len_and_describe(self):
        stream = make_stream("diurnal", n_jobs=100_000, seed=7)
        assert len(stream) == 100_000
        assert stream.describe() == "diurnal-100000@7"

    def test_pareto_mix_scales_are_capped_and_floored(self):
        specs = list(make_stream(
            "pareto_mix", n_jobs=300, seed=1,
            shape=1.5, scale_floor=0.25, size_cap=20.0,
        ))
        scales = np.array([s.work_scale for s in specs])
        assert scales.min() >= 0.25
        assert scales.max() <= 20.0
        # Heavy tail: some draws must actually exceed the floor region.
        assert (scales > 1.0).any()

    def test_flash_crowd_bursts_raise_local_rate(self):
        specs = list(make_stream(
            "flash_crowd", n_jobs=2000, seed=0,
            mean_gap=3.0, burst_every=600.0, burst_duration=60.0,
            burst_factor=8.0,
        ))
        times = np.array([s.submit_time for s in specs])
        # Burst epochs are seeded exponential draws, so test the
        # *shape*: bin at the burst duration and compare against a
        # burst-free Poisson stream of the same baseline rate.  The 8x
        # crests must push the densest bin and the bin-count dispersion
        # far beyond anything the flat stream produces.
        flat = np.array([
            s.submit_time
            for s in make_stream("poisson", n_jobs=2000, seed=0,
                                 mean_gap=3.0)
        ])

        def peak_and_dispersion(ts):
            counts = np.bincount((ts / 60.0).astype(int))
            return counts.max(), counts.var() / counts.mean()

        crowd_peak, crowd_disp = peak_and_dispersion(times)
        flat_peak, flat_disp = peak_and_dispersion(flat)
        assert crowd_peak > 2.0 * flat_peak
        assert crowd_disp > 3.0 * flat_disp

    def test_tenant_mix_follows_shares(self):
        specs = list(make_stream(
            "poisson", n_jobs=4000, seed=5, tenants=TENANTS,
        ))
        drawn = [s.tenant for s in specs]
        frac_batch = drawn.count("batch") / len(drawn)
        assert frac_batch == pytest.approx(0.75, abs=0.05)
        weights = {s.tenant: s.weight for s in specs}
        assert weights == {"batch": 1.0, "interactive": 4.0}

    def test_without_tenants_field_is_none(self):
        specs = list(make_stream("poisson", n_jobs=10, seed=0))
        assert all(s.tenant is None for s in specs)


class TestStreamValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError, match="unknown stream family"):
            make_stream("bimodal", n_jobs=10)

    def test_nonpositive_n_jobs_rejected(self):
        with pytest.raises(WorkloadError):
            make_stream("poisson", n_jobs=0)

    def test_bad_params_fail_eagerly(self):
        # make_stream() pulls the first arrival up front, so a bad
        # parameter surfaces at construction, not mid-run.
        with pytest.raises(WorkloadError):
            make_stream("diurnal", n_jobs=10, mean_gap=-1.0)

    def test_unknown_pool_entry_rejected(self):
        with pytest.raises(WorkloadError):
            make_stream("poisson", n_jobs=10, pool=("bert@jax",))

    def test_stream_is_frozen(self):
        stream = make_stream("poisson", n_jobs=10)
        with pytest.raises(AttributeError):
            stream.n_jobs = 99

    def test_streams_are_value_equal(self):
        assert make_stream("diurnal", n_jobs=10, seed=3) == make_stream(
            "diurnal", n_jobs=10, seed=3
        )
        assert isinstance(make_stream("poisson", n_jobs=1), WorkloadStream)
