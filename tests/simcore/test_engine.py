"""Unit tests for the simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import Simulator
from repro.simcore.events import EventKind


class TestScheduling:
    def test_callbacks_fire_in_time_order(self, sim: Simulator):
        order = []
        sim.schedule(2.0, lambda e: order.append("b"))
        sim.schedule(1.0, lambda e: order.append("a"))
        sim.schedule(3.0, lambda e: order.append("c"))
        sim.run_until_empty()
        assert order == ["a", "b", "c"]

    def test_clock_follows_events(self, sim: Simulator):
        times = []
        sim.schedule(1.5, lambda e: times.append(sim.now))
        sim.schedule(4.0, lambda e: times.append(sim.now))
        sim.run_until_empty()
        assert times == [1.5, 4.0]

    def test_schedule_in_past_raises(self, sim: Simulator):
        sim.schedule(5.0, lambda e: None)
        sim.run_until_empty()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda e: None)

    def test_schedule_in_relative(self, sim: Simulator):
        seen = []
        sim.schedule(2.0, lambda e: sim.schedule_in(3.0, lambda e2: seen.append(sim.now)))
        sim.run_until_empty()
        assert seen == [5.0]

    def test_negative_delay_raises(self, sim: Simulator):
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda e: None)

    def test_cancel_prevents_firing(self, sim: Simulator):
        fired = []
        handle = sim.schedule(1.0, lambda e: fired.append(1))
        sim.cancel(handle)
        sim.run_until_empty()
        assert fired == []


class TestRun:
    def test_run_until_horizon_leaves_future_events(self, sim: Simulator):
        fired = []
        sim.schedule(1.0, lambda e: fired.append(1))
        sim.schedule(10.0, lambda e: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert len(sim.queue) == 1

    def test_event_exactly_at_horizon_fires(self, sim: Simulator):
        fired = []
        sim.schedule(5.0, lambda e: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_horizon_advances_clock_even_without_events(self, sim: Simulator):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_scheduled_during_run_fire(self, sim: Simulator):
        seen = []

        def chain(e):
            seen.append(sim.now)
            if sim.now < 3:
                sim.schedule_in(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until_empty()
        assert seen == [1.0, 2.0, 3.0]

    def test_step_returns_none_when_empty(self, sim: Simulator):
        assert sim.step() is None

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def forever(e):
            sim.schedule_in(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_empty()

    def test_run_not_reentrant(self, sim: Simulator):
        def reenter(e):
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run_until_empty()


class TestDeterminism:
    def test_same_seed_same_random_streams(self):
        a = Simulator(seed=123).rngs.stream("x").random(5)
        b = Simulator(seed=123).rngs.stream("x").random(5)
        assert (a == b).all()

    def test_trace_records_current_time(self, sim: Simulator):
        sim.schedule(2.0, lambda e: sim.trace("test.topic", "hello"))
        sim.run_until_empty()
        records = sim.tracer.records("test.topic")
        assert len(records) == 1 and records[0].time == 2.0

    def test_kind_and_priority_passthrough(self, sim: Simulator):
        order = []
        sim.schedule(1.0, lambda e: order.append("tick"),
                     kind=EventKind.SCHEDULER_TICK, priority=10)
        sim.schedule(1.0, lambda e: order.append("exit"),
                     kind=EventKind.CONTAINER_EXIT, priority=-20)
        sim.run_until_empty()
        assert order == ["exit", "tick"]
