"""Unit tests for simcore.events."""

from __future__ import annotations

from repro.simcore.events import Event, EventKind


class TestEventOrdering:
    def test_orders_by_time(self):
        a = Event(time=1.0)
        b = Event(time=2.0)
        assert a < b
        assert not b < a

    def test_ties_broken_by_priority(self):
        lo = Event(time=5.0, priority=-1)
        hi = Event(time=5.0, priority=1)
        assert lo < hi

    def test_ties_broken_by_scheduling_order(self):
        first = Event(time=5.0)
        second = Event(time=5.0)
        assert first < second
        assert first.seq < second.seq

    def test_sort_key_shape(self):
        e = Event(time=3.5, priority=2)
        assert e.sort_key() == (3.5, 2, e.seq)


class TestEventFire:
    def test_fire_invokes_callback_with_event(self):
        seen = []
        e = Event(time=0.0, callback=seen.append)
        e.fire()
        assert seen == [e]

    def test_fire_without_callback_is_noop(self):
        Event(time=0.0).fire()  # must not raise

    def test_payload_carried(self):
        e = Event(time=0.0, payload={"cid": 3})
        assert e.payload == {"cid": 3}

    def test_default_kind_is_generic(self):
        assert Event(time=0.0).kind is EventKind.GENERIC


class TestEventKind:
    def test_all_kinds_distinct_values(self):
        values = [k.value for k in EventKind]
        assert len(values) == len(set(values))
