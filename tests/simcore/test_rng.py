"""Unit tests for the RNG registry."""

from __future__ import annotations

import numpy as np

from repro.simcore.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_returns_64_bit(self):
        s = derive_seed(99, "stream")
        assert 0 <= s < 2**64


class TestRngRegistry:
    def test_stream_is_cached(self):
        rngs = RngRegistry(0)
        assert rngs.stream("x") is rngs.stream("x")

    def test_distinct_streams_independent(self):
        rngs = RngRegistry(0)
        a = rngs.stream("a").random(8)
        b = rngs.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces(self):
        a = RngRegistry(5).stream("x").random(8)
        b = RngRegistry(5).stream("x").random(8)
        assert np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        r1 = RngRegistry(5)
        first = r1.stream("x").random(4)
        r2 = RngRegistry(5)
        r2.stream("newcomer")  # consume nothing from "x"
        second = r2.stream("x").random(4)
        assert np.array_equal(first, second)

    def test_fresh_resets_stream_state(self):
        rngs = RngRegistry(5)
        first = rngs.stream("x").random(4)
        again = rngs.fresh("x").random(4)
        assert np.array_equal(first, again)

    def test_spawn_is_reproducible_and_distinct(self):
        parent = RngRegistry(5)
        childa = parent.spawn("rep-0").stream("x").random(4)
        childb = RngRegistry(5).spawn("rep-0").stream("x").random(4)
        other = parent.spawn("rep-1").stream("x").random(4)
        assert np.array_equal(childa, childb)
        assert not np.allclose(childa, other)

    def test_root_seed_property(self):
        assert RngRegistry(17).root_seed == 17
