"""Unit + property tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EventQueueError
from repro.simcore.equeue import EventQueue
from repro.simcore.events import Event


class TestBasics:
    def test_pop_empty_raises(self):
        with pytest.raises(EventQueueError):
            EventQueue().pop()

    def test_fifo_at_same_time(self):
        q = EventQueue()
        events = [Event(time=1.0, payload=i) for i in range(5)]
        for e in events:
            q.push(e)
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_earliest_first(self):
        q = EventQueue()
        q.push(Event(time=3.0, payload="late"))
        q.push(Event(time=1.0, payload="early"))
        assert q.pop().payload == "early"

    def test_len_counts_live_events(self):
        q = EventQueue()
        h = q.push(Event(time=1.0))
        q.push(Event(time=2.0))
        assert len(q) == 2
        q.cancel(h)
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        h = q.push(Event(time=1.0))
        assert q
        q.cancel(h)
        assert not q


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        h = q.push(Event(time=1.0, payload="dead"))
        q.push(Event(time=2.0, payload="alive"))
        q.cancel(h)
        assert q.pop().payload == "alive"

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(Event(time=1.0))
        q.cancel(h)
        q.cancel(h)
        assert len(q) == 0

    def test_peek_skips_dead_head(self):
        q = EventQueue()
        h = q.push(Event(time=1.0))
        q.push(Event(time=5.0))
        q.cancel(h)
        assert q.peek_time() == 5.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(Event(time=1.0))
        q.clear()
        assert len(q) == 0 and q.peek_time() is None

    def test_cancel_after_clear_is_noop(self):
        """Regression: clear() must cancel outstanding handles.

        A handle from before the clear used to stay marked alive, so a
        later cancel() drove the live count negative and the queue
        reported empty while holding real events.
        """
        q = EventQueue()
        stale = q.push(Event(time=1.0))
        q.clear()
        q.cancel(stale)
        assert len(q) == 0
        q.push(Event(time=2.0, payload="real"))
        assert len(q) == 1
        assert bool(q)
        assert q.pop().payload == "real"

    def test_clear_marks_handles_dead(self):
        q = EventQueue()
        handles = [q.push(Event(time=float(i))) for i in range(5)]
        q.clear()
        assert all(not h.alive for h in handles)


class TestCompaction:
    def test_heavy_cancellation_compacts_storage(self):
        q = EventQueue()
        handles = [q.push(Event(time=float(i))) for i in range(300)]
        for h in handles[:250]:
            q.cancel(h)
        # Dead entries outnumbered live ones, so the heap was rebuilt.
        assert len(q._heap) < 300
        assert len(q) == 50

    def test_pop_order_survives_compaction(self):
        q = EventQueue()
        handles = [q.push(Event(time=float(i), payload=i)) for i in range(300)]
        for i, h in enumerate(handles):
            if i % 3 != 0:
                q.cancel(h)
        survivors = [q.pop().payload for _ in range(len(q))]
        assert survivors == [i for i in range(300) if i % 3 == 0]

    def test_explicit_compact_below_threshold(self):
        q = EventQueue()
        h1 = q.push(Event(time=1.0))
        q.push(Event(time=2.0, payload="keep"))
        q.cancel(h1)
        q.compact()
        assert len(q._heap) == 1
        assert q.pop().payload == "keep"

    def test_live_count_through_churn(self):
        q = EventQueue()
        handles = []
        for round_no in range(50):
            for h in handles:
                q.cancel(h)
            handles = [
                q.push(Event(time=float(round_no + i))) for i in range(10)
            ]
        assert len(q) == 10
        drained = [q.pop() for _ in range(10)]
        assert len(drained) == 10
        assert not q


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    def test_pops_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(Event(time=t))
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
        st.sets(st.integers(min_value=0, max_value=39)),
    )
    def test_cancel_subset_pops_rest(self, times, cancel_idx):
        q = EventQueue()
        handles = [q.push(Event(time=t, payload=i)) for i, t in enumerate(times)]
        cancelled = {i for i in cancel_idx if i < len(times)}
        for i in cancelled:
            q.cancel(handles[i])
        survivors = {q.pop().payload for _ in range(len(q))}
        assert survivors == set(range(len(times))) - cancelled
