"""Unit tests for the tracer."""

from __future__ import annotations

from repro.simcore.tracing import Tracer


class TestTracer:
    def test_records_appended(self):
        tr = Tracer()
        tr.record(1.0, "a.b", "msg", x=1)
        assert len(tr) == 1
        rec = tr.records()[0]
        assert rec.time == 1.0 and rec.topic == "a.b" and rec.data == {"x": 1}

    def test_disabled_drops_records(self):
        tr = Tracer(enabled=False)
        tr.record(1.0, "a", "m")
        assert len(tr) == 0

    def test_topic_prefix_filter(self):
        tr = Tracer()
        tr.record(1.0, "core.algorithm1", "x")
        tr.record(2.0, "core.listener", "y")
        tr.record(3.0, "worker.exit", "z")
        assert len(tr.records("core")) == 2
        assert len(tr.records("core.listener")) == 1
        assert len(tr.records("worker")) == 1

    def test_prefix_filter_does_not_match_partial_words(self):
        tr = Tracer()
        tr.record(1.0, "corex.algorithm", "x")
        assert tr.records("core") == []

    def test_truncation_stops_recording(self):
        tr = Tracer(max_records=3)
        for i in range(5):
            tr.record(float(i), "t", "m")
        assert len(tr) == 3
        assert tr.truncated

    def test_clear_resets(self):
        tr = Tracer(max_records=1)
        tr.record(0.0, "t", "m")
        tr.record(1.0, "t", "m")
        tr.clear()
        assert len(tr) == 0 and not tr.truncated

    def test_topics(self):
        tr = Tracer()
        tr.record(0.0, "a", "m")
        tr.record(0.0, "b", "m")
        assert tr.topics() == {"a", "b"}

    def test_dump_contains_message(self):
        tr = Tracer()
        tr.record(1.5, "topic", "hello world")
        assert "hello world" in tr.dump()
        assert "topic" in tr.dump()
