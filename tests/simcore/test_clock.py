"""Unit tests for the simulation clock."""

from __future__ import annotations

import pytest

from repro.errors import ClockError
from repro.simcore.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance_to_returns_elapsed(self):
        clock = SimClock()
        assert clock.advance_to(3.0) == 3.0
        assert clock.now == 3.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(2.0)
        assert clock.advance_to(2.0) == 0.0

    def test_advance_backwards_raises(self):
        clock = SimClock(10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.0)

    def test_tiny_backwards_tolerated(self):
        clock = SimClock(10.0)
        # Within float tolerance: treated as "now".
        assert clock.advance_to(10.0 - 1e-12) == 0.0
        assert clock.now == 10.0

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5

    def test_advance_by_negative_raises(self):
        with pytest.raises(ClockError):
            SimClock().advance_by(-0.1)

    def test_reset(self):
        clock = SimClock(9.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_negative_raises(self):
        with pytest.raises(ClockError):
            SimClock().reset(-2.0)
