"""Unit tests for run summaries and §5.2 metrics."""

from __future__ import annotations

import pytest

from repro.errors import MetricsError
from repro.metrics.summary import (
    CompletionRecord,
    RunSummary,
    jitter_index,
    overlap_duration,
    reduction_pct,
)
from repro.metrics.timeseries import StepSeries


def rec(label, submitted, finished):
    return CompletionRecord(
        label=label,
        image="img",
        cid=1,
        submitted=submitted,
        finished=finished,
        completion_time=finished - submitted,
    )


class TestRunSummary:
    def test_makespan_first_submission_to_last_completion(self):
        summary = RunSummary([rec("a", 0.0, 100.0), rec("b", 40.0, 80.0)])
        assert summary.makespan == 100.0

    def test_completion_time_lookup(self):
        summary = RunSummary([rec("a", 0.0, 50.0)])
        assert summary.completion_time("a") == 50.0
        with pytest.raises(MetricsError):
            summary.completion_time("missing")

    def test_labels_in_submission_order(self):
        summary = RunSummary([rec("b", 40.0, 80.0), rec("a", 0.0, 100.0)])
        assert summary.labels() == ["a", "b"]

    def test_empty_summary_rejected(self):
        with pytest.raises(MetricsError):
            RunSummary([])

    def test_overlap_pairwise(self):
        # §5.3: overlap of VAE [0,386] and MNIST-T [80,160] is 80 s.
        summary = RunSummary([rec("vae", 0.0, 386.0), rec("mnist", 80.0, 160.0)])
        assert summary.overlap("vae", "mnist") == pytest.approx(80.0)

    def test_overlap_three_way(self):
        summary = RunSummary(
            [rec("a", 0.0, 100.0), rec("b", 40.0, 90.0), rec("c", 80.0, 150.0)]
        )
        assert summary.overlap("a", "b", "c") == pytest.approx(10.0)

    def test_disjoint_overlap_is_zero(self):
        summary = RunSummary([rec("a", 0.0, 10.0), rec("b", 20.0, 30.0)])
        assert summary.overlap("a", "b") == 0.0

    def test_overlap_needs_two_jobs(self):
        summary = RunSummary([rec("a", 0.0, 10.0)])
        with pytest.raises(MetricsError):
            summary.overlap("a")

    def test_total_concurrency_seconds(self):
        summary = RunSummary([rec("a", 0.0, 10.0), rec("b", 5.0, 15.0)])
        assert summary.total_concurrency_seconds() == pytest.approx(5.0)


class TestHelpers:
    def test_reduction_pct(self):
        # Paper: 84.7 s → 57.7 s is a 31.9 % reduction.
        assert reduction_pct(84.7, 57.7) == pytest.approx(31.9, abs=0.1)

    def test_reduction_pct_negative_for_regression(self):
        assert reduction_pct(100.0, 110.0) == pytest.approx(-10.0)

    def test_reduction_pct_bad_baseline(self):
        with pytest.raises(MetricsError):
            reduction_pct(0.0, 10.0)

    def test_overlap_duration(self):
        assert overlap_duration((0, 10), (5, 20)) == 5
        assert overlap_duration((0, 5), (5, 20)) == 0

    def test_jitter_index_flat_series_is_zero(self):
        s = StepSeries()
        for t in range(0, 100, 5):
            s.append(float(t), 0.5)
        assert jitter_index(s) == 0.0

    def test_jitter_index_ranks_noisy_above_smooth(self):
        smooth, noisy = StepSeries(), StepSeries()
        for i, t in enumerate(range(0, 100, 5)):
            smooth.append(float(t), 0.5)
            noisy.append(float(t), 0.5 + (0.2 if i % 2 else -0.2))
        assert jitter_index(noisy) > jitter_index(smooth)

    def test_jitter_index_empty_series(self):
        assert jitter_index(StepSeries()) == 0.0
