"""Unit tests for metrics export."""

from __future__ import annotations

import json

from repro.metrics.export import series_to_csv, summary_to_json
from repro.metrics.summary import CompletionRecord, RunSummary
from repro.metrics.timeseries import StepSeries


def _series(points, name="s"):
    s = StepSeries(name)
    for t, v in points:
        s.append(t, v)
    return s


class TestCsv:
    def test_header_and_rows(self):
        csv = series_to_csv(
            {"a": _series([(0.0, 1.0), (2.0, 3.0)])}, grid_step=1.0
        )
        lines = csv.strip().splitlines()
        assert lines[0] == "time,a"
        assert lines[1].startswith("0.000,1.0")
        assert len(lines) == 4  # t = 0,1,2 plus header

    def test_multiple_series_aligned(self):
        csv = series_to_csv(
            {
                "a": _series([(0.0, 1.0), (10.0, 2.0)]),
                "b": _series([(5.0, 9.0)]),
            },
            grid_step=5.0,
        )
        lines = csv.strip().splitlines()
        assert lines[0] == "time,a,b"
        # b is blank before its first point.
        assert lines[1].split(",")[2] == ""
        assert lines[2].split(",")[2] == "9.000000"

    def test_empty_input(self):
        assert series_to_csv({}) == "time\n"
        assert series_to_csv({"x": StepSeries()}) == "time\n"


class TestJson:
    def test_roundtrip(self):
        summary = RunSummary(
            [
                CompletionRecord("Job-1", "img", 1, 0.0, 50.0, 50.0),
                CompletionRecord("Job-2", "img", 2, 10.0, 80.0, 70.0),
            ]
        )
        payload = json.loads(summary_to_json(summary, policy="NA"))
        assert payload["policy"] == "NA"
        assert payload["makespan"] == 80.0
        assert [j["label"] for j in payload["jobs"]] == ["Job-1", "Job-2"]
        assert payload["jobs"][1]["completion_time"] == 70.0
