"""Unit tests for the metrics recorder."""

from __future__ import annotations

import pytest

from repro.errors import MetricsError
from repro.metrics.recorder import MetricsRecorder
from tests.conftest import make_linear_job


class TestRecorder:
    def test_records_completion_on_exit(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("Job-1", total_work=20.0))
        sim.run(until=25.0)
        summary = recorder.summary()
        assert summary.completion_time("Job-1") == pytest.approx(20.0)

    def test_usage_trace_sampled(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("Job-1", total_work=50.0))
        sim.run(until=50.0)
        trace = recorder.trace_by_label("Job-1")
        assert not trace.cpu_usage.empty
        assert trace.cpu_usage.value_at(10.0) == pytest.approx(1.0)

    def test_usage_drops_to_zero_on_exit(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("Job-1", total_work=12.0))
        sim.run(until=20.0)
        trace = recorder.trace_by_label("Job-1")
        assert trace.cpu_usage.value_at(15.0) == 0.0

    def test_growth_trace_recorded(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("Job-1", total_work=100.0))
        sim.run(until=50.0)
        trace = recorder.trace_by_label("Job-1")
        assert len(trace.growth) >= 2
        # Linear curve at full usage: G = 0.01 throughout.
        _, values = trace.growth.arrays()
        assert values[-1] == pytest.approx(0.01, rel=1e-6)

    def test_unknown_label_raises(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker)
        with pytest.raises(MetricsError):
            recorder.trace_by_label("nope")

    def test_summary_requires_completions(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker)
        with pytest.raises(MetricsError):
            recorder.summary()

    def test_stop_halts_sampling(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("Job-1", total_work=1000.0))
        sim.run(until=10.0)
        recorder.stop()
        n = len(recorder.trace_by_label("Job-1").cpu_usage)
        sim.run(until=50.0)
        assert len(recorder.trace_by_label("Job-1").cpu_usage) == n

    def test_invalid_interval_rejected(self, sim, ideal_worker):
        with pytest.raises(MetricsError):
            MetricsRecorder(ideal_worker, sample_interval=0.0)

    def test_multiple_containers_tracked_separately(self, sim, ideal_worker):
        recorder = MetricsRecorder(ideal_worker, sample_interval=5.0)
        recorder.start()
        ideal_worker.launch(make_linear_job("a", total_work=40.0))
        ideal_worker.launch(make_linear_job("b", total_work=40.0))
        sim.run(until=40.0)
        ta = recorder.trace_by_label("a")
        tb = recorder.trace_by_label("b")
        assert ta.cpu_usage.value_at(10.0) == pytest.approx(0.5)
        assert tb.cpu_usage.value_at(10.0) == pytest.approx(0.5)
