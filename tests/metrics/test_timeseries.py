"""Unit + property tests for StepSeries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MetricsError
from repro.metrics.timeseries import StepSeries


def series(points):
    s = StepSeries("test")
    for t, v in points:
        s.append(t, v)
    return s


class TestAppend:
    def test_monotone_times_required(self):
        s = series([(0.0, 1.0), (5.0, 2.0)])
        with pytest.raises(MetricsError):
            s.append(3.0, 9.0)

    def test_equal_time_overwrites(self):
        s = series([(0.0, 1.0), (5.0, 2.0), (5.0, 3.0)])
        assert len(s) == 2
        assert s.value_at(5.0) == 3.0

    def test_empty_flag(self):
        assert StepSeries().empty
        assert not series([(0.0, 1.0)]).empty


class TestQueries:
    def test_value_at_step_semantics(self):
        s = series([(0.0, 1.0), (10.0, 2.0)])
        assert s.value_at(0.0) == 1.0
        assert s.value_at(9.99) == 1.0
        assert s.value_at(10.0) == 2.0
        assert s.value_at(50.0) == 2.0

    def test_value_before_first_point_raises(self):
        s = series([(5.0, 1.0)])
        with pytest.raises(MetricsError):
            s.value_at(4.0)

    def test_resample(self):
        s = series([(0.0, 1.0), (10.0, 3.0)])
        grid = np.array([0.0, 5.0, 10.0, 15.0])
        assert np.allclose(s.resample(grid), [1.0, 1.0, 3.0, 3.0])

    def test_integral(self):
        s = series([(0.0, 1.0), (10.0, 3.0), (20.0, 0.0)])
        assert s.integral(0.0, 20.0) == pytest.approx(10 * 1 + 10 * 3)
        assert s.integral(5.0, 15.0) == pytest.approx(5 * 1 + 5 * 3)

    def test_mean(self):
        s = series([(0.0, 1.0), (10.0, 3.0)])
        assert s.mean(0.0, 20.0) == pytest.approx((10 + 30) / 20)

    def test_empty_series_raises(self):
        with pytest.raises(MetricsError):
            StepSeries().value_at(0.0)
        with pytest.raises(MetricsError):
            StepSeries().mean()

    def test_empty_mean_window_raises(self):
        s = series([(0.0, 1.0)])
        with pytest.raises(MetricsError):
            s.mean(5.0, 5.0)


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000),
                st.floats(min_value=-10, max_value=10),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_integral_additivity(self, raw_points):
        pts = sorted(raw_points, key=lambda p: p[0])
        s = StepSeries()
        for t, v in pts:
            s.append(t, v)
        lo, hi = s.t_start, s.t_end
        if hi <= lo:
            return
        mid = (lo + hi) / 2
        whole = s.integral(lo, hi)
        split = s.integral(lo, mid) + s.integral(mid, hi)
        assert whole == pytest.approx(split, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=5),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_mean_within_value_range(self, raw_points):
        pts = sorted(raw_points, key=lambda p: p[0])
        s = StepSeries()
        for t, v in pts:
            s.append(t, v)
        if s.t_end <= s.t_start:
            return
        mean = s.mean()
        _, values = s.arrays()
        assert values.min() - 1e-9 <= mean <= values.max() + 1e-9
