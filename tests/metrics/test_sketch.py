"""Property tests for the bounded-memory sketch machinery.

The sketch's correctness claim is a *rank* guarantee, not a value
guarantee: ``quantile(q)`` returns an actual stream element whose true
rank lies within ``rank_error_bound()·n`` of ``q·n``.  The right oracle
is therefore rank-window bracketing — the exact order statistics at
ranks ``(q−ε)·n`` and ``(q+ε)·n`` must bracket the estimate — never
closeness to ``numpy.percentile``, which interpolates between elements
the sketch by construction cannot return.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetricsError
from repro.metrics.sketch import (
    QuantileSketch,
    RollingThroughput,
    StreamMetrics,
)

QUANTILES = (0.01, 0.10, 0.50, 0.90, 0.95, 0.99)


def _assert_within_rank_window(sketch: QuantileSketch,
                               values: np.ndarray) -> None:
    """Every estimate's exact-rank bracket must contain it.

    The sketch answers q with the element of (estimated) rank ⌈q·n⌉,
    1-indexed; its true rank is certified within ±ε·n of q·n.  The
    bracket is therefore the exact elements at ranks ⌊(q−ε)·n⌋ and
    ⌈(q+ε)·n⌉, clamped to [1, n].
    """
    ordered = np.sort(values)
    n = len(ordered)
    eps = sketch.rank_error_bound()
    for q in QUANTILES:
        est = sketch.quantile(q)
        lo_rank = max(1, int(np.floor((q - eps) * n)))
        hi_rank = min(n, int(np.ceil((q + eps) * n)))
        lo, hi = ordered[lo_rank - 1], ordered[hi_rank - 1]
        assert lo <= est <= hi, (
            f"q={q}: estimate {est} outside exact rank window "
            f"[{lo}, {hi}] (±{eps:.4%}, n={n})"
        )


def _streams():
    """The four adversarial stream shapes the ISSUE calls out."""
    seeds = st.integers(min_value=0, max_value=2**31 - 1)
    sizes = st.integers(min_value=1, max_value=6000)

    def uniform(seed, size):
        return np.random.default_rng(seed).uniform(0.0, 1000.0, size)

    def pareto(seed, size):
        return np.random.default_rng(seed).pareto(1.5, size) * 10.0

    def ascending(seed, size):
        return np.sort(np.random.default_rng(seed).uniform(0, 100, size))

    def constant(seed, size):
        return np.full(size, float(seed % 97))

    shapes = st.sampled_from([uniform, pareto, ascending, constant])
    return st.builds(lambda f, seed, size: f(seed, size),
                     shapes, seeds, sizes)


class TestQuantileSketchAccuracy:
    @settings(max_examples=60, deadline=None)
    @given(_streams(), st.sampled_from([16, 64, 256]))
    def test_within_certified_rank_window(self, values, k):
        sketch = QuantileSketch(k=k)
        sketch.extend(values)
        assert sketch.n == len(values)
        _assert_within_rank_window(sketch, values)

    @settings(max_examples=30, deadline=None)
    @given(_streams(), st.integers(min_value=1, max_value=5999))
    def test_merge_of_split_stream_within_window(self, values, cut):
        cut = min(cut, len(values))
        left, right = QuantileSketch(k=64), QuantileSketch(k=64)
        left.extend(values[:cut])
        right.extend(values[cut:])
        merged = left.merge(right)
        assert merged is left
        assert merged.n == len(values)
        _assert_within_rank_window(merged, values)

    @settings(max_examples=30, deadline=None)
    @given(_streams())
    def test_deterministic_equal_streams_equal_state(self, values):
        a, b = QuantileSketch(k=32), QuantileSketch(k=32)
        a.extend(values)
        b.extend(values)
        assert a.state() == b.state()

    def test_bound_grows_slowly_and_is_honest_at_scale(self):
        rng = np.random.default_rng(7)
        values = rng.pareto(1.5, 200_000) * 5.0
        sketch = QuantileSketch(k=256)
        sketch.extend(values)
        # log2(n/k)/k regime: ~3.7 % certified at 200k values with
        # k=256 (the docstring's ~5 % at n=10⁶ figure scales down).
        assert sketch.rank_error_bound() < 0.05
        _assert_within_rank_window(sketch, values)

    def test_exact_below_k(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        sketch = QuantileSketch(k=8)
        sketch.extend(values)
        assert sketch.rank_error_bound() == 0.0
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 5.0
        assert sketch.quantile(0.5) == 3.0


class TestQuantileSketchErrors:
    def test_small_k_rejected(self):
        with pytest.raises(MetricsError, match="k must be >= 8"):
            QuantileSketch(k=4)

    def test_empty_quantile_raises(self):
        with pytest.raises(MetricsError, match="empty sketch"):
            QuantileSketch().quantile(0.5)

    def test_q_out_of_range(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(MetricsError, match=r"\[0, 1\]"):
            sketch.quantile(1.5)

    def test_mismatched_k_merge_rejected(self):
        with pytest.raises(MetricsError, match="k=64 and k=128"):
            QuantileSketch(k=64).merge(QuantileSketch(k=128))

    def test_merge_non_sketch_rejected(self):
        with pytest.raises(MetricsError, match="cannot merge list"):
            QuantileSketch().merge([1.0, 2.0])


class TestRollingThroughput:
    def test_rate_over_window(self):
        roll = RollingThroughput(window=10.0, buckets=10)
        for t in (0.0, 1.0, 2.0, 3.0):
            roll.observe(t)
        assert roll.rate() == pytest.approx(0.4)

    def test_window_slides_old_events_out(self):
        roll = RollingThroughput(window=10.0, buckets=10)
        roll.observe(0.0)
        roll.observe(100.0)
        assert roll.rate() == pytest.approx(0.1)

    def test_peak_is_high_water(self):
        roll = RollingThroughput(window=10.0, buckets=10)
        for t in (0.0, 0.1, 0.2):
            roll.observe(t)
        peak = roll.peak
        roll.observe(500.0)
        assert roll.peak == peak == pytest.approx(0.3)

    def test_time_reversal_rejected(self):
        roll = RollingThroughput(window=10.0, buckets=10)
        roll.observe(50.0)
        with pytest.raises(MetricsError, match="before its head bucket"):
            roll.observe(10.0)

    def test_bad_construction_rejected(self):
        with pytest.raises(MetricsError, match="window must be positive"):
            RollingThroughput(window=0.0)
        with pytest.raises(MetricsError, match="buckets must be >= 1"):
            RollingThroughput(buckets=0)


class TestStreamMetrics:
    def test_per_tenant_and_overall_views(self):
        sink = StreamMetrics()
        for i in range(100):
            tenant = "a" if i % 2 else "b"
            sink.observe_placement(f"Job-{i}", tenant, float(i))
            sink.observe_completion(
                submitted=float(i), finished=float(i) + 5.0,
                completion_time=5.0,
            )
        assert sink.n_completed == 100
        assert sink.total_queue_delay == pytest.approx(sum(range(100)))
        assert sink.max_queue_delay == 99.0
        assert sink.mean_queue_delay("a") == pytest.approx(
            np.mean([i for i in range(100) if i % 2])
        )
        assert sink.makespan == pytest.approx(104.0)
        report = sink.slo_report()
        assert set(report) >= {
            "p50_queue_delay", "p95_queue_delay", "p99_queue_delay",
            "rolling_throughput", "peak_throughput",
        }

    def test_unknown_tenant_raises(self):
        sink = StreamMetrics()
        sink.observe_placement("Job-1", "a", 1.0)
        with pytest.raises(MetricsError, match="no jobs recorded for tenant"):
            sink.quantile_queue_delay(0.5, tenant="ghost")

    def test_makespan_needs_a_completion(self):
        with pytest.raises(MetricsError):
            StreamMetrics().makespan
