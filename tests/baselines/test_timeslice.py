"""Unit tests for the Gandiva-style time-slicing baseline."""

from __future__ import annotations

import pytest

from repro.baselines.timeslice import TimeSlicePolicy
from repro.errors import ConfigError
from tests.conftest import make_linear_job


class TestValidation:
    def test_bad_quantum_rejected(self):
        with pytest.raises(ConfigError):
            TimeSlicePolicy(quantum=0.0)

    def test_bad_background_share_rejected(self):
        for bad in (0.0, 1.0):
            with pytest.raises(ConfigError):
                TimeSlicePolicy(background_share=bad)

    def test_name(self):
        assert TimeSlicePolicy(quantum=15.0).name == "TimeSlice-15s"


class TestRotation:
    def test_one_favored_container_per_quantum(self, sim, ideal_worker):
        policy = TimeSlicePolicy(quantum=10.0, background_share=0.05)
        policy.attach(ideal_worker)
        a = ideal_worker.launch(make_linear_job("a", total_work=1000.0))
        b = ideal_worker.launch(make_linear_job("b", total_work=1000.0))
        sim.run(until=11.0)
        limits = sorted([a.limits.cpu, b.limits.cpu])
        assert limits == pytest.approx([0.05, 1.0])

    def test_slice_rotates(self, sim, ideal_worker):
        policy = TimeSlicePolicy(quantum=10.0)
        policy.attach(ideal_worker)
        a = ideal_worker.launch(make_linear_job("a", total_work=1000.0))
        b = ideal_worker.launch(make_linear_job("b", total_work=1000.0))
        sim.run(until=11.0)
        first = a.limits.cpu
        sim.run(until=21.0)
        assert a.limits.cpu != first  # the favored slot moved

    def test_everyone_completes(self, sim, ideal_worker):
        policy = TimeSlicePolicy(quantum=10.0)
        policy.attach(ideal_worker)
        containers = [
            ideal_worker.launch(make_linear_job(f"j{i}", total_work=40.0))
            for i in range(3)
        ]
        sim.run_until_empty()
        assert all(c.exited for c in containers)

    def test_detach_stops_rotation(self, sim, ideal_worker):
        policy = TimeSlicePolicy(quantum=10.0)
        policy.attach(ideal_worker)
        a = ideal_worker.launch(make_linear_job("a", total_work=10_000.0))
        sim.run(until=11.0)
        policy.detach()
        limit_updates = len(a.limits.journal)
        sim.run(until=100.0)
        assert len(a.limits.journal) == limit_updates

    def test_work_conserving_despite_slicing(self, sim, ideal_worker):
        """Soft limits keep the node saturated, so total makespan equals
        total work even under aggressive slicing."""
        policy = TimeSlicePolicy(quantum=10.0, background_share=0.05)
        policy.attach(ideal_worker)
        for i in range(3):
            ideal_worker.launch(make_linear_job(f"j{i}", total_work=50.0))
        end = sim.run_until_empty()
        assert end == pytest.approx(150.0, rel=1e-6)
