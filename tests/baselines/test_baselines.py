"""Unit tests for the baseline policies."""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.baselines.slaq import SlaqLikePolicy
from repro.baselines.static import StaticPartitionPolicy
from repro.errors import ConfigError
from tests.conftest import make_linear_job


class TestNA:
    def test_limits_stay_open(self, sim, ideal_worker):
        NAPolicy().attach(ideal_worker)
        a = ideal_worker.launch(make_linear_job("a"))
        b = ideal_worker.launch(make_linear_job("b"))
        sim.run(until=10.0)
        assert a.limits.cpu == 1.0 and b.limits.cpu == 1.0

    def test_equal_shares_under_contention(self, sim, ideal_worker):
        NAPolicy().attach(ideal_worker)
        ideal_worker.launch(make_linear_job("a"))
        ideal_worker.launch(make_linear_job("b"))
        allocs = list(ideal_worker.allocations().values())
        assert allocs == pytest.approx([0.5, 0.5])


class TestStatic:
    def test_equal_partition_on_launch(self, sim, ideal_worker):
        StaticPartitionPolicy().attach(ideal_worker)
        a = ideal_worker.launch(make_linear_job("a"))
        b = ideal_worker.launch(make_linear_job("b"))
        assert a.limits.cpu == pytest.approx(0.5)
        assert b.limits.cpu == pytest.approx(0.5)

    def test_repartition_on_exit(self, sim, ideal_worker):
        StaticPartitionPolicy().attach(ideal_worker)
        ideal_worker.launch(make_linear_job("a", total_work=10.0))
        b = ideal_worker.launch(make_linear_job("b", total_work=100.0))
        sim.run(until=30.0)
        assert b.limits.cpu == pytest.approx(1.0)


class TestSlaq:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SlaqLikePolicy(epoch=0.0)
        with pytest.raises(ConfigError):
            SlaqLikePolicy(min_share=0.0)

    def test_allocates_toward_faster_improver(self, sim, ideal_worker):
        policy = SlaqLikePolicy(epoch=10.0)
        policy.attach(ideal_worker)
        fast = make_linear_job("fast", total_work=2000.0, e0=1.0, e_final=0.0)
        slow = make_linear_job("slow", total_work=2000.0, e0=1.0, e_final=0.9)
        c_fast = ideal_worker.launch(fast)
        c_slow = ideal_worker.launch(slow)
        sim.run(until=45.0)
        # fast's normalized quality moves 10× faster per wall-second...
        # both normalized gains are equal per unit work; equal shares are
        # acceptable — but never the degenerate all-to-one split.
        assert 0.0 < c_slow.limits.cpu <= 1.0
        assert c_fast.limits.cpu >= c_slow.limits.cpu - 1e-9

    def test_detach_stops_epochs(self, sim, ideal_worker):
        policy = SlaqLikePolicy(epoch=10.0)
        policy.attach(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=10_000.0))
        policy.detach()
        sim.run(until=100.0)  # would raise if epochs kept mutating state

    def test_name(self):
        assert SlaqLikePolicy(epoch=15.0).name == "SLAQ-like-15s"
